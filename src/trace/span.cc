#include "src/trace/span.h"

#include <cassert>

namespace deeprest {

SpanIndex Trace::AddSpan(const std::string& component, const std::string& operation,
                         SpanIndex parent) {
  assert((parent == kNoParent && spans_.empty()) ||
         (parent != kNoParent && parent < spans_.size()));
  Span span;
  span.component = component;
  span.operation = operation;
  span.parent = parent;
  // Deterministic monotone default: span i starts at i ms and runs 1 ms, so
  // children always start after their parents and every duration is positive.
  span.start_us = static_cast<uint64_t>(spans_.size()) * 1000;
  span.end_us = span.start_us + 1000;
  spans_.push_back(std::move(span));
  return static_cast<SpanIndex>(spans_.size() - 1);
}

void Trace::SetSpanTiming(SpanIndex i, uint64_t start_us, uint64_t end_us) {
  assert(i < spans_.size());
  spans_[i].start_us = start_us;
  spans_[i].end_us = end_us;
}

std::vector<SpanIndex> Trace::ChildrenOf(SpanIndex i) const {
  std::vector<SpanIndex> children;
  for (SpanIndex s = 0; s < spans_.size(); ++s) {
    if (spans_[s].parent == i) {
      children.push_back(s);
    }
  }
  return children;
}

const char* TraceDefectName(TraceDefect defect) {
  switch (defect) {
    case TraceDefect::kNone:
      return "ok";
    case TraceDefect::kEmpty:
      return "empty";
    case TraceDefect::kBadParent:
      return "bad-parent";
    case TraceDefect::kNegativeDuration:
      return "negative-duration";
    case TraceDefect::kNonMonotonicStart:
      return "non-monotonic-start";
  }
  return "unknown";
}

TraceDefect ValidateTrace(const Trace& trace) {
  const std::vector<Span>& spans = trace.spans();
  if (spans.empty()) {
    return TraceDefect::kEmpty;
  }
  if (spans.front().parent != kNoParent) {
    return TraceDefect::kBadParent;
  }
  for (SpanIndex i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (i > 0 && (span.parent == kNoParent || span.parent >= i)) {
      return TraceDefect::kBadParent;
    }
    if (span.end_us < span.start_us) {
      return TraceDefect::kNegativeDuration;
    }
    if (i > 0 && span.start_us < spans[span.parent].start_us) {
      return TraceDefect::kNonMonotonicStart;
    }
  }
  return TraceDefect::kNone;
}

uint64_t HashName(const std::string& name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace deeprest
