// Distributed-tracing primitives (Jaeger stand-in, paper Fig. 3).
//
// A Trace records the entire lifetime of one API request as a tree of Spans.
// Each span carries only the (component, operation) pair — DeepRest is
// deliberately blind to payloads, logs, and timings beyond the window the
// trace falls into (privacy-preserving design, paper section 3).
#ifndef SRC_TRACE_SPAN_H_
#define SRC_TRACE_SPAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deeprest {

// Index of a span inside its trace; the root is always index 0.
using SpanIndex = uint32_t;
constexpr SpanIndex kNoParent = UINT32_MAX;

struct Span {
  std::string component;
  std::string operation;
  SpanIndex parent = kNoParent;
  // Microsecond offsets from the trace's own start. AddSpan assigns a
  // deterministic monotone default (a span starts after its parent and ends
  // after it starts), so traces built anywhere in the repo are well-formed
  // without every producer inventing clocks. Real timings can be installed
  // with Trace::SetSpanTiming; ingest-side admission control (ValidateTrace)
  // rejects traces whose timings are absurd.
  uint64_t start_us = 0;
  uint64_t end_us = 0;
};

// One API request's execution diagram.
class Trace {
 public:
  Trace() = default;
  Trace(uint64_t trace_id, std::string api_name)
      : trace_id_(trace_id), api_name_(std::move(api_name)) {}

  uint64_t trace_id() const { return trace_id_; }
  // Name of the API endpoint that originated this trace. Used only for
  // bookkeeping and by the trace synthesizer's conditional distribution;
  // the feature extractor never reads it.
  const std::string& api_name() const { return api_name_; }

  // Appends a span; parent must already exist (or kNoParent for the root).
  // Returns the new span's index.
  SpanIndex AddSpan(const std::string& component, const std::string& operation,
                    SpanIndex parent);

  // Overrides the deterministic default timing of one span (e.g. a telemetry
  // agent replaying measured timestamps, or a fault injector corrupting them).
  void SetSpanTiming(SpanIndex i, uint64_t start_us, uint64_t end_us);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }
  size_t size() const { return spans_.size(); }
  const Span& root() const { return spans_.front(); }

  // Children indices of span `i`, in insertion order.
  std::vector<SpanIndex> ChildrenOf(SpanIndex i) const;

 private:
  uint64_t trace_id_ = 0;
  std::string api_name_;
  std::vector<Span> spans_;
};

// FNV-1a hash of a component or operation name. The paper hashes all
// sensitive attributes before they are ingested by DeepRest so that the
// estimator can run as a service without seeing application semantics.
uint64_t HashName(const std::string& name);

// Admission-control verdict for a trace arriving from an untrusted telemetry
// stream. kOk means the trace is structurally and temporally well-formed.
enum class TraceDefect {
  kNone,               // well-formed
  kEmpty,              // no spans at all
  kBadParent,          // parent index >= own index, or a non-root without one
  kNegativeDuration,   // a span ends before it starts
  kNonMonotonicStart,  // a child starts before its parent
};

// Human-readable defect name ("ok", "empty", ...).
const char* TraceDefectName(TraceDefect defect);

// Validates a trace at the ingestion door: structure (exactly one root at
// index 0, every parent precedes its child) and timing (end >= start, child
// start >= parent start). Corrupted production telemetry must be rejected
// here, not folded into feature windows.
TraceDefect ValidateTrace(const Trace& trace);

}  // namespace deeprest

#endif  // SRC_TRACE_SPAN_H_
