#include "src/trace/topology.h"

#include <cassert>

namespace deeprest {

uint64_t TopologyGraph::Key(const std::string& component, const std::string& operation) {
  // Combine the two FNV hashes; the ':' separator prevents ambiguity between
  // ("ab", "c") and ("a", "bc") before hashing.
  return HashName(component + ":" + operation);
}

TopologyNodeId TopologyGraph::Intern(const std::string& component,
                                     const std::string& operation) {
  const uint64_t key = Key(component, operation);
  auto it = node_by_key_.find(key);
  if (it != node_by_key_.end()) {
    return it->second;
  }
  const TopologyNodeId id = static_cast<TopologyNodeId>(labels_.size());
  node_by_key_.emplace(key, id);
  labels_.push_back(component + ":" + operation);
  return id;
}

bool TopologyGraph::Lookup(const std::string& component, const std::string& operation,
                           TopologyNodeId& out) const {
  auto it = node_by_key_.find(Key(component, operation));
  if (it == node_by_key_.end()) {
    return false;
  }
  out = it->second;
  return true;
}

void TopologyGraph::Observe(const Trace& trace) {
  std::vector<TopologyNodeId> ids = NodeIdsFor(trace);
  for (SpanIndex i = 0; i < trace.spans().size(); ++i) {
    const SpanIndex parent = trace.spans()[i].parent;
    if (parent != kNoParent) {
      edges_.emplace(ids[parent], ids[i]);
    }
  }
}

bool TopologyGraph::HasEdge(TopologyNodeId parent, TopologyNodeId child) const {
  return edges_.count({parent, child}) > 0;
}

std::vector<TopologyNodeId> TopologyGraph::FrozenNodeIdsFor(const Trace& trace) const {
  std::vector<TopologyNodeId> ids;
  FrozenNodeIdsInto(trace, ids);
  return ids;
}

void TopologyGraph::FrozenNodeIdsInto(const Trace& trace,
                                      std::vector<TopologyNodeId>& out) const {
  out.clear();
  out.reserve(trace.size());
  for (const Span& span : trace.spans()) {
    TopologyNodeId id = kUnknownNode;
    Lookup(span.component, span.operation, id);
    out.push_back(id);
  }
}

std::vector<TopologyNodeId> TopologyGraph::NodeIdsFor(const Trace& trace) {
  std::vector<TopologyNodeId> ids;
  ids.reserve(trace.size());
  for (const Span& span : trace.spans()) {
    ids.push_back(Intern(span.component, span.operation));
  }
  return ids;
}

InvocationPath PathToSpan(const Trace& trace, const std::vector<TopologyNodeId>& node_ids,
                          SpanIndex leaf) {
  assert(node_ids.size() == trace.size());
  InvocationPath reversed;
  SpanIndex cursor = leaf;
  while (cursor != kNoParent) {
    reversed.push_back(node_ids[cursor]);
    cursor = trace.spans()[cursor].parent;
  }
  return InvocationPath(reversed.rbegin(), reversed.rend());
}

}  // namespace deeprest
