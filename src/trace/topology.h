// Execution topology graph (paper Fig. 5).
//
// Each node is a hashed (component, operation) pair observed in traces; a
// trace maps to a directed invocation path through the graph. The graph is
// the only view of the application DeepRest's learning pipeline sees.
#ifndef SRC_TRACE_TOPOLOGY_H_
#define SRC_TRACE_TOPOLOGY_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/trace/span.h"

namespace deeprest {

// Stable identifier of a (component, operation) node in the topology.
using TopologyNodeId = uint32_t;
constexpr TopologyNodeId kUnknownNode = UINT32_MAX;

class TopologyGraph {
 public:
  // Adds (or finds) the node for a hashed (component, operation) pair.
  TopologyNodeId Intern(const std::string& component, const std::string& operation);

  // Finds an existing node; returns false if never observed.
  bool Lookup(const std::string& component, const std::string& operation,
              TopologyNodeId& out) const;

  // Records every span of the trace and the parent->child edges it implies.
  void Observe(const Trace& trace);

  size_t node_count() const { return labels_.size(); }
  size_t edge_count() const { return edges_.size(); }

  // True if an edge parent->child has been observed.
  bool HasEdge(TopologyNodeId parent, TopologyNodeId child) const;

  // Human-readable label kept for debugging/visualization only (the hashed
  // key is what identifies the node).
  const std::string& label(TopologyNodeId id) const { return labels_[id]; }

  // Converts a trace into per-span topology node ids (parallel to
  // trace.spans()). Nodes are interned on demand.
  std::vector<TopologyNodeId> NodeIdsFor(const Trace& trace);

  // Const lookup variant: spans whose (component, operation) pair was never
  // interned map to kUnknownNode (used when the topology is frozen after
  // application learning).
  std::vector<TopologyNodeId> FrozenNodeIdsFor(const Trace& trace) const;
  // Same, writing into a caller-owned buffer so per-trace hot loops (feature
  // extraction) reuse its capacity instead of allocating.
  void FrozenNodeIdsInto(const Trace& trace, std::vector<TopologyNodeId>& out) const;

 private:
  static uint64_t Key(const std::string& component, const std::string& operation);

  std::unordered_map<uint64_t, TopologyNodeId> node_by_key_;
  std::vector<std::string> labels_;
  std::set<std::pair<TopologyNodeId, TopologyNodeId>> edges_;
};

// An invocation path: the sequence of topology node ids from the trace root
// down to some span (inclusive). Paths identify features (paper Alg. 1).
using InvocationPath = std::vector<TopologyNodeId>;

// Extracts the invocation path terminating at span `leaf`.
InvocationPath PathToSpan(const Trace& trace, const std::vector<TopologyNodeId>& node_ids,
                          SpanIndex leaf);

}  // namespace deeprest

#endif  // SRC_TRACE_TOPOLOGY_H_
