#include "src/workload/social_graph.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace deeprest {

SocialGraph::SocialGraph(size_t user_count, double alpha, size_t max_degree, Rng& rng) {
  assert(user_count > 0);
  follower_counts_.reserve(user_count);
  double total = 0.0;
  for (size_t i = 0; i < user_count; ++i) {
    // Inverse-CDF sampling of a continuous power law on [1, max_degree]:
    // F^-1(u) = (1 - u (1 - b^(1-a)))^(1/(1-a)) with b = max_degree.
    const double u = rng.NextDouble();
    const double one_minus_a = 1.0 - alpha;
    const double b_term = std::pow(static_cast<double>(max_degree), one_minus_a);
    const double x = std::pow(1.0 - u * (1.0 - b_term), 1.0 / one_minus_a);
    const size_t degree = std::clamp<size_t>(static_cast<size_t>(x), 1, max_degree);
    follower_counts_.push_back(degree);
    total += static_cast<double>(degree);
  }
  mean_followers_ = total / static_cast<double>(user_count);

  // Activity proportional to sqrt(followers): popular users post more, but
  // sub-linearly (matching empirical social-network studies).
  activity_cdf_.reserve(user_count);
  double acc = 0.0;
  for (size_t i = 0; i < user_count; ++i) {
    acc += std::sqrt(static_cast<double>(follower_counts_[i]));
    activity_cdf_.push_back(acc);
  }
  for (double& v : activity_cdf_) {
    v /= acc;
  }
}

size_t SocialGraph::SampleActiveUser(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(activity_cdf_.begin(), activity_cdf_.end(), u);
  return static_cast<size_t>(std::min<ptrdiff_t>(it - activity_cdf_.begin(),
                                                 static_cast<ptrdiff_t>(user_count()) - 1));
}

size_t SocialGraph::SampleFollowerCount(Rng& rng) const {
  return follower_counts_[SampleActiveUser(rng)];
}

double SampleMediaSizeKb(Rng& rng, double mu, double sigma) {
  return std::exp(rng.Gaussian(mu, sigma));
}

size_t SamplePostLength(Rng& rng) {
  const double v = std::exp(rng.Gaussian(4.0, 0.6));
  return std::clamp<size_t>(static_cast<size_t>(v), 1, 280);
}

}  // namespace deeprest
