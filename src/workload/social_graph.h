// Synthetic social graph and content-size samplers.
//
// The paper seeds its workload with a real Facebook social graph [56] and
// INRIA photos [26]; neither dataset is available offline, so this module
// generates the statistical equivalents the experiments actually depend on:
// a heavy-tailed follower distribution (drives the fan-out cost of
// /composePost) and a long-tailed media-size distribution (drives the bytes
// written by /uploadMedia).
#ifndef SRC_WORKLOAD_SOCIAL_GRAPH_H_
#define SRC_WORKLOAD_SOCIAL_GRAPH_H_

#include <cstddef>
#include <vector>

#include "src/nn/rng.h"

namespace deeprest {

class SocialGraph {
 public:
  // Builds a graph of `user_count` users whose follower counts follow a
  // discrete power law with the given exponent (typical social networks:
  // alpha in [2, 3]) clipped to [1, max_degree].
  SocialGraph(size_t user_count, double alpha, size_t max_degree, Rng& rng);

  size_t user_count() const { return follower_counts_.size(); }

  // Follower count of a user.
  size_t FollowersOf(size_t user) const { return follower_counts_[user]; }

  // Samples a random user id weighted by activity (heavier users are more
  // likely to act, as in real social networks).
  size_t SampleActiveUser(Rng& rng) const;

  // Convenience: follower count of a randomly sampled active user.
  size_t SampleFollowerCount(Rng& rng) const;

  double mean_followers() const { return mean_followers_; }

 private:
  std::vector<size_t> follower_counts_;
  std::vector<double> activity_cdf_;
  double mean_followers_ = 0.0;
};

// Log-normal media size in KiB (stands in for the INRIA photo corpus):
// median ~ exp(mu), long right tail controlled by sigma.
double SampleMediaSizeKb(Rng& rng, double mu = 5.0, double sigma = 0.8);

// Short text-post length in characters, clamped to [1, 280].
size_t SamplePostLength(Rng& rng);

}  // namespace deeprest

#endif  // SRC_WORKLOAD_SOCIAL_GRAPH_H_
