#include "src/workload/traffic.h"

#include <cassert>
#include <cmath>

namespace deeprest {

std::string ShapeKindName(ShapeKind kind) {
  switch (kind) {
    case ShapeKind::kTwoPeak:
      return "two_peak";
    case ShapeKind::kFlat:
      return "flat";
    case ShapeKind::kSinglePeak:
      return "single_peak";
  }
  return "unknown";
}

namespace {

double GaussianBump(double x, double center, double width) {
  const double d = (x - center) / width;
  return std::exp(-0.5 * d * d);
}

}  // namespace

std::vector<double> ShapeProfile(ShapeKind kind, size_t windows_per_day) {
  std::vector<double> profile(windows_per_day, 1.0);
  if (kind != ShapeKind::kFlat) {
    for (size_t w = 0; w < windows_per_day; ++w) {
      const double x = static_cast<double>(w) / static_cast<double>(windows_per_day);
      double v = 0.30;  // overnight floor
      if (kind == ShapeKind::kTwoPeak) {
        // Lunchtime (~12:30) and late-evening (~21:00) peaks.
        v += 1.35 * GaussianBump(x, 0.52, 0.055);
        v += 1.65 * GaussianBump(x, 0.875, 0.065);
      } else {
        v += 2.2 * GaussianBump(x, 0.83, 0.09);
      }
      profile[w] = v;
    }
  }
  // Normalize to mean 1 so user_scale and base rate have stable meaning.
  double mean = 0.0;
  for (double v : profile) {
    mean += v;
  }
  mean /= static_cast<double>(windows_per_day);
  for (double& v : profile) {
    v /= mean;
  }
  return profile;
}

double TrafficSeries::TotalAt(size_t window) const {
  double total = 0.0;
  for (double v : rates_[window]) {
    total += v;
  }
  return total;
}

double TrafficSeries::GrandTotal() const {
  double total = 0.0;
  for (size_t w = 0; w < rates_.size(); ++w) {
    total += TotalAt(w);
  }
  return total;
}

bool TrafficSeries::ApiIndex(const std::string& name, size_t& out) const {
  for (size_t i = 0; i < apis_.size(); ++i) {
    if (apis_[i] == name) {
      out = i;
      return true;
    }
  }
  return false;
}

void TrafficSeries::Append(const TrafficSeries& other) {
  assert(other.apis_ == apis_);
  rates_.insert(rates_.end(), other.rates_.begin(), other.rates_.end());
}

TrafficSeries GenerateTraffic(const TrafficSpec& spec, Rng& rng) {
  assert(!spec.mix.empty());
  std::vector<std::string> apis;
  double weight_sum = 0.0;
  for (const auto& share : spec.mix) {
    apis.push_back(share.api);
    weight_sum += share.weight;
  }
  assert(weight_sum > 0.0);

  const std::vector<double> profile = ShapeProfile(spec.shape, spec.windows_per_day);
  TrafficSeries series(apis, spec.days * spec.windows_per_day);

  for (size_t day = 0; day < spec.days; ++day) {
    // Day-to-day multiplicative variation (paper: "variations from day to
    // day to mimic non-deterministic properties"). Each API additionally
    // gets its own independent daily factor — real API mixes drift from day
    // to day, and that independent variation is what makes per-API resource
    // attribution identifiable from production traffic.
    const double day_factor = std::exp(rng.Gaussian(0.0, spec.day_jitter));
    std::vector<double> api_day_factor(spec.mix.size());
    for (auto& f : api_day_factor) {
      f = std::exp(rng.Gaussian(0.0, 2.5 * spec.day_jitter));
    }
    for (size_t w = 0; w < spec.windows_per_day; ++w) {
      const size_t window = day * spec.windows_per_day + w;
      const double window_factor = std::exp(rng.Gaussian(0.0, spec.window_jitter));
      const double total = spec.base_requests_per_window * spec.user_scale * profile[w] *
                           day_factor * window_factor;
      for (size_t a = 0; a < spec.mix.size(); ++a) {
        // Small independent per-API wobble so the mix is not perfectly rigid.
        const double api_wobble = std::exp(rng.Gaussian(0.0, spec.window_jitter));
        series.set_rate(window, a,
                        total * (spec.mix[a].weight / weight_sum) * api_day_factor[a] *
                            api_wobble);
      }
    }
  }
  return series;
}

}  // namespace deeprest
