// API traffic generation (Locust stand-in, paper section 5.1).
//
// Traffic is a multivariate time series: for every time window and every API
// endpoint, the expected number of requests. The generator reproduces the
// paper's workload knobs: diurnal shape (two-peak vs flat), user scale,
// API composition mix, and day-to-day jitter "to mimic non-deterministic
// properties in practice".
#ifndef SRC_WORKLOAD_TRAFFIC_H_
#define SRC_WORKLOAD_TRAFFIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/nn/rng.h"

namespace deeprest {

enum class ShapeKind {
  kTwoPeak,     // lunchtime + late-evening peaks (paper default, Fig. 9)
  kFlat,        // multi-timezone aggregated traffic (paper Fig. 13c)
  kSinglePeak,  // one evening peak
};

std::string ShapeKindName(ShapeKind kind);

// Mean multiplier per window-of-day, normalized to average 1.0 across a day.
std::vector<double> ShapeProfile(ShapeKind kind, size_t windows_per_day);

// Relative weight of one API in the mix; weights are normalized internally.
struct ApiShare {
  std::string api;
  double weight = 1.0;
};

struct TrafficSpec {
  size_t days = 7;
  size_t windows_per_day = 72;
  ShapeKind shape = ShapeKind::kTwoPeak;
  // Multiplies the whole series: 1.0 reproduces the learning-phase scale,
  // 2.0/3.0 model the paper's unseen-user-scale queries.
  double user_scale = 1.0;
  // Average total requests per window at user_scale 1 (across all APIs).
  double base_requests_per_window = 120.0;
  std::vector<ApiShare> mix;
  // Multiplicative log-normal-ish jitter applied per day and per window.
  double day_jitter = 0.06;
  double window_jitter = 0.05;
};

// Expected requests per window per API (window-major).
class TrafficSeries {
 public:
  TrafficSeries() = default;
  TrafficSeries(std::vector<std::string> apis, size_t windows)
      : apis_(std::move(apis)), rates_(windows, std::vector<double>(apis_.size(), 0.0)) {}

  const std::vector<std::string>& apis() const { return apis_; }
  size_t windows() const { return rates_.size(); }
  size_t api_count() const { return apis_.size(); }

  double rate(size_t window, size_t api) const { return rates_[window][api]; }
  void set_rate(size_t window, size_t api, double value) { rates_[window][api] = value; }

  // Total expected requests in one window across all APIs.
  double TotalAt(size_t window) const;
  // Grand total across the series.
  double GrandTotal() const;
  // Index of an API by name; returns false if absent.
  bool ApiIndex(const std::string& name, size_t& out) const;

  // Concatenates another series (same API set) after this one.
  void Append(const TrafficSeries& other);

 private:
  std::vector<std::string> apis_;
  std::vector<std::vector<double>> rates_;
};

// Generates a traffic series from the spec. Deterministic given the RNG seed.
TrafficSeries GenerateTraffic(const TrafficSpec& spec, Rng& rng);

}  // namespace deeprest

#endif  // SRC_WORKLOAD_TRAFFIC_H_
