// Chaos: the closed loop under degraded telemetry. A controller that loses
// its metrics must fail static — hold the last-known-good scale, never
// thrash, never scale on an absence of data. These run under the chaos-tsan
// preset alongside the serve-layer chaos suite.
#include <gtest/gtest.h>

#include "src/eval/autoscale_harness.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

// The reactive policy needs no model, so chaos cells skip training entirely
// (whatif = nullptr).
struct ChaosFixture {
  static constexpr size_t kLearnWindows = 48;
  Application app = testutil::TinyApp();
  Simulator sim{app, {.seed = 13}};

  ChaosFixture() { sim.Run(testutil::RandomTraffic(kLearnWindows, 13), 0, nullptr, nullptr); }
};

TrafficSeries ChaosTraffic() {
  TrafficSeries traffic({"/read", "/write"}, 24);
  for (size_t w = 0; w < traffic.windows(); ++w) {
    const bool surge = w >= 12 && w < 18;
    traffic.set_rate(w, 0, surge ? 420.0 : 70.0);
    traffic.set_rate(w, 1, surge ? 210.0 : 35.0);
  }
  return traffic;
}

ClosedLoopConfig ChaosConfig(PolicyKind policy, double metric_gap_prob) {
  ClosedLoopConfig config;
  config.policy = policy;
  config.controller.control_interval = 4;
  config.faults.seed = 5;
  config.faults.metric_gap_prob = metric_gap_prob;
  return config;
}

TEST(AutoscaleChaos, TotalBlackoutFreezesTheScale) {
  ChaosFixture f;
  const ClosedLoopResult r =
      RunClosedLoop(f.app, f.sim, ChaosFixture::kLearnWindows, ChaosTraffic(), nullptr,
                    ChaosConfig(PolicyKind::kReactive, 1.0), "blackout");
  // Every scrape lost: every observation is blank, so the controller holds
  // the initial deployment for the whole run — zero actions, not zero scale.
  EXPECT_EQ(r.actions, 0u);
  EXPECT_TRUE(r.action_log.empty());
  EXPECT_GT(r.counters.blank_holds, 0u);
  EXPECT_EQ(r.counters.scale_outs + r.counters.scale_ins + r.counters.grows +
                r.counters.shrinks,
            0u);
  // The run itself still completes and accounts sanely.
  EXPECT_EQ(r.windows, 24u);
  EXPECT_GT(r.provisioned_core_hours, 0.0);
  EXPECT_LE(r.slo_violation_rate, 1.0);
}

TEST(AutoscaleChaos, ModerateGapsDegradeWithoutThrash) {
  ChaosFixture f;
  const TrafficSeries traffic = ChaosTraffic();
  const ClosedLoopResult clean =
      RunClosedLoop(f.app, f.sim, ChaosFixture::kLearnWindows, traffic, nullptr,
                    ChaosConfig(PolicyKind::kReactive, 0.0), "clean");
  const ClosedLoopResult chaos =
      RunClosedLoop(f.app, f.sim, ChaosFixture::kLearnWindows, traffic, nullptr,
                    ChaosConfig(PolicyKind::kReactive, 0.4), "gaps");

  EXPECT_GT(chaos.counters.blank_holds, 0u);
  // Lost scrapes suppress decisions; they must never multiply them. A small
  // additive slack covers catch-up actions a gap merely postponed.
  EXPECT_LE(chaos.actions, clean.actions + chaos.counters.ticks);
  EXPECT_LE(chaos.slo_violation_rate, 1.0);
  EXPECT_GT(chaos.provisioned_core_hours, 0.0);
}

TEST(AutoscaleChaos, ChaosRunsAreReproducible) {
  ChaosFixture f;
  const TrafficSeries traffic = ChaosTraffic();
  const ClosedLoopConfig config = ChaosConfig(PolicyKind::kReactive, 0.4);
  const ClosedLoopResult a = RunClosedLoop(f.app, f.sim, ChaosFixture::kLearnWindows,
                                           traffic, nullptr, config, "gaps");
  const ClosedLoopResult b = RunClosedLoop(f.app, f.sim, ChaosFixture::kLearnWindows,
                                           traffic, nullptr, config, "gaps");
  EXPECT_EQ(a.action_log, b.action_log);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.counters.blank_holds, b.counters.blank_holds);
}

TEST(AutoscaleChaos, PredictiveWithoutForecastDegradesGracefully) {
  ChaosFixture f;
  // No what-if source at all (no model published, service down): the
  // predictive policy must degrade to observational sizing, not crash or
  // treat "no forecast" as zero demand.
  const ClosedLoopResult r =
      RunClosedLoop(f.app, f.sim, ChaosFixture::kLearnWindows, ChaosTraffic(), nullptr,
                    ChaosConfig(PolicyKind::kPredictive, 0.2), "no-forecast");
  EXPECT_EQ(r.windows, 24u);
  EXPECT_GT(r.provisioned_core_hours, 0.0);
  EXPECT_GT(r.counters.ticks, 0u);
}

}  // namespace
}  // namespace deeprest
