// End-to-end closed-loop autoscaling: the evaluation harness over a trained
// estimator, determinism across evaluation threads, and the serving-side
// AutoscaleLoop lifecycle.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/autoscale/controller.h"
#include "src/autoscale/loop.h"
#include "src/autoscale/policy.h"
#include "src/eval/autoscale_harness.h"
#include "src/eval/parallel.h"
#include "src/serve/estimation_service.h"
#include "src/serve/model_registry.h"
#include "src/serve/whatif.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

// One learned deployment + trained model shared by every test in this file
// (training is milliseconds with FastConfig, but there is no need to repeat
// it). The simulator is copied by RunClosedLoop, never advanced here.
struct Fixture {
  static constexpr size_t kLearnWindows = 96;
  Application app = testutil::TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  Simulator sim{app, {.seed = 9}};
  std::unique_ptr<DeepRestEstimator> model;

  Fixture() {
    sim.Run(testutil::RandomTraffic(kLearnWindows, 9), 0, &traces, &metrics);
    model = std::make_unique<DeepRestEstimator>(testutil::FastConfig());
    model->Learn(traces, metrics, 0, kLearnWindows, app.MetricCatalog());
  }
};

Fixture& F() {
  static Fixture fixture;
  return fixture;
}

// A calm plateau with a mid-run surge: enough demand swing that sizing
// decisions actually move replica counts.
TrafficSeries SurgeTraffic() {
  TrafficSeries traffic({"/read", "/write"}, 32);
  for (size_t w = 0; w < traffic.windows(); ++w) {
    const bool surge = w >= 16 && w < 23;
    traffic.set_rate(w, 0, surge ? 480.0 : 80.0);
    traffic.set_rate(w, 1, surge ? 240.0 : 40.0);
  }
  return traffic;
}

ClosedLoopConfig TestConfig(PolicyKind policy) {
  ClosedLoopConfig config;
  config.policy = policy;
  config.controller.control_interval = 4;
  config.controller.lookahead = 4;
  return config;
}

TEST(ClosedLoop, AllPoliciesRunAndAccount) {
  EstimatorWhatIf whatif(*F().model);
  const TrafficSeries traffic = SurgeTraffic();
  for (PolicyKind kind : AllPolicyKinds()) {
    const ClosedLoopResult r = RunClosedLoop(F().app, F().sim, Fixture::kLearnWindows,
                                             traffic, &whatif, TestConfig(kind), "surge");
    SCOPED_TRACE(r.policy);
    EXPECT_EQ(r.scenario, "surge");
    EXPECT_EQ(r.windows, traffic.windows());
    EXPECT_EQ(r.components, 3u);
    EXPECT_GT(r.provisioned_core_hours, 0.0);
    EXPECT_GT(r.demand_core_hours, 0.0);
    EXPECT_GE(r.slo_violation_rate, 0.0);
    EXPECT_LE(r.slo_violation_rate, 1.0);
    EXPECT_GT(r.over_provision_ratio, 0.0);
    EXPECT_EQ(r.counters.ticks, 7u);  // boundaries at t = 4, 8, ..., 28
    EXPECT_EQ(r.actions, r.action_log.size());
  }
}

TEST(ClosedLoop, OracleIsTheUpperBound) {
  EstimatorWhatIf whatif(*F().model);
  const TrafficSeries traffic = SurgeTraffic();
  const ClosedLoopResult oracle =
      RunClosedLoop(F().app, F().sim, Fixture::kLearnWindows, traffic, &whatif,
                    TestConfig(PolicyKind::kOracle), "surge");
  const ClosedLoopResult reactive =
      RunClosedLoop(F().app, F().sim, Fixture::kLearnWindows, traffic, &whatif,
                    TestConfig(PolicyKind::kReactive), "surge");
  // The oracle sizes true demand to just under the knee: it never does worse
  // than the threshold baseline on violations.
  EXPECT_LE(oracle.slo_violation_rate, reactive.slo_violation_rate + 1e-12);
}

// ISSUE acceptance: same seed + scenario => byte-identical action log whether
// cells run on one thread or N.
TEST(ClosedLoop, DeterministicAcrossEvalThreads) {
  EstimatorWhatIf whatif(*F().model);
  const TrafficSeries traffic = SurgeTraffic();

  std::vector<ClosedLoopConfig> cells;
  for (PolicyKind kind : AllPolicyKinds()) {
    ClosedLoopConfig config = TestConfig(kind);
    config.whatif_seed = 7;
    cells.push_back(config);
    config.whatif_seed = 8;
    cells.push_back(config);
  }

  auto run_cell = [&](size_t i) {
    return RunClosedLoop(F().app, F().sim, Fixture::kLearnWindows, traffic, &whatif,
                         cells[i], "surge");
  };

  std::vector<ClosedLoopResult> serial(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    serial[i] = run_cell(i);
  }
  std::vector<ClosedLoopResult> parallel(cells.size());
  ParallelFor(cells.size(), [&](size_t i) { parallel[i] = run_cell(i); }, 4);

  for (size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(serial[i].policy + " cell " + std::to_string(i));
    EXPECT_EQ(serial[i].action_log, parallel[i].action_log);
    EXPECT_EQ(serial[i].slo_violation_rate, parallel[i].slo_violation_rate);
    EXPECT_EQ(serial[i].provisioned_core_hours, parallel[i].provisioned_core_hours);
    EXPECT_EQ(serial[i].demand_core_hours, parallel[i].demand_core_hours);
  }
}

TEST(AutoscaleLoopTest, TicksWhenEnoughWindowsAreFeatured) {
  Fixture& f = F();
  IngestPipeline pipeline(f.model->features(), {.shards = 2});
  EstimatorWhatIf whatif(*f.model);

  PolicyConfig policy_config;
  const auto policy = MakePolicy(PolicyKind::kPredictive, policy_config);
  AutoscaleControllerConfig ctrl_config;
  ctrl_config.control_interval = 4;
  AutoscaleController controller(*policy, ctrl_config);
  for (const auto& spec : f.app.components()) {
    controller.AddComponent(spec.name, spec.stateful, 1, 50.0);
  }

  const size_t plan_base = 32;
  AutoscaleLoopConfig loop_config;
  loop_config.control_interval = 4;
  std::vector<ScalingAction> sunk;
  AutoscaleLoop loop(controller, whatif, pipeline, f.app,
                     testutil::RandomTraffic(16, 21), plan_base, loop_config,
                     [&](const std::vector<ScalingAction>& actions) {
                       sunk.insert(sunk.end(), actions.begin(), actions.end());
                     });

  // Nothing ingested: no tick.
  EXPECT_FALSE(loop.TickOnce());
  EXPECT_EQ(loop.ticks(), 0u);

  // Stream the learned phase in; the frontier reaches 40, the live watermark
  // seals 39 >= plan_base + interval, so exactly one decision is due.
  const auto keys = f.metrics.Keys();
  for (size_t w = 0; w < 40; ++w) {
    for (const Trace& trace : f.traces.TracesAt(w)) {
      pipeline.IngestTrace(w, trace);
    }
    for (const MetricKey& key : keys) {
      pipeline.IngestMetric(key, w, f.metrics.At(key, w));
    }
  }
  EXPECT_TRUE(loop.TickOnce());
  EXPECT_EQ(loop.ticks(), 1u);
  EXPECT_EQ(loop.controlled_through(), 39u + ctrl_config.control_interval);
  EXPECT_FALSE(loop.TickOnce());  // next decision not due yet
  EXPECT_EQ(controller.counters().ticks, 1u);
}

TEST(AutoscaleLoopTest, StartStopLifecycleIsIdempotent) {
  Fixture& f = F();
  IngestPipeline pipeline(f.model->features(), {.shards = 2});
  EstimatorWhatIf whatif(*f.model);
  PolicyConfig policy_config;
  const auto policy = MakePolicy(PolicyKind::kReactive, policy_config);
  AutoscaleControllerConfig ctrl_config;
  AutoscaleController controller(*policy, ctrl_config);
  controller.AddComponent("Frontend", false, 1, 50.0);

  AutoscaleLoopConfig loop_config;
  loop_config.poll_interval = std::chrono::milliseconds(1);
  AutoscaleLoop loop(controller, whatif, pipeline, f.app,
                     testutil::RandomTraffic(8, 22), 0, loop_config);
  loop.Start();
  loop.Start();  // second Start is a no-op, not a second thread
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  loop.Stop();
  loop.Stop();
  loop.Start();  // restartable after Stop
  loop.Stop();
}

TEST(ServiceWhatIfTest, RoutesThroughTheFrontDoorAndDegradesWhenStopped) {
  Fixture& f = F();
  // The service takes ownership of its model; train a private one.
  auto model = std::make_unique<DeepRestEstimator>(testutil::FastConfig());
  model->Learn(f.traces, f.metrics, 0, Fixture::kLearnWindows, f.app.MetricCatalog());
  const EstimateMap direct =
      model->EstimateFromTraffic(testutil::RandomTraffic(8, 31), 5);

  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));
  EstimationServiceConfig service_config;
  service_config.workers = 2;
  EstimationService service(registry, pipeline, service_config);
  ServiceWhatIf whatif(service);

  const EstimateMap via_service = whatif.Estimate(testutil::RandomTraffic(8, 31), 5);
  testutil::ExpectSameEstimates(via_service, direct);

  service.Stop();
  // A rejected request is "no forecast", never zeros.
  EXPECT_TRUE(whatif.Estimate(testutil::RandomTraffic(8, 31), 5).empty());
}

}  // namespace
}  // namespace deeprest
