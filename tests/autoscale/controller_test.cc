// Unit tests for the autoscale subsystem's pure pieces: the capacity model,
// the simulator's deployment-aware hook, demand series, sizing, the three
// policies, and the controller's damping machinery.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/autoscale/controller.h"
#include "src/autoscale/policy.h"
#include "src/autoscale/scenario.h"
#include "src/sim/capacity.h"
#include "src/sim/simulator.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

TEST(QueueingCapacityModel, BelowKneeMeetsSlo) {
  QueueingCapacityModel model;
  const CapacityOutcome o = model.Evaluate(40.0, 1, 100.0);
  EXPECT_DOUBLE_EQ(o.utilization, 0.4);
  EXPECT_DOUBLE_EQ(o.violation_frac, 0.0);
  EXPECT_NEAR(o.latency_factor, 1.0 / 0.6, 1e-9);
}

TEST(QueueingCapacityModel, PastSaturationEveryRequestViolates) {
  QueueingCapacityModel model;
  const CapacityOutcome o = model.Evaluate(100.0, 1, 80.0);
  EXPECT_DOUBLE_EQ(o.utilization, 1.25);
  EXPECT_DOUBLE_EQ(o.violation_frac, 1.0);
  EXPECT_DOUBLE_EQ(o.latency_factor, 25.0);  // capped, not singular
}

TEST(QueueingCapacityModel, LinearRampBetweenKneeAndSaturation) {
  QueueingCapacityModel model;  // knee 0.85, saturation 1.15
  const CapacityOutcome o = model.Evaluate(100.0, 1, 100.0);
  EXPECT_DOUBLE_EQ(o.utilization, 1.0);
  EXPECT_NEAR(o.violation_frac, (1.0 - 0.85) / 0.30, 1e-12);
}

TEST(QueueingCapacityModel, ReplicasAndCapacityAreInterchangeable) {
  QueueingCapacityModel model;
  const CapacityOutcome two = model.Evaluate(80.0, 2, 100.0);
  const CapacityOutcome big = model.Evaluate(80.0, 1, 200.0);
  EXPECT_DOUBLE_EQ(two.utilization, 0.4);
  EXPECT_DOUBLE_EQ(two.utilization, big.utilization);
  EXPECT_DOUBLE_EQ(two.demand_cpu, big.demand_cpu);
}

TEST(SimulatorCapacity, NoModelMeansNoOutcomes) {
  const Application app = testutil::TinyApp();
  Simulator sim(app, {.seed = 5});
  sim.Run(testutil::RandomTraffic(4, 5), 0, nullptr, nullptr);
  EXPECT_EQ(sim.OutcomeAt("Frontend", 0), nullptr);
  EXPECT_EQ(sim.Replicas("Frontend"), 1u);
}

TEST(SimulatorCapacity, ScalingOutHalvesUtilizationNotDemand) {
  const Application app = testutil::TinyApp();
  const auto model = std::make_shared<QueueingCapacityModel>();
  const TrafficSeries traffic = testutil::RandomTraffic(6, 5);

  Simulator one(app, {.seed = 5});
  one.SetCapacityModel(model, 50.0);
  one.Run(traffic, 0, nullptr, nullptr);

  Simulator two(app, {.seed = 5});
  two.SetCapacityModel(model, 50.0);
  two.SetReplicas("Worker", 2);
  two.Run(traffic, 0, nullptr, nullptr);

  for (size_t w = 0; w < traffic.windows(); ++w) {
    const CapacityOutcome* a = one.OutcomeAt("Worker", w);
    const CapacityOutcome* b = two.OutcomeAt("Worker", w);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Replicas change how the component copes, never what it is asked to do:
    // both simulators draw the same RNG stream, so demand is bit-identical.
    EXPECT_EQ(a->demand_cpu, b->demand_cpu) << "window " << w;
    EXPECT_DOUBLE_EQ(b->utilization, a->utilization / 2.0) << "window " << w;
  }
}

TEST(SimulatorCapacity, RecordedCpuMetricIsSaturatingUtilization) {
  const Application app = testutil::TinyApp();
  Simulator sim(app, {.seed = 7, .noise_frac = 0.0});
  sim.SetCapacityModel(std::make_shared<QueueingCapacityModel>(), 10.0);
  MetricsStore metrics;
  sim.Run(testutil::RandomTraffic(6, 7), 0, nullptr, &metrics);
  for (size_t w = 0; w < 6; ++w) {
    const CapacityOutcome* o = sim.OutcomeAt("Worker", w);
    ASSERT_NE(o, nullptr);
    const double scraped = metrics.At({"Worker", ResourceKind::kCpu}, w);
    EXPECT_NEAR(scraped, 100.0 * std::min(o->utilization, 1.0), 1e-9);
    EXPECT_LE(scraped, 100.0);  // the gauge cannot see past saturation
  }
}

TEST(DemandSeries, AtClampsIntoRange) {
  DemandSeries series;
  series.base = 10;
  series.cpu["A"] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(series.At("A", 5, -1.0), 1.0);    // before base -> first
  EXPECT_DOUBLE_EQ(series.At("A", 11, -1.0), 2.0);
  EXPECT_DOUBLE_EQ(series.At("A", 99, -1.0), 3.0);   // past end -> last
  EXPECT_DOUBLE_EQ(series.At("B", 11, -1.0), -1.0);  // unknown -> fallback
}

TEST(DemandSeries, MaxOverWindowRange) {
  DemandSeries series;
  series.base = 0;
  series.cpu["A"] = {5.0, 9.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(series.MaxOver("A", 0, 2, -1.0), 9.0);
  EXPECT_DOUBLE_EQ(series.MaxOver("A", 2, 4, -1.0), 4.0);
  EXPECT_DOUBLE_EQ(series.MaxOver("A", 3, 3, -1.0), -1.0);  // empty range
  EXPECT_DOUBLE_EQ(series.MaxOver("B", 0, 2, -1.0), -1.0);
}

TEST(ForecastFromEstimates, UpperCiFlooredByExpected) {
  EstimateMap estimates;
  ResourceEstimate cpu;
  cpu.expected = {10.0, 20.0};
  cpu.upper = {12.0, 18.0};  // degenerate upper in window 1
  estimates[{"A", ResourceKind::kCpu}] = cpu;
  ResourceEstimate mem;
  mem.expected = {500.0};
  estimates[{"A", ResourceKind::kMemory}] = mem;

  const DemandSeries series = ForecastFromEstimates(estimates, 3);
  EXPECT_EQ(series.base, 3u);
  ASSERT_TRUE(series.Has("A"));
  EXPECT_DOUBLE_EQ(series.At("A", 3, 0.0), 12.0);
  EXPECT_DOUBLE_EQ(series.At("A", 4, 0.0), 20.0);  // expected > upper wins
  EXPECT_EQ(series.cpu.size(), 1u);                // memory key skipped
}

TEST(SizeForDemand, StatelessScalesHorizontally) {
  SizingConfig sizing;
  ComponentObservation obs;
  obs.capacity_cpu = 50.0;
  // 100 demand at 0.6 target on 50-point replicas -> ceil(100/30) = 4.
  const ComponentTarget t = SizeForDemand(100.0, obs, sizing, 0.6);
  EXPECT_EQ(t.replicas, 4u);
  EXPECT_DOUBLE_EQ(t.capacity_cpu, 50.0);
  // Clamped at the envelope.
  EXPECT_EQ(SizeForDemand(1e9, obs, sizing, 0.6).replicas, sizing.max_replicas);
  EXPECT_EQ(SizeForDemand(0.0, obs, sizing, 0.6).replicas, sizing.min_replicas);
}

TEST(SizeForDemand, StatefulGrowsVerticallyInQuantizedSteps) {
  SizingConfig sizing;  // step 25, bounds [25, 400]
  ComponentObservation obs;
  obs.stateful = true;
  obs.replicas = 1;
  const ComponentTarget t = SizeForDemand(101.0, obs, sizing, 0.5);
  EXPECT_EQ(t.replicas, 1u);  // replicas never move on the vertical axis
  EXPECT_DOUBLE_EQ(t.capacity_cpu, 225.0);  // ceil(202/25)*25
  EXPECT_DOUBLE_EQ(SizeForDemand(1e9, obs, sizing, 0.5).capacity_cpu, 400.0);
  EXPECT_DOUBLE_EQ(SizeForDemand(0.0, obs, sizing, 0.5).capacity_cpu, 25.0);
}

TEST(ReactivePolicy, HoldsInsideDeadBand) {
  SizingConfig sizing;
  ReactiveThresholdPolicy policy(sizing, 0.80, 0.45, 1.0);
  ComponentObservation obs;
  obs.replicas = 2;
  obs.capacity_cpu = 50.0;
  obs.utilization = 0.60;
  obs.demand_cpu = 60.0;
  EXPECT_FALSE(policy.Desired("A", obs, {}).has_value());

  obs.utilization = 0.95;
  obs.demand_cpu = 95.0;
  const auto up = policy.Desired("A", obs, {});
  ASSERT_TRUE(up.has_value());
  EXPECT_GT(up->replicas, obs.replicas);

  obs.utilization = 0.10;
  obs.demand_cpu = 10.0;
  const auto down = policy.Desired("A", obs, {});
  ASSERT_TRUE(down.has_value());
  EXPECT_LT(down->replicas, obs.replicas);
}

TEST(PredictivePolicy, SizesForForecastPeakAheadOfDemand) {
  SizingConfig sizing;
  PredictiveDeepRestPolicy policy(sizing, 1.0);
  ComponentObservation obs;
  obs.capacity_cpu = 50.0;
  obs.demand_cpu = 20.0;  // current demand is calm

  DemandSeries forecast;
  forecast.base = 100;
  forecast.cpu["A"] = {20.0, 20.0, 150.0, 20.0};  // surge inside the lookahead

  PolicyInputs in;
  in.window = 100;
  in.horizon = 2;
  in.lookahead = 1;
  in.forecast = &forecast;
  const auto target = policy.Desired("A", obs, in);
  ASSERT_TRUE(target.has_value());
  // Sized for the 150 peak (ceil(150 / (50 * 0.6)) = 5), not the calm now.
  EXPECT_EQ(target->replicas, 5u);

  // Without the surge in range, the calm demand wins.
  in.lookahead = 0;
  EXPECT_EQ(policy.Desired("A", obs, in)->replicas, 1u);
}

TEST(OraclePolicy, SizesTrueDemandToTheKnee) {
  SizingConfig sizing;
  OraclePolicy policy(sizing, 0.82);
  ComponentObservation obs;
  obs.capacity_cpu = 50.0;
  obs.demand_cpu = 5.0;  // the observation lies; the oracle does not care

  DemandSeries truth;
  truth.base = 0;
  truth.cpu["A"] = {120.0, 130.0};
  PolicyInputs in;
  in.window = 0;
  in.horizon = 2;
  in.truth = &truth;
  const auto target = policy.Desired("A", obs, in);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->replicas, 4u);  // ceil(130 / (50 * 0.82))
}

// Fixed-target policy: lets the damping tests drive the controller without
// any telemetry arithmetic in the way.
class StubPolicy : public ScalingPolicy {
 public:
  explicit StubPolicy(const SizingConfig& sizing) : ScalingPolicy(sizing) {}
  const char* name() const override { return "stub"; }
  std::optional<ComponentTarget> Desired(const std::string&, const ComponentObservation&,
                                         const PolicyInputs&) const override {
    return target;
  }
  std::optional<ComponentTarget> target;
};

std::map<std::string, ComponentObservation> Obs(double demand = 40.0,
                                                const std::string& name = "A") {
  ComponentObservation obs;
  obs.demand_cpu = demand;
  obs.utilization = 0.5;
  return {{name, obs}};
}

TEST(AutoscaleController, UpCooldownBlocksRepeatScaleOut) {
  AutoscaleControllerConfig config;
  config.up_cooldown = 4;
  StubPolicy policy(config.sizing);
  AutoscaleController controller(policy, config);
  controller.AddComponent("A", false, 1, 50.0);

  policy.target = ComponentTarget{4, 50.0};
  EXPECT_EQ(controller.Tick(10, Obs(), {}).size(), 1u);
  EXPECT_EQ(controller.CurrentScale().at("A").replicas, 4u);

  policy.target = ComponentTarget{8, 50.0};
  EXPECT_TRUE(controller.Tick(12, Obs(), {}).empty());  // 12 < 10 + 4
  EXPECT_EQ(controller.CurrentScale().at("A").replicas, 4u);
  EXPECT_EQ(controller.counters().cooldown_blocks, 1u);

  EXPECT_EQ(controller.Tick(14, Obs(), {}).size(), 1u);
  EXPECT_EQ(controller.CurrentScale().at("A").replicas, 8u);
}

TEST(AutoscaleController, ScaleDownNeedsConsecutivePatience) {
  AutoscaleControllerConfig config;
  config.down_patience = 2;
  config.down_cooldown = 0;
  StubPolicy policy(config.sizing);
  AutoscaleController controller(policy, config);
  controller.AddComponent("A", false, 6, 50.0);

  policy.target = ComponentTarget{2, 50.0};
  EXPECT_TRUE(controller.Tick(20, Obs(), {}).empty());  // streak 1: blocked
  EXPECT_EQ(controller.counters().patience_blocks, 1u);

  // A hold in between resets the streak.
  policy.target = std::nullopt;
  controller.Tick(21, Obs(), {});
  policy.target = ComponentTarget{2, 50.0};
  EXPECT_TRUE(controller.Tick(22, Obs(), {}).empty());  // streak back to 1

  const auto actions = controller.Tick(23, Obs(), {});  // streak 2: released
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].reason, "scale-in");
  EXPECT_EQ(controller.CurrentScale().at("A").replicas, 2u);
}

TEST(AutoscaleController, DownCooldownHoldsCapacityAfterScaleUp) {
  AutoscaleControllerConfig config;
  config.up_cooldown = 0;
  config.down_cooldown = 8;
  config.down_patience = 1;
  StubPolicy policy(config.sizing);
  AutoscaleController controller(policy, config);
  controller.AddComponent("A", false, 2, 50.0);

  policy.target = ComponentTarget{6, 50.0};
  EXPECT_EQ(controller.Tick(10, Obs(), {}).size(), 1u);

  // A transient dip right after the surge must not shed the capacity.
  policy.target = ComponentTarget{2, 50.0};
  EXPECT_TRUE(controller.Tick(14, Obs(), {}).empty());  // 14 < 10 + 8
  EXPECT_EQ(controller.CurrentScale().at("A").replicas, 6u);

  EXPECT_EQ(controller.Tick(18, Obs(), {}).size(), 1u);  // cooldown over
  EXPECT_EQ(controller.CurrentScale().at("A").replicas, 2u);
}

TEST(AutoscaleController, BlankTelemetryFailsStatic) {
  AutoscaleControllerConfig config;
  StubPolicy policy(config.sizing);
  AutoscaleController controller(policy, config);
  controller.AddComponent("A", false, 3, 50.0);
  policy.target = ComponentTarget{9, 50.0};

  auto blank = Obs();
  blank.at("A").blank = true;
  EXPECT_TRUE(controller.Tick(10, blank, {}).empty());
  // Missing entirely is the same as blank.
  EXPECT_TRUE(controller.Tick(11, {}, {}).empty());
  EXPECT_EQ(controller.CurrentScale().at("A").replicas, 3u);
  EXPECT_EQ(controller.counters().blank_holds, 2u);
}

TEST(AutoscaleController, VerticalAxisForStatefulComponents) {
  AutoscaleControllerConfig config;
  config.down_patience = 1;
  config.down_cooldown = 0;
  StubPolicy policy(config.sizing);
  AutoscaleController controller(policy, config);
  controller.AddComponent("DB", true, 1, 50.0);

  policy.target = ComponentTarget{1, 150.0};
  auto actions = controller.Tick(5, Obs(40.0, "DB"), {});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].reason, "grow");
  EXPECT_DOUBLE_EQ(controller.CurrentScale().at("DB").capacity_cpu, 150.0);

  policy.target = ComponentTarget{1, 75.0};
  actions = controller.Tick(20, Obs(40.0, "DB"), {});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].reason, "shrink");
  EXPECT_EQ(controller.counters().grows, 1u);
  EXPECT_EQ(controller.counters().shrinks, 1u);
}

TEST(AutoscaleController, ActionLogLinesAreDeterministic) {
  AutoscaleControllerConfig config;
  StubPolicy policy(config.sizing);
  AutoscaleController controller(policy, config);
  controller.AddComponent("A", false, 1, 50.0);
  policy.target = ComponentTarget{4, 50.0};
  controller.Tick(10, Obs(42.5), {});

  const auto log = controller.ActionLog();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "w=0010 A replicas 1->4 cap 50->50 demand 42.5 scale-out");
}

TEST(PolicyKinds, NamesRoundTrip) {
  for (PolicyKind kind : AllPolicyKinds()) {
    PolicyKind parsed;
    ASSERT_TRUE(ParsePolicyKind(PolicyKindName(kind), parsed));
    EXPECT_EQ(parsed, kind);
    PolicyConfig config;
    EXPECT_NE(MakePolicy(kind, config), nullptr);
  }
  PolicyKind out;
  EXPECT_FALSE(ParsePolicyKind("bogus", out));
}

TrafficSpec ScenarioBase() {
  TrafficSpec spec;
  spec.days = 2;
  spec.windows_per_day = 12;
  spec.base_requests_per_window = 60.0;
  spec.mix = {{"/read", 2.0}, {"/write", 1.0}};
  return spec;
}

TEST(Scenarios, DeterministicGivenSeed) {
  for (ScenarioKind kind : AllScenarioKinds()) {
    ScenarioSpec scenario;
    scenario.kind = kind;
    const TrafficSeries a = BuildScenarioTraffic(ScenarioBase(), scenario, 42);
    const TrafficSeries b = BuildScenarioTraffic(ScenarioBase(), scenario, 42);
    ASSERT_EQ(a.windows(), b.windows()) << ScenarioKindName(kind);
    for (size_t w = 0; w < a.windows(); ++w) {
      for (size_t i = 0; i < a.api_count(); ++i) {
        ASSERT_EQ(a.rate(w, i), b.rate(w, i)) << ScenarioKindName(kind);
      }
    }
    ScenarioKind parsed;
    ASSERT_TRUE(ParseScenarioKind(ScenarioKindName(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
}

TEST(Scenarios, FlashCrowdAddsASurge) {
  ScenarioSpec diurnal;
  diurnal.kind = ScenarioKind::kDiurnal;
  ScenarioSpec flash = diurnal;
  flash.kind = ScenarioKind::kFlashCrowd;
  const TrafficSeries base = BuildScenarioTraffic(ScenarioBase(), diurnal, 42);
  const TrafficSeries surged = BuildScenarioTraffic(ScenarioBase(), flash, 42);
  ASSERT_EQ(base.windows(), surged.windows());
  EXPECT_GT(surged.GrandTotal(), base.GrandTotal() * 1.1);
  // Peak window carries the configured multiplier.
  double max_ratio = 0.0;
  for (size_t w = 0; w < base.windows(); ++w) {
    if (base.TotalAt(w) > 0.0) {
      max_ratio = std::max(max_ratio, surged.TotalAt(w) / base.TotalAt(w));
    }
  }
  EXPECT_NEAR(max_ratio, flash.flash_factor, 1e-6);
}

TEST(Scenarios, ApiMixDriftRotatesTheComposition) {
  ScenarioSpec drift;
  drift.kind = ScenarioKind::kApiMixDrift;
  drift.days = 2;
  drift.drift_strength = 1.0;
  const TrafficSeries series = BuildScenarioTraffic(ScenarioBase(), drift, 42);
  const size_t per_day = series.windows() / 2;
  double read_share_first = 0.0, read_share_last = 0.0;
  double total_first = 0.0, total_last = 0.0;
  size_t read_index = 0;
  ASSERT_TRUE(series.ApiIndex("/read", read_index));
  for (size_t w = 0; w < per_day; ++w) {
    read_share_first += series.rate(w, read_index);
    total_first += series.TotalAt(w);
    read_share_last += series.rate(per_day + w, read_index);
    total_last += series.TotalAt(per_day + w);
  }
  // Day 0 is read-heavy (2:1); by the last day the mix has rotated.
  EXPECT_GT(read_share_first / total_first, 0.55);
  EXPECT_LT(read_share_last / total_last, 0.45);
}

TEST(Scenarios, SliceTrafficCopiesTheRange) {
  const TrafficSeries series = testutil::RandomTraffic(10, 3);
  const TrafficSeries slice = SliceTraffic(series, 4, 7);
  ASSERT_EQ(slice.windows(), 3u);
  for (size_t w = 0; w < 3; ++w) {
    for (size_t a = 0; a < series.api_count(); ++a) {
      EXPECT_EQ(slice.rate(w, a), series.rate(4 + w, a));
    }
  }
  EXPECT_EQ(SliceTraffic(series, 8, 100).windows(), 2u);  // clamped
  EXPECT_EQ(SliceTraffic(series, 7, 3).windows(), 0u);    // inverted -> empty
}

}  // namespace
}  // namespace deeprest
