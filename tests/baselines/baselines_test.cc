#include "src/baselines/baselines.h"

#include <cmath>

#include <gtest/gtest.h>

namespace deeprest {
namespace {

// ---- SimpleScaling ----

struct ScalingFixture {
  MetricsStore metrics;
  TrafficSeries learn_traffic{{"/a"}, 48};  // 2 days x 24 windows
  MetricKey cpu{"Svc", ResourceKind::kCpu};
  size_t windows_per_day = 24;

  // Utilization exactly proportional to traffic: util = 0.5 * rps.
  ScalingFixture() {
    for (size_t w = 0; w < 48; ++w) {
      const double rps = 10.0 + static_cast<double>(w % 24);
      learn_traffic.set_rate(w, 0, rps);
      metrics.Record(cpu, w, 0.5 * rps);
    }
  }
};

TEST(SimpleScalingTest, RecoversExactProportionalScaling) {
  ScalingFixture fx;
  SimpleScaling baseline;
  baseline.Learn(fx.metrics, fx.learn_traffic, 0, 48, fx.windows_per_day, {fx.cpu});

  // Query at exactly 2x the learning traffic.
  TrafficSeries query({"/a"}, 24);
  for (size_t w = 0; w < 24; ++w) {
    query.set_rate(w, 0, 2.0 * (10.0 + static_cast<double>(w)));
  }
  const EstimateMap estimates = baseline.Estimate(query);
  const auto& estimate = estimates.at(fx.cpu);
  for (size_t w = 0; w < 24; ++w) {
    EXPECT_NEAR(estimate.expected[w], 2.0 * 0.5 * (10.0 + static_cast<double>(w)), 1e-9);
  }
}

TEST(SimpleScalingTest, PointEstimateHasDegenerateInterval) {
  ScalingFixture fx;
  SimpleScaling baseline;
  baseline.Learn(fx.metrics, fx.learn_traffic, 0, 48, fx.windows_per_day, {fx.cpu});
  TrafficSeries query({"/a"}, 2);
  query.set_rate(0, 0, 10.0);
  query.set_rate(1, 0, 10.0);
  const EstimateMap estimates = baseline.Estimate(query);
  const auto& estimate = estimates.at(fx.cpu);
  EXPECT_DOUBLE_EQ(estimate.lower[0], estimate.expected[0]);
  EXPECT_DOUBLE_EQ(estimate.upper[0], estimate.expected[0]);
}

TEST(SimpleScalingTest, CannotDistinguishApis) {
  // The documented flaw: a shift in API composition with the same total
  // traffic changes nothing in the estimate.
  MetricsStore metrics;
  MetricKey cpu{"Svc", ResourceKind::kCpu};
  TrafficSeries learn({"/a", "/b"}, 24);
  for (size_t w = 0; w < 24; ++w) {
    learn.set_rate(w, 0, 10.0);
    learn.set_rate(w, 1, 10.0);
    metrics.Record(cpu, w, 30.0);
  }
  SimpleScaling baseline;
  baseline.Learn(metrics, learn, 0, 24, 24, {cpu});

  TrafficSeries query_a_heavy({"/a", "/b"}, 24);
  TrafficSeries query_b_heavy({"/a", "/b"}, 24);
  for (size_t w = 0; w < 24; ++w) {
    query_a_heavy.set_rate(w, 0, 18.0);
    query_a_heavy.set_rate(w, 1, 2.0);
    query_b_heavy.set_rate(w, 0, 2.0);
    query_b_heavy.set_rate(w, 1, 18.0);
  }
  const auto est_a = baseline.Estimate(query_a_heavy).at(cpu);
  const auto est_b = baseline.Estimate(query_b_heavy).at(cpu);
  for (size_t w = 0; w < 24; ++w) {
    EXPECT_DOUBLE_EQ(est_a.expected[w], est_b.expected[w]);
  }
}

// ---- ComponentAwareScaling ----

Trace ApiATrace(uint64_t id) {
  Trace t(id, "/a");
  const SpanIndex root = t.AddSpan("Web", "a", kNoParent);
  t.AddSpan("SvcA", "work", root);
  return t;
}

Trace ApiBTrace(uint64_t id) {
  Trace t(id, "/b");
  const SpanIndex root = t.AddSpan("Web", "b", kNoParent);
  t.AddSpan("SvcB", "work", root);
  return t;
}

TEST(ComponentAwareScalingTest, ScalesPerComponentInvocations) {
  MetricsStore metrics;
  TraceCollector learn_traces;
  const MetricKey a_cpu{"SvcA", ResourceKind::kCpu};
  const MetricKey b_cpu{"SvcB", ResourceKind::kCpu};
  uint64_t id = 0;
  for (size_t w = 0; w < 24; ++w) {
    for (int i = 0; i < 10; ++i) {
      learn_traces.Collect(w, ApiATrace(id++));
      learn_traces.Collect(w, ApiBTrace(id++));
    }
    metrics.Record(a_cpu, w, 20.0);
    metrics.Record(b_cpu, w, 20.0);
  }
  ComponentAwareScaling baseline;
  baseline.Learn(metrics, learn_traces, 0, 24, 24, {a_cpu, b_cpu});

  // Query: only /a traffic, at 2x its learning volume.
  TraceCollector query_traces;
  for (size_t w = 0; w < 4; ++w) {
    for (int i = 0; i < 20; ++i) {
      query_traces.Collect(w, ApiATrace(id++));
    }
  }
  const EstimateMap estimates = baseline.Estimate(query_traces, 0, 4);
  // SvcA scaled 2x; SvcB had zero invocations -> scaled to zero.
  EXPECT_NEAR(estimates.at(a_cpu).expected[1], 40.0, 1e-9);
  EXPECT_NEAR(estimates.at(b_cpu).expected[1], 0.0, 1e-9);
}

TEST(ComponentAwareScalingTest, AllResourcesOfComponentShareFactor) {
  // The documented flaw: IOps scale with invocations even if the query only
  // performs reads.
  MetricsStore metrics;
  TraceCollector learn_traces;
  const MetricKey cpu{"DB", ResourceKind::kCpu};
  const MetricKey iops{"DB", ResourceKind::kWriteIops};
  uint64_t id = 0;
  for (size_t w = 0; w < 12; ++w) {
    for (int i = 0; i < 10; ++i) {
      Trace t(id++, "/x");
      t.AddSpan("DB", "op", kNoParent);
      learn_traces.Collect(w, t);
    }
    metrics.Record(cpu, w, 30.0);
    metrics.Record(iops, w, 15.0);
  }
  ComponentAwareScaling baseline;
  baseline.Learn(metrics, learn_traces, 0, 12, 12, {cpu, iops});

  TraceCollector query_traces;
  for (int i = 0; i < 30; ++i) {  // 3x invocations
    Trace t(id++, "/x");
    t.AddSpan("DB", "op", kNoParent);
    query_traces.Collect(0, t);
  }
  const EstimateMap estimates = baseline.Estimate(query_traces, 0, 1);
  EXPECT_NEAR(estimates.at(cpu).expected[0], 90.0, 1e-9);
  EXPECT_NEAR(estimates.at(iops).expected[0], 45.0, 1e-9);  // scaled blindly
}

TEST(ComponentAwareScalingTest, UnknownComponentKeepsProfile) {
  MetricsStore metrics;
  TraceCollector learn_traces;
  const MetricKey cpu{"Idle", ResourceKind::kCpu};
  for (size_t w = 0; w < 12; ++w) {
    metrics.Record(cpu, w, 5.0);  // never invoked, constant baseline
  }
  ComponentAwareScaling baseline;
  baseline.Learn(metrics, learn_traces, 0, 12, 12, {cpu});
  TraceCollector query_traces;
  const EstimateMap estimates = baseline.Estimate(query_traces, 0, 2);
  EXPECT_NEAR(estimates.at(cpu).expected[0], 5.0, 1e-9);
}

// ---- ResourceAwareDl ----

TEST(ResourceAwareDlTest, LearnsPeriodicPattern) {
  // Four identical days; forecasting the fifth should reproduce the pattern.
  MetricsStore metrics;
  const MetricKey cpu{"Svc", ResourceKind::kCpu};
  const size_t windows_per_day = 24;
  auto pattern = [](size_t w) {
    return 20.0 + 15.0 * std::sin(2.0 * M_PI * static_cast<double>(w) / 24.0);
  };
  for (size_t d = 0; d < 4; ++d) {
    for (size_t w = 0; w < windows_per_day; ++w) {
      metrics.Record(cpu, d * windows_per_day + w, pattern(w));
    }
  }
  ResourceAwareDlConfig config;
  config.epochs = 60;
  config.seed = 3;
  ResourceAwareDl baseline(config);
  baseline.Learn(metrics, 0, 4 * windows_per_day, windows_per_day, {cpu});
  const EstimateMap forecast = baseline.Forecast(windows_per_day);
  const auto& estimate = forecast.at(cpu);
  double total_err = 0.0;
  for (size_t w = 0; w < windows_per_day; ++w) {
    total_err += std::fabs(estimate.expected[w] - pattern(w)) / pattern(w);
  }
  EXPECT_LT(100.0 * total_err / windows_per_day, 15.0);
}

TEST(ResourceAwareDlTest, IgnoresQueryTrafficByDesign) {
  // The forecast API takes no traffic at all — structurally blind to the
  // query, which is the weakness the paper demonstrates.
  MetricsStore metrics;
  const MetricKey cpu{"Svc", ResourceKind::kCpu};
  for (size_t w = 0; w < 48; ++w) {
    metrics.Record(cpu, w, 10.0);
  }
  ResourceAwareDlConfig config;
  config.epochs = 10;
  ResourceAwareDl baseline(config);
  baseline.Learn(metrics, 0, 48, 24, {cpu});
  const EstimateMap forecast = baseline.Forecast(24);
  EXPECT_EQ(forecast.at(cpu).expected.size(), 24u);
}

TEST(ResourceAwareDlTest, MultiDayHorizonRollsForward) {
  MetricsStore metrics;
  const MetricKey cpu{"Svc", ResourceKind::kCpu};
  for (size_t w = 0; w < 48; ++w) {
    metrics.Record(cpu, w, 10.0 + (w % 24));
  }
  ResourceAwareDlConfig config;
  config.epochs = 10;
  ResourceAwareDl baseline(config);
  baseline.Learn(metrics, 0, 48, 24, {cpu});
  const EstimateMap forecast = baseline.Forecast(72);  // 3 days
  EXPECT_EQ(forecast.at(cpu).expected.size(), 72u);
  for (double v : forecast.at(cpu).expected) {
    EXPECT_GE(v, 0.0);
  }
}

TEST(ResourceAwareDlTest, IntervalsOrdered) {
  MetricsStore metrics;
  const MetricKey cpu{"Svc", ResourceKind::kCpu};
  for (size_t w = 0; w < 72; ++w) {
    metrics.Record(cpu, w, 10.0 + 5.0 * std::sin(w * 0.3));
  }
  ResourceAwareDlConfig config;
  config.epochs = 15;
  ResourceAwareDl baseline(config);
  baseline.Learn(metrics, 0, 72, 24, {cpu});
  const EstimateMap forecast = baseline.Forecast(24);
  const auto& estimate = forecast.at(cpu);
  for (size_t w = 0; w < 24; ++w) {
    EXPECT_LE(estimate.lower[w], estimate.expected[w]);
    EXPECT_LE(estimate.expected[w], estimate.upper[w]);
  }
}

}  // namespace
}  // namespace deeprest
