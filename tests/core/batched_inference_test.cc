// Bit-exactness of the batch-major inference path (src/nn/batched.h +
// DeepRestEstimator::EstimateFromFeaturesBatch) against the sequential
// reference path, and of the cached warm-start state against its replay
// oracle. "Bit-exact" is literal: every double in every estimate series must
// compare equal, across batch sizes, mixed series lengths, null entries, and
// every ablation configuration.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/sim/simulator.h"

namespace deeprest {
namespace {

Application TinyApp() {
  Application app("tiny");
  ComponentSpec frontend;
  frontend.name = "Frontend";
  frontend.cpu_baseline = 2.0;
  app.AddComponent(frontend);
  ComponentSpec worker;
  worker.name = "Worker";
  worker.cpu_baseline = 1.0;
  app.AddComponent(worker);
  ComponentSpec db;
  db.name = "DB";
  db.stateful = true;
  db.cpu_baseline = 1.5;
  db.initial_disk_mb = 100.0;
  db.write_noise_ops = 0.2;
  db.write_noise_kb = 2.0;
  app.AddComponent(db);

  CostTerm cpu_small;
  cpu_small.base = 0.05;
  CostTerm cpu_mid;
  cpu_mid.base = 0.12;
  CostTerm db_read_cpu;
  db_read_cpu.base = 0.10;
  CostTerm db_write_cpu;
  db_write_cpu.base = 0.08;
  CostTerm iops;
  iops.resource = ResourceKind::kWriteIops;
  iops.base = 1.0;
  CostTerm thr;
  thr.resource = ResourceKind::kWriteThroughput;
  thr.base = 1.5;

  ApiEndpoint read;
  read.name = "/read";
  OpNode read_db{"DB", "find", 1.0, "", {db_read_cpu}, {}};
  OpNode read_worker{"Worker", "get", 1.0, "", {cpu_mid}, {read_db}};
  read.root = OpNode{"Frontend", "read", 1.0, "", {cpu_small}, {read_worker}};
  app.AddApi(read);

  ApiEndpoint write;
  write.name = "/write";
  OpNode write_db{"DB", "insert", 1.0, "", {db_write_cpu, iops, thr}, {}};
  OpNode write_worker{"Worker", "put", 1.0, "", {cpu_mid}, {write_db}};
  write.root = OpNode{"Frontend", "write", 1.0, "", {cpu_small}, {write_worker}};
  app.AddApi(write);
  return app;
}

TrafficSeries RandomTraffic(size_t windows, uint64_t seed) {
  TrafficSeries series({"/read", "/write"}, windows);
  Rng rng(seed);
  for (size_t w = 0; w < windows; ++w) {
    series.set_rate(w, 0, rng.Uniform(10.0, 120.0));
    series.set_rate(w, 1, rng.Uniform(5.0, 60.0));
  }
  return series;
}

struct TinySetup {
  Application app = TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  size_t learn_windows = 96;
  size_t query_windows = 33;
};

TinySetup MakeSetup(uint64_t seed = 1) {
  TinySetup s;
  Simulator sim(s.app, {.seed = seed});
  sim.Run(RandomTraffic(s.learn_windows, seed), 0, &s.traces, &s.metrics);
  sim.Run(RandomTraffic(s.query_windows, seed + 100), s.learn_windows, &s.traces, &s.metrics);
  return s;
}

EstimatorConfig FastConfig() {
  EstimatorConfig config;
  config.hidden_dim = 8;
  config.epochs = 8;
  config.bptt_chunk = 24;
  config.seed = 3;
  return config;
}

using FeatureSeries = std::vector<std::vector<float>>;

void ExpectSameEstimates(const EstimateMap& batch, const EstimateMap& reference) {
  ASSERT_EQ(batch.size(), reference.size());
  for (const auto& [key, estimate] : reference) {
    ASSERT_TRUE(batch.count(key)) << key.ToString();
    const auto& other = batch.at(key);
    EXPECT_EQ(other.expected, estimate.expected) << key.ToString();
    EXPECT_EQ(other.lower, estimate.lower) << key.ToString();
    EXPECT_EQ(other.upper, estimate.upper) << key.ToString();
  }
}

// Queries of cycling lengths so any batch mixes series lengths: padding and
// the shrinking active width are exercised at every batch size.
std::vector<FeatureSeries> MakeQueries(const DeepRestEstimator& model, const TinySetup& s,
                                       size_t count) {
  const std::vector<size_t> lengths = {8, 5, 12, 1, 3, 9, 2};
  std::vector<FeatureSeries> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t len = lengths[i % lengths.size()];
    const size_t from = s.learn_windows + (i % 7);
    queries.push_back(model.features().ExtractSeries(s.traces, from, from + len));
  }
  return queries;
}

void ExpectBatchMatchesReference(const DeepRestEstimator& model,
                                 const std::vector<FeatureSeries>& queries) {
  std::vector<const FeatureSeries*> pointers;
  pointers.reserve(queries.size());
  for (const FeatureSeries& q : queries) {
    pointers.push_back(&q);
  }
  const std::vector<EstimateMap> batched = model.EstimateFromFeaturesBatch(pointers);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameEstimates(batched[i], model.EstimateFromFeaturesReference(queries[i]));
  }
}

TEST(BatchedInferenceTest, BitExactAcrossBatchSizes) {
  const TinySetup s = MakeSetup();
  DeepRestEstimator model(FastConfig());
  model.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  for (const size_t batch : {1u, 2u, 7u, 16u, 33u}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    ExpectBatchMatchesReference(model, MakeQueries(model, s, batch));
  }
}

TEST(BatchedInferenceTest, NullAndEmptyEntries) {
  const TinySetup s = MakeSetup();
  DeepRestEstimator model(FastConfig());
  model.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());

  const std::vector<FeatureSeries> queries = MakeQueries(model, s, 3);
  const FeatureSeries empty;
  const std::vector<const FeatureSeries*> pointers = {&queries[0], nullptr, &empty,
                                                      &queries[1], nullptr, &queries[2]};
  const std::vector<EstimateMap> batched = model.EstimateFromFeaturesBatch(pointers);
  ASSERT_EQ(batched.size(), pointers.size());
  EXPECT_TRUE(batched[1].empty());
  EXPECT_TRUE(batched[4].empty());
  ExpectSameEstimates(batched[0], model.EstimateFromFeaturesReference(queries[0]));
  ExpectSameEstimates(batched[2], model.EstimateFromFeaturesReference(empty));
  ExpectSameEstimates(batched[3], model.EstimateFromFeaturesReference(queries[1]));
  ExpectSameEstimates(batched[5], model.EstimateFromFeaturesReference(queries[2]));
}

TEST(BatchedInferenceTest, BitExactUnderAblations) {
  const TinySetup s = MakeSetup();
  for (const int ablation : {0, 1, 2, 3}) {
    SCOPED_TRACE("ablation=" + std::to_string(ablation));
    EstimatorConfig config = FastConfig();
    if (ablation == 1) config.use_attention = false;
    if (ablation == 2) config.use_api_mask = false;
    if (ablation == 3) config.warm_start = false;
    DeepRestEstimator model(config);
    model.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
    ExpectBatchMatchesReference(model, MakeQueries(model, s, 7));
  }
}

void ExpectCacheMatchesReplay(const DeepRestEstimator& model) {
  const std::vector<Matrix> replayed = model.ReplayWarmStart();
  const std::vector<Matrix>& cached = model.WarmStartCache();
  ASSERT_EQ(cached.size(), replayed.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    ASSERT_EQ(cached[i].rows(), replayed[i].rows());
    ASSERT_EQ(cached[i].cols(), replayed[i].cols());
    for (size_t r = 0; r < cached[i].rows(); ++r) {
      EXPECT_EQ(cached[i].At(r, 0), replayed[i].At(r, 0)) << "expert " << i << " row " << r;
    }
  }
}

TEST(BatchedInferenceTest, WarmStartCacheMatchesReplayOracle) {
  const TinySetup s = MakeSetup();
  DeepRestEstimator model(FastConfig());
  model.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  ExpectCacheMatchesReplay(model);

  // Fine-tuning appends learn history and retrains: the cache must follow.
  model.ContinueLearning(s.traces, s.metrics, s.learn_windows,
                         s.learn_windows + s.query_windows, 2);
  ExpectCacheMatchesReplay(model);
  ExpectBatchMatchesReference(model, MakeQueries(model, s, 7));
}

TEST(BatchedInferenceTest, CloneCarriesWarmStartCache) {
  const TinySetup s = MakeSetup();
  DeepRestEstimator model(FastConfig());
  model.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const std::unique_ptr<DeepRestEstimator> clone = model.Clone();
  ASSERT_TRUE(clone->trained());
  ExpectCacheMatchesReplay(*clone);
  const std::vector<FeatureSeries> queries = MakeQueries(model, s, 5);
  std::vector<const FeatureSeries*> pointers;
  for (const FeatureSeries& q : queries) {
    pointers.push_back(&q);
  }
  const auto original = model.EstimateFromFeaturesBatch(pointers);
  const auto cloned = clone->EstimateFromFeaturesBatch(pointers);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameEstimates(cloned[i], original[i]);
  }
}

}  // namespace
}  // namespace deeprest
