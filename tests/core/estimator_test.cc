#include "src/core/estimator.h"

#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/sanity.h"
#include "src/sim/simulator.h"

namespace deeprest {
namespace {

// A three-component application small enough to train in milliseconds:
//   /read : Frontend -> Worker -> DB(find, CPU only)
//   /write: Frontend -> Worker -> DB(insert, CPU + write IOps + throughput)
Application TinyApp() {
  Application app("tiny");
  ComponentSpec frontend;
  frontend.name = "Frontend";
  frontend.cpu_baseline = 2.0;
  app.AddComponent(frontend);
  ComponentSpec worker;
  worker.name = "Worker";
  worker.cpu_baseline = 1.0;
  app.AddComponent(worker);
  ComponentSpec db;
  db.name = "DB";
  db.stateful = true;
  db.cpu_baseline = 1.5;
  db.initial_disk_mb = 100.0;
  db.write_noise_ops = 0.2;
  db.write_noise_kb = 2.0;
  app.AddComponent(db);

  CostTerm cpu_small;
  cpu_small.base = 0.05;
  CostTerm cpu_mid;
  cpu_mid.base = 0.12;
  CostTerm db_read_cpu;
  db_read_cpu.base = 0.10;
  CostTerm db_write_cpu;
  db_write_cpu.base = 0.08;
  CostTerm iops;
  iops.resource = ResourceKind::kWriteIops;
  iops.base = 1.0;
  CostTerm thr;
  thr.resource = ResourceKind::kWriteThroughput;
  thr.base = 1.5;

  ApiEndpoint read;
  read.name = "/read";
  OpNode read_db{"DB", "find", 1.0, "", {db_read_cpu}, {}};
  OpNode read_worker{"Worker", "get", 1.0, "", {cpu_mid}, {read_db}};
  read.root = OpNode{"Frontend", "read", 1.0, "", {cpu_small}, {read_worker}};
  app.AddApi(read);

  ApiEndpoint write;
  write.name = "/write";
  OpNode write_db{"DB", "insert", 1.0, "", {db_write_cpu, iops, thr}, {}};
  OpNode write_worker{"Worker", "put", 1.0, "", {cpu_mid}, {write_db}};
  write.root = OpNode{"Frontend", "write", 1.0, "", {cpu_small}, {write_worker}};
  app.AddApi(write);
  return app;
}

// Independent random rates per API per window: maximally identifiable.
TrafficSeries RandomTraffic(size_t windows, uint64_t seed) {
  TrafficSeries series({"/read", "/write"}, windows);
  Rng rng(seed);
  for (size_t w = 0; w < windows; ++w) {
    series.set_rate(w, 0, rng.Uniform(10.0, 120.0));
    series.set_rate(w, 1, rng.Uniform(5.0, 60.0));
  }
  return series;
}

struct TinySetup {
  Application app = TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  TrafficSeries learn_traffic;
  TrafficSeries query_traffic;
  size_t learn_windows = 96;
  size_t query_windows = 32;
};

TinySetup MakeSetup(uint64_t seed = 1) {
  TinySetup s;
  s.learn_traffic = RandomTraffic(s.learn_windows, seed);
  s.query_traffic = RandomTraffic(s.query_windows, seed + 100);
  Simulator sim(s.app, {.seed = seed});
  sim.Run(s.learn_traffic, 0, &s.traces, &s.metrics);
  sim.Run(s.query_traffic, s.learn_windows, &s.traces, &s.metrics);
  return s;
}

EstimatorConfig FastConfig() {
  EstimatorConfig config;
  config.hidden_dim = 8;
  config.epochs = 20;
  config.bptt_chunk = 24;
  config.seed = 3;
  return config;
}

TEST(DeepRestEstimatorTest, UntrainedByDefault) {
  DeepRestEstimator estimator;
  EXPECT_FALSE(estimator.trained());
}

TEST(DeepRestEstimatorTest, LearnBuildsExpertsForAllResources) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  EXPECT_TRUE(estimator.trained());
  // 2 stateless x 2 + 1 stateful x 5 = 9 experts.
  EXPECT_EQ(estimator.expert_count(), 9u);
  EXPECT_GT(estimator.TotalParameters(), 1000u);
  EXPECT_GT(estimator.features().dimension(), 0u);
}

TEST(DeepRestEstimatorTest, TrainingLossDecreases) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const auto& losses = estimator.epoch_losses();
  ASSERT_GE(losses.size(), 2u);
  EXPECT_LT(losses.back(), losses.front() * 0.8f);
}

TEST(DeepRestEstimatorTest, EstimateFromTracesHasRightShape) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const EstimateMap estimates =
      estimator.EstimateFromTraces(s.traces, s.learn_windows, s.learn_windows + s.query_windows);
  EXPECT_EQ(estimates.size(), 9u);
  for (const auto& [key, estimate] : estimates) {
    EXPECT_EQ(estimate.expected.size(), s.query_windows) << key.ToString();
    EXPECT_EQ(estimate.lower.size(), s.query_windows);
    EXPECT_EQ(estimate.upper.size(), s.query_windows);
  }
}

TEST(DeepRestEstimatorTest, IntervalsAreOrdered) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const EstimateMap estimates =
      estimator.EstimateFromTraces(s.traces, s.learn_windows, s.learn_windows + s.query_windows);
  for (const auto& [key, estimate] : estimates) {
    for (size_t t = 0; t < s.query_windows; ++t) {
      EXPECT_LE(estimate.lower[t], estimate.expected[t]) << key.ToString();
      EXPECT_LE(estimate.expected[t], estimate.upper[t]) << key.ToString();
      EXPECT_GE(estimate.lower[t], 0.0);
    }
  }
}

double SeriesMape(const std::vector<double>& pred, const std::vector<double>& actual) {
  double total = 0.0;
  for (size_t t = 0; t < pred.size(); ++t) {
    total += std::fabs(pred[t] - actual[t]) / std::max(actual[t], 1.0);
  }
  return 100.0 * total / static_cast<double>(pred.size());
}

TEST(DeepRestEstimatorTest, LearnsTrafficToUtilizationMapping) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const size_t query_from = s.learn_windows;
  const size_t query_to = s.learn_windows + s.query_windows;
  const EstimateMap estimates = estimator.EstimateFromTraces(s.traces, query_from, query_to);

  const MetricKey worker_cpu{"Worker", ResourceKind::kCpu};
  const MetricKey db_iops{"DB", ResourceKind::kWriteIops};
  const double cpu_mape = SeriesMape(estimates.at(worker_cpu).expected,
                                     s.metrics.Series(worker_cpu, query_from, query_to));
  const double iops_mape = SeriesMape(estimates.at(db_iops).expected,
                                      s.metrics.Series(db_iops, query_from, query_to));
  EXPECT_LT(cpu_mape, 20.0) << "Worker CPU estimate off by " << cpu_mape << "%";
  EXPECT_LT(iops_mape, 25.0) << "DB write IOps estimate off by " << iops_mape << "%";
}

TEST(DeepRestEstimatorTest, EstimateFromTrafficUsesSynthesizer) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const EstimateMap estimates = estimator.EstimateFromTraffic(s.query_traffic, 7);
  const MetricKey worker_cpu{"Worker", ResourceKind::kCpu};
  const double mape =
      SeriesMape(estimates.at(worker_cpu).expected,
                 s.metrics.Series(worker_cpu, s.learn_windows, s.learn_windows + s.query_windows));
  EXPECT_LT(mape, 25.0);
}

TEST(DeepRestEstimatorTest, MaskIdentifiesResponsibleApi) {
  // Fig. 22 property: DB write IOps must attribute to /write, not /read.
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const auto influence = estimator.ApiInfluence({"DB", ResourceKind::kWriteIops});
  ASSERT_TRUE(influence.count("/read"));
  ASSERT_TRUE(influence.count("/write"));
  EXPECT_GT(influence.at("/write"), influence.at("/read"));
}

TEST(DeepRestEstimatorTest, ExpertParametersExposedForPca) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const auto params = estimator.ExpertParameters({"Worker", ResourceKind::kCpu});
  EXPECT_FALSE(params.empty());
  EXPECT_TRUE(estimator.ExpertParameters({"Nope", ResourceKind::kCpu}).empty());
}

TEST(DeepRestEstimatorTest, AttentionWeightsQueryable) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  // Self-attention is structurally zero.
  EXPECT_DOUBLE_EQ(estimator.AttentionWeight({"DB", ResourceKind::kCpu},
                                             {"DB", ResourceKind::kCpu}),
                   0.0);
  // Cross weights exist (value may be any sign).
  (void)estimator.AttentionWeight({"DB", ResourceKind::kWriteIops},
                                  {"Worker", ResourceKind::kCpu});
}

TEST(DeepRestEstimatorTest, SaveLoadReproducesPredictions) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const std::string path = ::testing::TempDir() + "/deeprest_estimator.bin";
  ASSERT_TRUE(estimator.Save(path));

  DeepRestEstimator restored;
  ASSERT_TRUE(restored.Load(path));
  EXPECT_TRUE(restored.trained());
  EXPECT_EQ(restored.expert_count(), estimator.expert_count());

  const EstimateMap a =
      estimator.EstimateFromTraces(s.traces, s.learn_windows, s.learn_windows + 8);
  const EstimateMap b =
      restored.EstimateFromTraces(s.traces, s.learn_windows, s.learn_windows + 8);
  for (const auto& [key, estimate] : a) {
    const auto& other = b.at(key);
    for (size_t t = 0; t < estimate.expected.size(); ++t) {
      EXPECT_NEAR(estimate.expected[t], other.expected[t], 1e-4) << key.ToString();
    }
  }
  std::remove(path.c_str());
}

// The serving layer's snapshot guarantees rest on Save/Load reconstructing
// the exact same function: the same feature series must map to bit-identical
// estimates, not merely close ones.
TEST(DeepRestEstimatorTest, SaveLoadEstimatesAreBitIdentical) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const std::string path = ::testing::TempDir() + "/deeprest_bitexact.bin";
  ASSERT_TRUE(estimator.Save(path));
  DeepRestEstimator restored;
  ASSERT_TRUE(restored.Load(path));
  std::remove(path.c_str());

  const auto features = estimator.features().ExtractSeries(s.traces, s.learn_windows,
                                                           s.learn_windows + s.query_windows);
  const EstimateMap a = estimator.EstimateFromFeatures(features);
  const EstimateMap b = restored.EstimateFromFeatures(features);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, estimate] : a) {
    EXPECT_EQ(estimate.expected, b.at(key).expected) << key.ToString();
    EXPECT_EQ(estimate.lower, b.at(key).lower) << key.ToString();
    EXPECT_EQ(estimate.upper, b.at(key).upper) << key.ToString();
  }
}

TEST(DeepRestEstimatorTest, CloneIsBitIdenticalAndIndependent) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  std::unique_ptr<DeepRestEstimator> clone = estimator.Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->expert_count(), estimator.expert_count());

  const auto features = estimator.features().ExtractSeries(s.traces, s.learn_windows,
                                                           s.learn_windows + s.query_windows);
  const EstimateMap original = estimator.EstimateFromFeatures(features);
  const EstimateMap cloned = clone->EstimateFromFeatures(features);
  for (const auto& [key, estimate] : original) {
    EXPECT_EQ(estimate.expected, cloned.at(key).expected) << key.ToString();
  }

  // Fine-tuning the clone must not disturb the original (independent
  // parameters) — this is what lets ContinualLearner train a clone while the
  // published snapshot keeps serving.
  clone->ContinueLearning(s.traces, s.metrics, s.learn_windows,
                          s.learn_windows + s.query_windows, 2);
  const EstimateMap after = estimator.EstimateFromFeatures(features);
  bool clone_diverged = false;
  const EstimateMap cloned_after = clone->EstimateFromFeatures(features);
  for (const auto& [key, estimate] : original) {
    EXPECT_EQ(estimate.expected, after.at(key).expected) << key.ToString();
    if (estimate.expected != cloned_after.at(key).expected) {
      clone_diverged = true;
    }
  }
  EXPECT_TRUE(clone_diverged);
}

TEST(DeepRestEstimatorTest, CloneOfUntrainedIsUntrained) {
  DeepRestEstimator estimator;
  std::unique_ptr<DeepRestEstimator> clone = estimator.Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_FALSE(clone->trained());
}

TEST(DeepRestEstimatorTest, BatchEstimateMatchesPerCallExactly) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());

  const size_t mid = s.learn_windows + s.query_windows / 2;
  const auto first = estimator.features().ExtractSeries(s.traces, s.learn_windows, mid);
  const auto second =
      estimator.features().ExtractSeries(s.traces, mid, s.learn_windows + s.query_windows);
  const auto results = estimator.EstimateFromFeaturesBatch({&first, nullptr, &second, &first});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[1].empty());  // null entries yield empty maps

  const EstimateMap ref_first = estimator.EstimateFromFeatures(first);
  const EstimateMap ref_second = estimator.EstimateFromFeatures(second);
  for (const auto& [key, estimate] : ref_first) {
    EXPECT_EQ(estimate.expected, results[0].at(key).expected) << key.ToString();
    EXPECT_EQ(estimate.lower, results[0].at(key).lower) << key.ToString();
    EXPECT_EQ(estimate.upper, results[0].at(key).upper) << key.ToString();
    EXPECT_EQ(estimate.expected, results[3].at(key).expected) << key.ToString();
  }
  for (const auto& [key, estimate] : ref_second) {
    EXPECT_EQ(estimate.expected, results[2].at(key).expected) << key.ToString();
  }
}

TEST(DeepRestEstimatorTest, LoadFromMissingFileFails) {
  DeepRestEstimator estimator;
  EXPECT_FALSE(estimator.Load("/nonexistent/model.bin"));
}

TEST(DeepRestEstimatorTest, AblationConfigsTrainAndPredict) {
  TinySetup s = MakeSetup();
  for (int variant = 0; variant < 3; ++variant) {
    EstimatorConfig config = FastConfig();
    config.epochs = 6;
    config.use_api_mask = variant != 0;
    config.use_attention = variant != 1;
    config.use_recurrence = variant != 2;
    DeepRestEstimator estimator(config);
    estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
    const EstimateMap estimates = estimator.EstimateFromTraffic(s.query_traffic, 5);
    EXPECT_EQ(estimates.size(), 9u) << "variant " << variant;
  }
}

TEST(DeepRestEstimatorTest, ContinueLearningImprovesFit) {
  TinySetup s = MakeSetup();
  EstimatorConfig config = FastConfig();
  config.epochs = 6;  // deliberately undertrained
  DeepRestEstimator estimator(config);
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const float loss_after_learn = estimator.epoch_losses().back();

  // Fine-tune on the next batch of telemetry (the query windows).
  estimator.ContinueLearning(s.traces, s.metrics, s.learn_windows,
                             s.learn_windows + s.query_windows, 10);
  const float loss_after_continue = estimator.epoch_losses().back();
  EXPECT_LT(loss_after_continue, loss_after_learn);
  // Warm-start history grew.
  EXPECT_GT(estimator.epoch_losses().size(), 6u);
}

TEST(DeepRestEstimatorTest, ContinueLearningKeepsFeatureSpaceFrozen) {
  TinySetup s = MakeSetup();
  DeepRestEstimator estimator(FastConfig());
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const size_t dim_before = estimator.features().dimension();
  estimator.ContinueLearning(s.traces, s.metrics, s.learn_windows,
                             s.learn_windows + s.query_windows, 2);
  EXPECT_EQ(estimator.features().dimension(), dim_before);
}

TEST(DeepRestEstimatorTest, HiddenTrajectoriesHaveExpectedShape) {
  TinySetup s = MakeSetup();
  EstimatorConfig config = FastConfig();
  config.epochs = 4;
  DeepRestEstimator estimator(config);
  estimator.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  const auto trajectories = estimator.HiddenTrajectoriesOnLearnData(10);
  EXPECT_EQ(trajectories.size(), estimator.expert_count());
  for (const auto& [key, trajectory] : trajectories) {
    EXPECT_EQ(trajectory.size(), 10u * config.hidden_dim) << key.ToString();
  }
}

TEST(DeepRestEstimatorTest, TransferCopiesRecurrentBlocks) {
  TinySetup s1 = MakeSetup(1);
  TinySetup s2 = MakeSetup(21);
  EstimatorConfig config = FastConfig();
  config.epochs = 6;
  DeepRestEstimator donor(config);
  donor.Learn(s1.traces, s1.metrics, 0, s1.learn_windows, s1.app.MetricCatalog());

  EstimatorConfig fresh_config = FastConfig();
  fresh_config.epochs = 0;  // build only
  fresh_config.seed = 99;
  DeepRestEstimator receiver(fresh_config);
  receiver.Learn(s2.traces, s2.metrics, 0, s2.learn_windows, s2.app.MetricCatalog());

  const MetricKey probe{"DB", ResourceKind::kWriteIops};
  const auto before = receiver.ExpertParameters(probe);
  const size_t transferred = receiver.TransferRecurrentWeightsFrom(donor);
  EXPECT_EQ(transferred, receiver.expert_count());
  const auto after = receiver.ExpertParameters(probe);
  // Same app, same key: the recurrent blocks are now the donor's (exact
  // match by key), so the flattened parameters must have changed.
  EXPECT_NE(before, after);
  // Exact-key match means the recurrent part equals the donor's.
  const auto donor_params = donor.ExpertParameters(probe);
  // Flattened layout: Wz,Uz,bz,Wk,Uk,bk,Wh,Uh,bh. Check a Uz entry.
  const size_t in_dim = receiver.features().dimension();
  const size_t h = 8;  // FastConfig hidden_dim
  const size_t uz_offset = h * in_dim;
  const size_t donor_in_dim = donor.features().dimension();
  EXPECT_FLOAT_EQ(after[uz_offset], donor_params[h * donor_in_dim]);
}

TEST(DeepRestEstimatorTest, TransferRejectsMismatchedHiddenDim) {
  TinySetup s = MakeSetup();
  EstimatorConfig config_a = FastConfig();
  config_a.epochs = 2;
  DeepRestEstimator a(config_a);
  a.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  EstimatorConfig config_b = FastConfig();
  config_b.hidden_dim = 4;
  config_b.epochs = 0;
  DeepRestEstimator b(config_b);
  b.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  EXPECT_EQ(b.TransferRecurrentWeightsFrom(a), 0u);
}

TEST(DeepRestEstimatorTest, DeterministicTraining) {
  TinySetup s1 = MakeSetup(11);
  TinySetup s2 = MakeSetup(11);
  DeepRestEstimator a(FastConfig());
  DeepRestEstimator b(FastConfig());
  a.Learn(s1.traces, s1.metrics, 0, s1.learn_windows, s1.app.MetricCatalog());
  b.Learn(s2.traces, s2.metrics, 0, s2.learn_windows, s2.app.MetricCatalog());
  ASSERT_EQ(a.epoch_losses().size(), b.epoch_losses().size());
  for (size_t e = 0; e < a.epoch_losses().size(); ++e) {
    EXPECT_FLOAT_EQ(a.epoch_losses()[e], b.epoch_losses()[e]);
  }
}

}  // namespace
}  // namespace deeprest
