#include "src/core/feature_extractor.h"

#include <sstream>

#include <gtest/gtest.h>

namespace deeprest {
namespace {

Trace ReadTrace(uint64_t id = 1) {
  Trace t(id, "/read");
  const SpanIndex root = t.AddSpan("Frontend", "read", kNoParent);
  const SpanIndex svc = t.AddSpan("Service", "get", root);
  t.AddSpan("DB", "find", svc);
  return t;
}

Trace WriteTrace(uint64_t id = 2) {
  Trace t(id, "/write");
  const SpanIndex root = t.AddSpan("Frontend", "write", kNoParent);
  const SpanIndex svc = t.AddSpan("Service", "put", root);
  t.AddSpan("DB", "insert", svc);
  return t;
}

TEST(FeatureExtractorTest, DimensionCountsDistinctPrefixes) {
  FeatureExtractor fx;
  fx.LearnTrace(ReadTrace());
  // Prefixes: [F:read], [F:read, S:get], [F:read, S:get, DB:find].
  EXPECT_EQ(fx.dimension(), 3u);
  fx.LearnTrace(ReadTrace(5));  // Same shape: no new dimensions.
  EXPECT_EQ(fx.dimension(), 3u);
  fx.LearnTrace(WriteTrace());
  EXPECT_EQ(fx.dimension(), 6u);
}

TEST(FeatureExtractorTest, ExtractCountsOccurrences) {
  FeatureExtractor fx;
  fx.LearnTrace(ReadTrace());
  fx.LearnTrace(WriteTrace());
  Trace r1 = ReadTrace(10);
  Trace r2 = ReadTrace(11);
  Trace w1 = WriteTrace(12);
  const auto features = fx.Extract({&r1, &r2, &w1});
  ASSERT_EQ(features.size(), 6u);
  float total = 0.0f;
  for (float f : features) {
    total += f;
  }
  // 3 traces x 3 prefixes each.
  EXPECT_FLOAT_EQ(total, 9.0f);
  // Read prefixes counted twice, write prefixes once.
  EXPECT_FLOAT_EQ(features[0], 2.0f);
  EXPECT_FLOAT_EQ(features[3], 1.0f);
}

TEST(FeatureExtractorTest, UnknownPathsIgnoredAfterLearning) {
  FeatureExtractor fx;
  fx.LearnTrace(ReadTrace());
  Trace unknown(20, "/new");
  unknown.AddSpan("Frontend", "newOp", kNoParent);
  const auto features = fx.Extract({&unknown});
  for (float f : features) {
    EXPECT_FLOAT_EQ(f, 0.0f);
  }
}

TEST(FeatureExtractorTest, PartiallyKnownTraceCountsKnownPrefixes) {
  FeatureExtractor fx;
  fx.LearnTrace(ReadTrace());
  // Same root + service, but a new leaf under the service.
  Trace partial(21, "/read");
  const SpanIndex root = partial.AddSpan("Frontend", "read", kNoParent);
  const SpanIndex svc = partial.AddSpan("Service", "get", root);
  partial.AddSpan("NewDB", "find", svc);
  const auto features = fx.Extract({&partial});
  EXPECT_FLOAT_EQ(features[0], 1.0f);  // root prefix known
  EXPECT_FLOAT_EQ(features[1], 1.0f);  // root+service known
  EXPECT_FLOAT_EQ(features[2], 0.0f);  // old leaf not present
}

TEST(FeatureExtractorTest, BranchingTraceCountsEachPrefixOnce) {
  FeatureExtractor fx;
  Trace t(1, "/fan");
  const SpanIndex root = t.AddSpan("A", "op", kNoParent);
  t.AddSpan("B", "op", root);
  t.AddSpan("C", "op", root);
  fx.LearnTrace(t);
  EXPECT_EQ(fx.dimension(), 3u);  // [A], [A,B], [A,C]
  const auto features = fx.Extract({&t});
  EXPECT_FLOAT_EQ(features[0], 1.0f);
  EXPECT_FLOAT_EQ(features[1], 1.0f);
  EXPECT_FLOAT_EQ(features[2], 1.0f);
}

TEST(FeatureExtractorTest, RepeatedComponentInOneTraceCountsTwice) {
  FeatureExtractor fx;
  Trace t(1, "/double");
  const SpanIndex root = t.AddSpan("A", "op", kNoParent);
  t.AddSpan("B", "op", root);
  t.AddSpan("B", "op", root);  // same child invoked twice
  fx.LearnTrace(t);
  EXPECT_EQ(fx.dimension(), 2u);  // [A], [A,B]
  const auto features = fx.Extract({&t});
  EXPECT_FLOAT_EQ(features[1], 2.0f);
}

TEST(FeatureExtractorTest, DominantApiAttribution) {
  FeatureExtractor fx;
  fx.LearnTrace(ReadTrace(1));
  fx.LearnTrace(ReadTrace(2));
  fx.LearnTrace(WriteTrace(3));
  EXPECT_EQ(fx.DominantApiOf(0), "/read");
  EXPECT_EQ(fx.DominantApiOf(3), "/write");
  const auto apis = fx.KnownApis();
  EXPECT_EQ(apis.size(), 2u);
}

TEST(FeatureExtractorTest, DescribePathIsReadable) {
  FeatureExtractor fx;
  fx.LearnTrace(ReadTrace());
  EXPECT_EQ(fx.DescribePath(0), "Frontend:read");
  EXPECT_EQ(fx.DescribePath(2), "Frontend:read > Service:get > DB:find");
}

TEST(FeatureExtractorTest, ExtractSeriesAlignsWithWindows) {
  FeatureExtractor fx;
  TraceCollector collector;
  collector.Collect(0, ReadTrace(1));
  collector.Collect(1, ReadTrace(2));
  collector.Collect(1, WriteTrace(3));
  fx.LearnRange(collector, 0, 2);
  const auto series = fx.ExtractSeries(collector, 0, 2);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_FLOAT_EQ(series[0][0], 1.0f);
  EXPECT_FLOAT_EQ(series[1][0], 1.0f);
  // Window 1 also has the write prefix.
  float window1_total = 0.0f;
  for (float f : series[1]) {
    window1_total += f;
  }
  EXPECT_FLOAT_EQ(window1_total, 6.0f);
}

TEST(FeatureExtractorTest, ExtractWindowMatchesExtractSeries) {
  FeatureExtractor fx;
  TraceCollector collector;
  collector.Collect(0, ReadTrace(1));
  collector.Collect(1, ReadTrace(2));
  collector.Collect(1, WriteTrace(3));
  collector.Collect(3, WriteTrace(4));  // window 2 left empty
  fx.LearnRange(collector, 0, 4);
  const auto series = fx.ExtractSeries(collector, 0, 4);
  ASSERT_EQ(series.size(), 4u);
  for (size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(fx.ExtractWindow(collector, w), series[w]) << "window " << w;
  }
  // Windows beyond the collector's range extract as all-zero.
  const auto beyond = fx.ExtractWindow(collector, 10);
  ASSERT_EQ(beyond.size(), fx.dimension());
  for (float f : beyond) {
    EXPECT_FLOAT_EQ(f, 0.0f);
  }
}

TEST(FeatureExtractorTest, SaveLoadRoundTrip) {
  FeatureExtractor fx;
  fx.LearnTrace(ReadTrace(1));
  fx.LearnTrace(WriteTrace(2));
  std::stringstream buffer;
  fx.Save(buffer);

  FeatureExtractor restored;
  ASSERT_TRUE(restored.Load(buffer));
  EXPECT_EQ(restored.dimension(), fx.dimension());
  EXPECT_EQ(restored.DescribePath(2), fx.DescribePath(2));
  EXPECT_EQ(restored.DominantApiOf(0), "/read");
  // Extraction produces identical vectors.
  Trace r = ReadTrace(9);
  EXPECT_EQ(restored.Extract({&r}), fx.Extract({&r}));
}

TEST(FeatureExtractorTest, LoadRejectsGarbage) {
  std::stringstream buffer;
  buffer << "garbage data";
  FeatureExtractor fx;
  EXPECT_FALSE(fx.Load(buffer));
}

TEST(FeatureExtractorTest, EmptyTraceIgnored) {
  FeatureExtractor fx;
  Trace empty;
  fx.LearnTrace(empty);
  EXPECT_EQ(fx.dimension(), 0u);
}

}  // namespace
}  // namespace deeprest
