// Estimator-level equivalence of the fused graph and the reference graph,
// plus serialize -> deserialize -> Clone round trips on the optimized paths.
//
// use_fused_graph only changes how the autograd graph is BUILT (one node per
// GRU step / attention / head instead of ~a dozen elementary ops); the
// arithmetic per gradient buffer is identical, so training must produce
// bit-identical epoch losses and models either way.
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/nn/rng.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"

namespace deeprest {
namespace {

// Deterministic synthetic workload, small enough to train in milliseconds.
struct Fixture {
  TraceCollector traces;
  MetricsStore metrics;
  size_t windows = 24;
  std::vector<MetricKey> resources;

  explicit Fixture(size_t components = 3, size_t fan = 6, uint64_t seed = 7) {
    Rng rng(seed);
    for (size_t c = 0; c < components; ++c) {
      resources.push_back({"Svc" + std::to_string(c), ResourceKind::kCpu});
    }
    for (size_t w = 0; w < windows; ++w) {
      const int count = rng.NextPoisson(8.0);
      for (int i = 0; i < count; ++i) {
        Trace t(w * 1000 + static_cast<uint64_t>(i), "/fan");
        const SpanIndex root = t.AddSpan("Frontend", "fan", kNoParent);
        for (size_t d = 0; d < fan; ++d) {
          t.AddSpan("Svc" + std::to_string(d % components), "op" + std::to_string(d), root);
        }
        traces.Collect(w, t);
      }
      for (size_t c = 0; c < components; ++c) {
        metrics.Record(resources[c], w, 5.0 + 0.1 * rng.Uniform(0, 10) + 0.2 * c);
      }
    }
  }
};

EstimatorConfig SmallConfig() {
  EstimatorConfig config;
  config.hidden_dim = 6;
  config.epochs = 3;
  config.bptt_chunk = 12;
  config.warm_start = false;
  config.seed = 3;
  return config;
}

void ExpectEstimatesIdentical(const EstimateMap& a, const EstimateMap& b) {
  ASSERT_EQ(a.size(), b.size());
  auto it_b = b.begin();
  for (const auto& [key, est] : a) {
    ASSERT_EQ(key.component, it_b->first.component);
    // Vector equality is elementwise ==, i.e. bit-exact up to zero signs.
    EXPECT_EQ(est.expected, it_b->second.expected) << key.component;
    EXPECT_EQ(est.lower, it_b->second.lower) << key.component;
    EXPECT_EQ(est.upper, it_b->second.upper) << key.component;
    ++it_b;
  }
}

TEST(FusedGraphTest, TrainingLossesBitIdenticalToReferenceGraph) {
  const Fixture fixture;
  EstimatorConfig fused_config = SmallConfig();
  fused_config.use_fused_graph = true;
  DeepRestEstimator fused(fused_config);
  fused.Learn(fixture.traces, fixture.metrics, 0, fixture.windows, fixture.resources);

  EstimatorConfig ref_config = SmallConfig();
  ref_config.use_fused_graph = false;
  DeepRestEstimator ref(ref_config);
  ref.Learn(fixture.traces, fixture.metrics, 0, fixture.windows, fixture.resources);

  ASSERT_EQ(fused.epoch_losses().size(), ref.epoch_losses().size());
  for (size_t i = 0; i < fused.epoch_losses().size(); ++i) {
    EXPECT_EQ(fused.epoch_losses()[i], ref.epoch_losses()[i]) << "epoch " << i;
  }

  const auto features = fused.features().ExtractSeries(fixture.traces, 0, fixture.windows);
  ExpectEstimatesIdentical(fused.EstimateFromFeatures(features),
                           ref.EstimateFromFeatures(features));
}

TEST(FusedGraphTest, SerializeRoundTripPreservesEstimates) {
  const Fixture fixture;
  DeepRestEstimator original(SmallConfig());
  original.Learn(fixture.traces, fixture.metrics, 0, fixture.windows, fixture.resources);
  const auto features =
      original.features().ExtractSeries(fixture.traces, 0, fixture.windows);
  const EstimateMap expected = original.EstimateFromFeatures(features);

  std::stringstream stream;
  ASSERT_TRUE(original.SaveToStream(stream));
  DeepRestEstimator loaded(SmallConfig());
  ASSERT_TRUE(loaded.LoadFromStream(stream));
  ExpectEstimatesIdentical(expected, loaded.EstimateFromFeatures(features));

  // And once more through Clone on the deserialized model: the full
  // save -> load -> clone chain must stay bit-identical.
  std::unique_ptr<DeepRestEstimator> clone = loaded.Clone();
  ExpectEstimatesIdentical(expected, clone->EstimateFromFeatures(features));
}

TEST(FusedGraphTest, LoadedModelMatchesRegardlessOfGraphMode) {
  // use_fused_graph is intentionally not serialized: a model saved by a
  // fused-graph trainer must estimate identically when loaded into a
  // reference-graph estimator, and vice versa.
  const Fixture fixture;
  EstimatorConfig fused_config = SmallConfig();
  fused_config.use_fused_graph = true;
  DeepRestEstimator original(fused_config);
  original.Learn(fixture.traces, fixture.metrics, 0, fixture.windows, fixture.resources);
  const auto features =
      original.features().ExtractSeries(fixture.traces, 0, fixture.windows);

  std::stringstream stream;
  ASSERT_TRUE(original.SaveToStream(stream));
  EstimatorConfig ref_config = SmallConfig();
  ref_config.use_fused_graph = false;
  DeepRestEstimator loaded(ref_config);
  ASSERT_TRUE(loaded.LoadFromStream(stream));
  ExpectEstimatesIdentical(original.EstimateFromFeatures(features),
                           loaded.EstimateFromFeatures(features));
}

}  // namespace
}  // namespace deeprest
