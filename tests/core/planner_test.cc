#include "src/core/planner.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

ResourceEstimate RampEstimate(size_t windows, double start, double step,
                              double interval_width = 2.0) {
  ResourceEstimate estimate;
  for (size_t t = 0; t < windows; ++t) {
    const double mid = start + step * static_cast<double>(t);
    estimate.expected.push_back(mid);
    estimate.lower.push_back(mid - interval_width / 2.0);
    estimate.upper.push_back(mid + interval_width / 2.0);
  }
  return estimate;
}

TEST(PlanResourcesTest, ProvisionIsHeadroomOverPeakUpper) {
  EstimateMap estimates;
  const MetricKey key{"Svc", ResourceKind::kCpu};
  estimates.emplace(key, RampEstimate(10, 10.0, 2.0));  // peak mid 28, upper 29
  PlannerConfig config;
  config.headroom = 1.5;
  AllocationPlanner planner(config);
  const auto plans = planner.PlanResources(estimates);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].key, key);
  EXPECT_DOUBLE_EQ(plans[0].peak_expected, 28.0);
  EXPECT_DOUBLE_EQ(plans[0].peak_upper, 29.0);
  EXPECT_DOUBLE_EQ(plans[0].provision, 29.0 * 1.5);
}

TEST(PlanResourcesTest, CoversEveryEstimatedResource) {
  EstimateMap estimates;
  estimates.emplace(MetricKey{"A", ResourceKind::kCpu}, RampEstimate(4, 5.0, 0.0));
  estimates.emplace(MetricKey{"B", ResourceKind::kMemory}, RampEstimate(4, 100.0, 1.0));
  AllocationPlanner planner;
  EXPECT_EQ(planner.PlanResources(estimates).size(), 2u);
}

TEST(PlanReplicasTest, MissingComponentGivesEmptySchedule) {
  AllocationPlanner planner;
  const auto schedule = planner.PlanReplicas({}, "Ghost");
  EXPECT_TRUE(schedule.replicas.empty());
  EXPECT_EQ(schedule.peak_replicas, 0u);
}

TEST(PlanReplicasTest, ScalesUpImmediately) {
  EstimateMap estimates;
  ResourceEstimate estimate;
  // Demand jumps from ~1 replica to ~3 replicas at t=2.
  for (double cpu : {50.0, 50.0, 220.0, 220.0}) {
    estimate.expected.push_back(cpu);
    estimate.lower.push_back(cpu);
    estimate.upper.push_back(cpu);
  }
  estimates.emplace(MetricKey{"Svc", ResourceKind::kCpu}, estimate);
  PlannerConfig config;
  config.headroom = 1.0;
  config.cpu_per_replica = 80.0;
  AllocationPlanner planner(config);
  const auto schedule = planner.PlanReplicas(estimates, "Svc");
  ASSERT_EQ(schedule.replicas.size(), 4u);
  EXPECT_EQ(schedule.replicas[1], 1u);
  EXPECT_EQ(schedule.replicas[2], 3u);  // no lag on the way up
  EXPECT_EQ(schedule.peak_replicas, 3u);
}

TEST(PlanReplicasTest, ScaleDownWaitsForPatience) {
  EstimateMap estimates;
  ResourceEstimate estimate;
  // High for 2 windows, then low for 8.
  for (size_t t = 0; t < 10; ++t) {
    const double cpu = t < 2 ? 300.0 : 40.0;
    estimate.expected.push_back(cpu);
    estimate.lower.push_back(cpu);
    estimate.upper.push_back(cpu);
  }
  estimates.emplace(MetricKey{"Svc", ResourceKind::kCpu}, estimate);
  PlannerConfig config;
  config.headroom = 1.0;
  config.cpu_per_replica = 80.0;
  config.scale_down_patience = 3;
  AllocationPlanner planner(config);
  const auto schedule = planner.PlanReplicas(estimates, "Svc");
  EXPECT_EQ(schedule.replicas[2], 4u);  // still held high
  EXPECT_EQ(schedule.replicas[3], 4u);
  EXPECT_EQ(schedule.replicas[4], 1u);  // patience elapsed
  EXPECT_EQ(schedule.replicas[9], 1u);
}

TEST(PlanReplicasTest, NeverBelowMinReplicas) {
  EstimateMap estimates;
  ResourceEstimate estimate;
  for (size_t t = 0; t < 5; ++t) {
    estimate.expected.push_back(1.0);
    estimate.lower.push_back(1.0);
    estimate.upper.push_back(1.0);
  }
  estimates.emplace(MetricKey{"Svc", ResourceKind::kCpu}, estimate);
  PlannerConfig config;
  config.min_replicas = 2;
  AllocationPlanner planner(config);
  for (size_t r : planner.PlanReplicas(estimates, "Svc").replicas) {
    EXPECT_GE(r, 2u);
  }
}

TEST(PlanReplicasTest, SavingsAgainstStaticPeak) {
  EstimateMap estimates;
  ResourceEstimate estimate;
  // One peaky window among many idle ones.
  for (size_t t = 0; t < 20; ++t) {
    const double cpu = t == 10 ? 400.0 : 40.0;
    estimate.expected.push_back(cpu);
    estimate.lower.push_back(cpu);
    estimate.upper.push_back(cpu);
  }
  estimates.emplace(MetricKey{"Svc", ResourceKind::kCpu}, estimate);
  PlannerConfig config;
  config.headroom = 1.0;
  config.cpu_per_replica = 80.0;
  config.scale_down_patience = 2;
  AllocationPlanner planner(config);
  const auto schedule = planner.PlanReplicas(estimates, "Svc");
  EXPECT_EQ(schedule.peak_replicas, 5u);
  EXPECT_GT(schedule.savings_fraction, 0.5);
  EXPECT_LT(schedule.savings_fraction, 1.0);
}

TEST(ForecastStorageTest, GrowthRateFromTrajectory) {
  EstimateMap estimates;
  // Disk grows 2 MB per window from 100 MB.
  estimates.emplace(MetricKey{"DB", ResourceKind::kDiskUsage},
                    RampEstimate(11, 100.0, 2.0, 4.0));
  PlannerConfig config;
  config.headroom = 1.0;
  AllocationPlanner planner(config);
  const auto forecast = planner.ForecastStorage(estimates, "DB");
  EXPECT_DOUBLE_EQ(forecast.current_mb, 100.0);
  EXPECT_DOUBLE_EQ(forecast.growth_mb_per_window, 2.0);
  EXPECT_DOUBLE_EQ(forecast.end_of_horizon_mb, 122.0);  // upper at t=10
}

TEST(ForecastStorageTest, WindowsUntilFull) {
  StorageForecast forecast;
  forecast.current_mb = 100.0;
  forecast.growth_mb_per_window = 2.0;
  EXPECT_EQ(forecast.WindowsUntilFull(200.0), 50u);
  EXPECT_EQ(forecast.WindowsUntilFull(100.0), 0u);
  EXPECT_EQ(forecast.WindowsUntilFull(50.0), 0u);
  forecast.growth_mb_per_window = 0.0;
  EXPECT_EQ(forecast.WindowsUntilFull(200.0), SIZE_MAX);
}

TEST(ForecastStorageTest, MissingDiskSeriesGivesEmptyForecast) {
  AllocationPlanner planner;
  const auto forecast = planner.ForecastStorage({}, "DB");
  EXPECT_DOUBLE_EQ(forecast.current_mb, 0.0);
  EXPECT_DOUBLE_EQ(forecast.growth_mb_per_window, 0.0);
}

}  // namespace
}  // namespace deeprest
