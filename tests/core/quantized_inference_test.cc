// Accuracy budget for reduced-precision inference, enforced end-to-end.
//
// DESIGN.md §6 documents the budget this file pins: on the tiny fixture app,
// the quantile (pinball) loss of the batch inference path may degrade by at
// most 5% when expert weights are int8-quantized (per-row symmetric scales,
// recurrent U matrices kept fp32) and at most 1% when parameters are rounded
// to fp16 storage. The budget is measured against actual simulated metrics,
// not against the fp32 predictions — a quantized model that happened to fit
// the data BETTER also passes.
//
// Also here: the invariants that make quantization safe to deploy —
// the reference (oracle) path never changes, clones inherit the quantized
// configuration, and the ModelRegistry fp16 storage policy applies exactly
// at the mutable publication points.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/serve/model_registry.h"
#include "src/sim/simulator.h"

namespace deeprest {
namespace {

Application TinyApp() {
  Application app("tiny");
  ComponentSpec frontend;
  frontend.name = "Frontend";
  frontend.cpu_baseline = 2.0;
  app.AddComponent(frontend);
  ComponentSpec worker;
  worker.name = "Worker";
  worker.cpu_baseline = 1.0;
  app.AddComponent(worker);
  ComponentSpec db;
  db.name = "DB";
  db.stateful = true;
  db.cpu_baseline = 1.5;
  db.initial_disk_mb = 100.0;
  db.write_noise_ops = 0.2;
  db.write_noise_kb = 2.0;
  app.AddComponent(db);

  CostTerm cpu_small;
  cpu_small.base = 0.05;
  CostTerm cpu_mid;
  cpu_mid.base = 0.12;
  CostTerm db_read_cpu;
  db_read_cpu.base = 0.10;
  CostTerm db_write_cpu;
  db_write_cpu.base = 0.08;
  CostTerm iops;
  iops.resource = ResourceKind::kWriteIops;
  iops.base = 1.0;
  CostTerm thr;
  thr.resource = ResourceKind::kWriteThroughput;
  thr.base = 1.5;

  ApiEndpoint read;
  read.name = "/read";
  OpNode read_db{"DB", "find", 1.0, "", {db_read_cpu}, {}};
  OpNode read_worker{"Worker", "get", 1.0, "", {cpu_mid}, {read_db}};
  read.root = OpNode{"Frontend", "read", 1.0, "", {cpu_small}, {read_worker}};
  app.AddApi(read);

  ApiEndpoint write;
  write.name = "/write";
  OpNode write_db{"DB", "insert", 1.0, "", {db_write_cpu, iops, thr}, {}};
  OpNode write_worker{"Worker", "put", 1.0, "", {cpu_mid}, {write_db}};
  write.root = OpNode{"Frontend", "write", 1.0, "", {cpu_small}, {write_worker}};
  app.AddApi(write);
  return app;
}

TrafficSeries RandomTraffic(size_t windows, uint64_t seed) {
  TrafficSeries series({"/read", "/write"}, windows);
  Rng rng(seed);
  for (size_t w = 0; w < windows; ++w) {
    series.set_rate(w, 0, rng.Uniform(10.0, 120.0));
    series.set_rate(w, 1, rng.Uniform(5.0, 60.0));
  }
  return series;
}

struct TinySetup {
  Application app = TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  size_t learn_windows = 96;
  size_t query_windows = 33;
};

TinySetup MakeSetup(uint64_t seed = 1) {
  TinySetup s;
  Simulator sim(s.app, {.seed = seed});
  sim.Run(RandomTraffic(s.learn_windows, seed), 0, &s.traces, &s.metrics);
  sim.Run(RandomTraffic(s.query_windows, seed + 100), s.learn_windows, &s.traces, &s.metrics);
  return s;
}

EstimatorConfig FastConfig() {
  EstimatorConfig config;
  config.hidden_dim = 8;
  config.epochs = 8;
  config.bptt_chunk = 24;
  config.seed = 3;
  return config;
}

using FeatureSeries = std::vector<std::vector<float>>;

double Pinball(double actual, double predicted, double tau) {
  const double diff = actual - predicted;
  return diff >= 0.0 ? tau * diff : (tau - 1.0) * diff;
}

// Mean pinball loss over the query stretch, through the BATCH inference path
// (the only path quantization touches). The median prediction scores at
// tau = 0.5; the lower/upper bands at 0.05 / 0.95.
double QuantileLoss(const DeepRestEstimator& model, const FeatureSeries& features,
                    const MetricsStore& metrics, size_t from, size_t to) {
  const std::vector<const FeatureSeries*> pointers = {&features};
  const std::vector<EstimateMap> batched = model.EstimateFromFeaturesBatch(pointers);
  EXPECT_EQ(batched.size(), 1u);
  double total = 0.0;
  size_t count = 0;
  for (const auto& [key, estimate] : batched[0]) {
    const std::vector<double> actual = metrics.Series(key, from, to);
    const size_t n = std::min(actual.size(), estimate.expected.size());
    for (size_t t = 0; t < n; ++t) {
      total += Pinball(actual[t], estimate.expected[t], 0.5);
      total += Pinball(actual[t], estimate.lower[t], 0.05);
      total += Pinball(actual[t], estimate.upper[t], 0.95);
      count += 3;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

struct TrainedFixture {
  TinySetup s = MakeSetup();
  DeepRestEstimator model{FastConfig()};
  FeatureSeries query;

  TrainedFixture() {
    model.Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
    query = model.features().ExtractSeries(s.traces, s.learn_windows,
                                           s.learn_windows + s.query_windows);
  }

  double Loss(const DeepRestEstimator& m) const {
    return QuantileLoss(m, query, s.metrics, s.learn_windows,
                        s.learn_windows + s.query_windows);
  }
};

// ---- the accuracy budget ----

TEST(QuantizedInferenceTest, Int8QuantileLossWithinFivePercentOfFp32) {
  TrainedFixture f;
  const double fp32_loss = f.Loss(f.model);
  ASSERT_GT(fp32_loss, 0.0);

  std::unique_ptr<DeepRestEstimator> quantized = f.model.Clone();
  ASSERT_NE(quantized, nullptr);
  quantized->SetQuantizedInference(true);
  EXPECT_TRUE(quantized->quantized_inference());
  const double int8_loss = f.Loss(*quantized);

  // The documented budget: at most 5% quantile-loss degradation. (Improving
  // on fp32 is fine — the budget is one-sided.)
  EXPECT_LE(int8_loss, fp32_loss * 1.05)
      << "fp32 loss " << fp32_loss << " vs int8 loss " << int8_loss;
  // And the budget must be measuring something: an int8 path that silently
  // fell back to fp32 (empty quant cache) would pass trivially.
  EXPECT_NE(int8_loss, fp32_loss);
}

TEST(QuantizedInferenceTest, Fp16QuantileLossWithinOnePercentOfFp32) {
  TrainedFixture f;
  const double fp32_loss = f.Loss(f.model);
  ASSERT_GT(fp32_loss, 0.0);

  std::unique_ptr<DeepRestEstimator> compressed = f.model.Clone();
  ASSERT_NE(compressed, nullptr);
  compressed->CompressParametersToFp16();
  const double fp16_loss = f.Loss(*compressed);

  EXPECT_LE(fp16_loss, fp32_loss * 1.01)
      << "fp32 loss " << fp32_loss << " vs fp16 loss " << fp16_loss;
}

TEST(QuantizedInferenceTest, Int8AndFp16Compose) {
  // The serving configuration --quantized=1 --fp16-registry=1 uses both:
  // fp16-rounded storage quantized to int8 at the expert heads.
  TrainedFixture f;
  const double fp32_loss = f.Loss(f.model);
  std::unique_ptr<DeepRestEstimator> both = f.model.Clone();
  both->CompressParametersToFp16();
  both->SetQuantizedInference(true);
  EXPECT_LE(f.Loss(*both), fp32_loss * 1.05);
}

// ---- invariants that make reduced precision deployable ----

TEST(QuantizedInferenceTest, ReferencePathIsUntouchedByQuantization) {
  TrainedFixture f;
  std::unique_ptr<DeepRestEstimator> quantized = f.model.Clone();
  quantized->SetQuantizedInference(true);
  // The fp32 oracle survives: the reference path of the quantized model is
  // bit-identical to the fp32 model's. (Clone itself is bit-exact — pinned
  // by BatchedInferenceTest.CloneCarriesWarmStartCache.)
  const EstimateMap original = f.model.EstimateFromFeaturesReference(f.query);
  const EstimateMap oracle = quantized->EstimateFromFeaturesReference(f.query);
  ASSERT_EQ(original.size(), oracle.size());
  for (const auto& [key, estimate] : original) {
    ASSERT_TRUE(oracle.count(key));
    EXPECT_EQ(oracle.at(key).expected, estimate.expected);
    EXPECT_EQ(oracle.at(key).lower, estimate.lower);
    EXPECT_EQ(oracle.at(key).upper, estimate.upper);
  }
}

TEST(QuantizedInferenceTest, CloneInheritsQuantizedMode) {
  TrainedFixture f;
  std::unique_ptr<DeepRestEstimator> quantized = f.model.Clone();
  quantized->SetQuantizedInference(true);
  // The continual learner refreshes models by cloning: a quantized serving
  // model must stay quantized across refreshes without re-flagging.
  std::unique_ptr<DeepRestEstimator> clone = quantized->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_TRUE(clone->quantized_inference());
  // Same weights, same quantization -> identical batch estimates.
  EXPECT_EQ(f.Loss(*clone), f.Loss(*quantized));
}

TEST(QuantizedInferenceTest, RegistryFp16PolicyAppliesAtMutablePublish) {
  TrainedFixture f;
  // Oracle: what the model looks like after explicit compression.
  std::unique_ptr<DeepRestEstimator> compressed = f.model.Clone();
  compressed->CompressParametersToFp16();
  const double compressed_loss = f.Loss(*compressed);
  const double fp32_loss = f.Loss(f.model);

  ModelRegistry with_policy;
  with_policy.SetFp16Storage(true);
  EXPECT_TRUE(with_policy.fp16_storage());
  with_policy.Publish(f.model.Clone());
  ASSERT_TRUE(with_policy.Current().valid());
  EXPECT_EQ(f.Loss(*with_policy.Current().model), compressed_loss);

  // Policy off: the published model is installed verbatim.
  ModelRegistry without_policy;
  without_policy.Publish(f.model.Clone());
  EXPECT_EQ(f.Loss(*without_policy.Current().model), fp32_loss);
}

TEST(QuantizedInferenceTest, RestoreBypassesStoragePolicy) {
  TrainedFixture f;
  const double fp32_loss = f.Loss(f.model);
  ModelRegistry registry;
  registry.SetFp16Storage(true);
  // A checkpointed model is already immutable: Restore installs it as-is,
  // bit-for-bit what was on disk, policy notwithstanding.
  std::shared_ptr<const DeepRestEstimator> restored(f.model.Clone());
  ASSERT_TRUE(registry.Restore(restored, 7));
  EXPECT_EQ(f.Loss(*registry.Current().model), fp32_loss);
}

}  // namespace
}  // namespace deeprest
