#include "src/core/sanity.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

// Builds an estimate with a constant interval [lo, hi] and expected mid.
ResourceEstimate FlatEstimate(size_t windows, double lo, double mid, double hi) {
  ResourceEstimate estimate;
  estimate.expected.assign(windows, mid);
  estimate.lower.assign(windows, lo);
  estimate.upper.assign(windows, hi);
  return estimate;
}

TEST(ResourceScoresTest, ZeroInsideInterval) {
  const ResourceEstimate estimate = FlatEstimate(5, 8.0, 10.0, 12.0);
  const std::vector<double> actual = {8.0, 9.0, 10.0, 11.5, 12.0};
  const auto scores = SanityChecker::ResourceScores(estimate, actual);
  for (double s : scores) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
}

TEST(ResourceScoresTest, PositiveAboveUpper) {
  const ResourceEstimate estimate = FlatEstimate(3, 8.0, 10.0, 12.0);
  const auto scores = SanityChecker::ResourceScores(estimate, {12.0, 16.0, 24.0});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_GT(scores[1], 0.0);
  EXPECT_GT(scores[2], scores[1]);
}

TEST(ResourceScoresTest, PositiveBelowLower) {
  const ResourceEstimate estimate = FlatEstimate(2, 8.0, 10.0, 12.0);
  const auto scores = SanityChecker::ResourceScores(estimate, {8.0, 2.0});
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_GT(scores[1], 0.0);
}

TEST(ResourceScoresTest, ScoreCappedAtTen) {
  const ResourceEstimate estimate = FlatEstimate(1, 9.9, 10.0, 10.1);
  const auto scores = SanityChecker::ResourceScores(estimate, {1e9});
  EXPECT_DOUBLE_EQ(scores[0], 10.0);
}

TEST(ResourceScoresTest, NormalizationUsesIntervalWidth) {
  // Same absolute excursion scores higher with a tighter interval.
  const ResourceEstimate tight = FlatEstimate(1, 9.5, 10.0, 10.5);
  const ResourceEstimate wide = FlatEstimate(1, 5.0, 10.0, 15.0);
  const auto tight_scores = SanityChecker::ResourceScores(tight, {13.0});
  const auto wide_scores = SanityChecker::ResourceScores(wide, {18.0});
  EXPECT_GT(tight_scores[0], wide_scores[0]);
}

struct SanityFixture {
  EstimateMap estimates;
  MetricsStore metrics;
  MetricKey cpu{"DB", ResourceKind::kCpu};
  MetricKey thr{"DB", ResourceKind::kWriteThroughput};
  MetricKey other_cpu{"Web", ResourceKind::kCpu};
  size_t windows = 20;

  SanityFixture() {
    estimates.emplace(cpu, FlatEstimate(windows, 18.0, 20.0, 22.0));
    estimates.emplace(thr, FlatEstimate(windows, 90.0, 100.0, 110.0));
    estimates.emplace(other_cpu, FlatEstimate(windows, 9.0, 10.0, 11.0));
    for (size_t w = 0; w < windows; ++w) {
      metrics.Record(cpu, w, 20.0);
      metrics.Record(thr, w, 100.0);
      metrics.Record(other_cpu, w, 10.0);
    }
  }

  // Injects an attack signature into windows [from, to).
  void Attack(size_t from, size_t to) {
    for (size_t w = from; w < to; ++w) {
      metrics.Record(cpu, w, 55.0);
      metrics.Record(thr, w, 320.0);
    }
  }
};

TEST(SanityCheckerTest, CleanSeriesYieldsNoEvents) {
  SanityFixture fx;
  SanityChecker checker;
  const auto events = checker.Detect(fx.estimates, fx.metrics, 0, fx.windows);
  EXPECT_TRUE(events.empty());
}

TEST(SanityCheckerTest, DetectsSustainedAttack) {
  SanityFixture fx;
  fx.Attack(8, 14);
  SanityChecker checker;
  const auto events = checker.Detect(fx.estimates, fx.metrics, 0, fx.windows);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_window, 8u);
  EXPECT_EQ(events[0].end_window, 14u);
  EXPECT_GT(events[0].peak_score, 0.5);
}

TEST(SanityCheckerTest, EventListsDeviatingResources) {
  SanityFixture fx;
  fx.Attack(5, 10);
  SanityChecker checker;
  const auto events = checker.Detect(fx.estimates, fx.metrics, 0, fx.windows);
  ASSERT_EQ(events.size(), 1u);
  ASSERT_GE(events[0].deviations.size(), 2u);
  // Throughput deviates most: 320 vs 100 expected = +220%.
  EXPECT_EQ(events[0].deviations[0].key, fx.thr);
  EXPECT_NEAR(events[0].deviations[0].deviation_pct, 220.0, 5.0);
  // CPU next: 55 vs 20 = +175%.
  EXPECT_EQ(events[0].deviations[1].key, fx.cpu);
  EXPECT_NEAR(events[0].deviations[1].deviation_pct, 175.0, 5.0);
  // The healthy component does not appear.
  for (const auto& deviation : events[0].deviations) {
    EXPECT_NE(deviation.key.component, "Web");
  }
}

TEST(SanityCheckerTest, ShortBlipsIgnored) {
  SanityFixture fx;
  fx.Attack(5, 6);  // single-window blip
  SanityConfig config;
  config.min_event_windows = 2;
  SanityChecker checker(config);
  EXPECT_TRUE(checker.Detect(fx.estimates, fx.metrics, 0, fx.windows).empty());
}

TEST(SanityCheckerTest, NearbyRunsMerge) {
  SanityFixture fx;
  fx.Attack(4, 8);
  fx.Attack(9, 13);  // 1-window gap
  SanityConfig config;
  config.merge_gap = 2;
  SanityChecker checker(config);
  const auto events = checker.Detect(fx.estimates, fx.metrics, 0, fx.windows);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_window, 4u);
  EXPECT_EQ(events[0].end_window, 13u);
}

TEST(SanityCheckerTest, ComponentScoresIsolateComponent) {
  SanityFixture fx;
  fx.Attack(0, fx.windows);
  SanityChecker checker;
  const auto db_scores =
      checker.ComponentScores(fx.estimates, fx.metrics, "DB", 0, fx.windows);
  const auto web_scores =
      checker.ComponentScores(fx.estimates, fx.metrics, "Web", 0, fx.windows);
  EXPECT_GT(db_scores[3], 0.5);
  EXPECT_DOUBLE_EQ(web_scores[3], 0.0);
}

TEST(SanityCheckerTest, DetectUsesRelativeWindows) {
  SanityFixture fx;
  // Shift everything by recording at offset 100.
  MetricsStore shifted;
  for (size_t w = 0; w < fx.windows; ++w) {
    shifted.Record(fx.cpu, 100 + w, w >= 8 && w < 14 ? 55.0 : 20.0);
    shifted.Record(fx.thr, 100 + w, w >= 8 && w < 14 ? 320.0 : 100.0);
    shifted.Record(fx.other_cpu, 100 + w, 10.0);
  }
  SanityChecker checker;
  const auto events = checker.Detect(fx.estimates, shifted, 100, 100 + fx.windows);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_window, 8u);
}

TEST(AnomalyEventTest, DescribeMentionsComponentAndDirection) {
  SanityFixture fx;
  fx.Attack(5, 10);
  SanityChecker checker;
  const auto events = checker.Detect(fx.estimates, fx.metrics, 0, fx.windows);
  ASSERT_EQ(events.size(), 1u);
  const std::string text = events[0].Describe(/*windows_per_day=*/10);
  EXPECT_NE(text.find("DB"), std::string::npos);
  EXPECT_NE(text.find("higher"), std::string::npos);
  EXPECT_NE(text.find("write_throughput"), std::string::npos);
}

}  // namespace
}  // namespace deeprest
