#include "src/core/trace_synthesizer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace deeprest {
namespace {

Trace ShortTrace(uint64_t id) {
  Trace t(id, "/api");
  t.AddSpan("A", "op", kNoParent);
  return t;
}

Trace LongTrace(uint64_t id) {
  Trace t(id, "/api");
  const SpanIndex root = t.AddSpan("A", "op", kNoParent);
  t.AddSpan("B", "op", root);
  return t;
}

TEST(TraceSynthesizerTest, LearnsDistinctShapes) {
  TraceSynthesizer synth;
  synth.LearnTrace(ShortTrace(1));
  synth.LearnTrace(ShortTrace(2));
  synth.LearnTrace(LongTrace(3));
  EXPECT_EQ(synth.ShapeCountFor("/api"), 2u);
  EXPECT_EQ(synth.TraceCountFor("/api"), 3u);
  EXPECT_EQ(synth.ShapeCountFor("/other"), 0u);
}

TEST(TraceSynthesizerTest, UnknownApiYieldsEmptyTrace) {
  TraceSynthesizer synth;
  Rng rng(1);
  EXPECT_TRUE(synth.Synthesize("/missing", rng).empty());
}

TEST(TraceSynthesizerTest, SamplesShapesByFrequency) {
  TraceSynthesizer synth;
  // 80% short, 20% long.
  for (int i = 0; i < 80; ++i) {
    synth.LearnTrace(ShortTrace(i));
  }
  for (int i = 0; i < 20; ++i) {
    synth.LearnTrace(LongTrace(100 + i));
  }
  Rng rng(2);
  int short_count = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    Trace t = synth.Synthesize("/api", rng);
    ASSERT_FALSE(t.empty());
    if (t.size() == 1) {
      ++short_count;
    }
  }
  EXPECT_NEAR(static_cast<double>(short_count) / n, 0.8, 0.03);
}

TEST(TraceSynthesizerTest, SynthesizedTracePreservesStructure) {
  TraceSynthesizer synth;
  Trace original(1, "/api");
  const SpanIndex root = original.AddSpan("A", "op1", kNoParent);
  const SpanIndex mid = original.AddSpan("B", "op2", root);
  original.AddSpan("C", "op3", mid);
  synth.LearnTrace(original);
  Rng rng(3);
  Trace copy = synth.Synthesize("/api", rng);
  ASSERT_EQ(copy.size(), 3u);
  EXPECT_EQ(copy.spans()[0].component, "A");
  EXPECT_EQ(copy.spans()[1].parent, 0u);
  EXPECT_EQ(copy.spans()[2].parent, 1u);
  EXPECT_EQ(copy.spans()[2].operation, "op3");
  EXPECT_EQ(copy.api_name(), "/api");
}

TEST(TraceSynthesizerTest, DeterministicForSeed) {
  TraceSynthesizer synth;
  for (int i = 0; i < 10; ++i) {
    synth.LearnTrace(ShortTrace(i));
    synth.LearnTrace(LongTrace(100 + i));
  }
  Rng rng_a(4);
  Rng rng_b(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(synth.Synthesize("/api", rng_a).size(), synth.Synthesize("/api", rng_b).size());
  }
}

TEST(TraceSynthesizerTest, SynthesizeSeriesMatchesRates) {
  TraceSynthesizer synth;
  for (int i = 0; i < 10; ++i) {
    synth.LearnTrace(ShortTrace(i));
  }
  TrafficSeries traffic({"/api"}, 50);
  for (size_t w = 0; w < 50; ++w) {
    traffic.set_rate(w, 0, 20.0);
  }
  Rng rng(5);
  TraceCollector out;
  synth.SynthesizeSeries(traffic, 0, rng, out);
  EXPECT_EQ(out.window_count(), 50u);
  // Poisson(20) x 50 windows: total near 1000.
  EXPECT_NEAR(static_cast<double>(out.total_traces()), 1000.0, 120.0);
}

TEST(TraceSynthesizerTest, SynthesizeSeriesRespectsOffset) {
  TraceSynthesizer synth;
  synth.LearnTrace(ShortTrace(1));
  TrafficSeries traffic({"/api"}, 2);
  traffic.set_rate(0, 0, 5.0);
  traffic.set_rate(1, 0, 5.0);
  Rng rng(6);
  TraceCollector out;
  synth.SynthesizeSeries(traffic, 100, rng, out);
  EXPECT_TRUE(out.TracesAt(0).empty());
  EXPECT_FALSE(out.TracesAt(100).empty());
}

TEST(TraceSynthesizerTest, SaveLoadRoundTrip) {
  TraceSynthesizer synth;
  for (int i = 0; i < 30; ++i) {
    synth.LearnTrace(ShortTrace(i));
  }
  for (int i = 0; i < 10; ++i) {
    synth.LearnTrace(LongTrace(100 + i));
  }
  std::stringstream buffer;
  synth.Save(buffer);

  TraceSynthesizer restored;
  ASSERT_TRUE(restored.Load(buffer));
  EXPECT_EQ(restored.ShapeCountFor("/api"), 2u);
  EXPECT_EQ(restored.TraceCountFor("/api"), 40u);
  // Restored tables sample the same distribution as the original.
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.Synthesize("/api", rng_a).size(),
              synth.Synthesize("/api", rng_b).size());
  }
}

TEST(TraceSynthesizerTest, LoadRejectsGarbage) {
  std::stringstream buffer;
  buffer << "not a synthesizer";
  TraceSynthesizer synth;
  EXPECT_FALSE(synth.Load(buffer));
}

}  // namespace
}  // namespace deeprest
