#include "src/eval/harness.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

HarnessConfig TinyConfig() {
  HarnessConfig config;
  config.learn_days = 2;
  config.windows_per_day = 12;
  config.base_requests_per_window = 40.0;
  config.seed = 5;
  config.cache_models = false;
  config.estimator.hidden_dim = 6;
  config.estimator.epochs = 2;
  config.resource_aware_dl.epochs = 2;
  return config;
}

TEST(HarnessTest, LearningPhaseDimensions) {
  ExperimentHarness harness(TinyConfig());
  EXPECT_EQ(harness.learn_windows(), 24u);
  EXPECT_EQ(harness.learn_traffic().windows(), 24u);
  EXPECT_EQ(harness.metrics().window_count(), 24u);
  EXPECT_GT(harness.traces().total_traces(), 100u);
}

TEST(HarnessTest, LearnSpecCoversAllSocialApis) {
  ExperimentHarness harness(TinyConfig());
  const TrafficSpec spec = harness.LearnSpec();
  EXPECT_EQ(spec.mix.size(), harness.app().apis().size());
  EXPECT_EQ(spec.days, 2u);
}

TEST(HarnessTest, HotelAppSelectable) {
  HarnessConfig config = TinyConfig();
  config.app = HarnessConfig::AppKind::kHotelReservation;
  ExperimentHarness harness(config);
  EXPECT_EQ(harness.app().name(), "hotel_reservation");
  EXPECT_EQ(harness.LearnSpec().mix.size(), 4u);
  EXPECT_EQ(harness.metrics().Keys().size(), 54u);
}

TEST(HarnessTest, QueriesAdvanceTheWindowCursor) {
  ExperimentHarness harness(TinyConfig());
  Rng rng(1);
  const auto q1 = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  EXPECT_EQ(q1.from, 24u);
  EXPECT_EQ(q1.to, 36u);
  const auto q2 = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  EXPECT_EQ(q2.from, 36u);
  EXPECT_EQ(q2.to, 48u);
  // Ground truth for both queries landed in the shared stores.
  EXPECT_EQ(harness.metrics().window_count(), 48u);
}

TEST(HarnessTest, LearnShapeOverrideChangesTraffic) {
  HarnessConfig two_peak = TinyConfig();
  HarnessConfig flat = TinyConfig();
  flat.learn_shape = ShapeKind::kFlat;
  ExperimentHarness harness_a(two_peak);
  ExperimentHarness harness_b(flat);
  // Two-peak learning traffic has a much larger dynamic range.
  auto range = [](const TrafficSeries& t) {
    double lo = 1e18;
    double hi = 0.0;
    for (size_t w = 0; w < t.windows(); ++w) {
      lo = std::min(lo, t.TotalAt(w));
      hi = std::max(hi, t.TotalAt(w));
    }
    return hi / lo;
  };
  EXPECT_GT(range(harness_a.learn_traffic()), 2.0 * range(harness_b.learn_traffic()));
}

TEST(HarnessTest, AllFourAlgorithmsProduceFullEstimates) {
  ExperimentHarness harness(TinyConfig());
  Rng rng(2);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  const size_t resource_count = harness.app().MetricCatalog().size();
  EXPECT_EQ(harness.EstimateDeepRest(query).size(), resource_count);
  EXPECT_EQ(harness.EstimateResourceAwareDl(query).size(), resource_count);
  EXPECT_EQ(harness.EstimateSimpleScaling(query).size(), resource_count);
  EXPECT_EQ(harness.EstimateComponentAwareScaling(query).size(), resource_count);
}

TEST(HarnessTest, QueryMapeIsFiniteForAllAlgorithms) {
  ExperimentHarness harness(TinyConfig());
  Rng rng(3);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
  const MetricKey key{"FrontendNGINX", ResourceKind::kCpu};
  for (const EstimateMap& estimates :
       {harness.EstimateDeepRest(query), harness.EstimateResourceAwareDl(query),
        harness.EstimateSimpleScaling(query),
        harness.EstimateComponentAwareScaling(query)}) {
    const double mape = harness.QueryMape(estimates, query, key);
    EXPECT_GE(mape, 0.0);
    EXPECT_LT(mape, 1e6);
  }
}

TEST(HarnessTest, DeterministicAcrossInstances) {
  ExperimentHarness a(TinyConfig());
  ExperimentHarness b(TinyConfig());
  for (const auto& key : a.app().MetricCatalog()) {
    for (size_t w = 0; w < a.learn_windows(); ++w) {
      ASSERT_DOUBLE_EQ(a.metrics().At(key, w), b.metrics().At(key, w)) << key.ToString();
    }
  }
}

}  // namespace
}  // namespace deeprest
