#include "src/eval/metrics.h"

#include <gtest/gtest.h>

#include "src/eval/ascii.h"

namespace deeprest {
namespace {

TEST(MapeTest, PerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(Mape({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(MapeTest, KnownValue) {
  // |11-10|/10 = 10%, |18-20|/20 = 10% -> mean 10%.
  EXPECT_NEAR(Mape({11.0, 18.0}, {10.0, 20.0}), 10.0, 1e-9);
}

TEST(MapeTest, EmptyIsZero) { EXPECT_DOUBLE_EQ(Mape({}, {}), 0.0); }

TEST(MapeTest, FloorPreventsExplosionNearZero) {
  // actual mean = 10 -> floor = 0.5; the near-zero sample uses the floor.
  const double mape = Mape({1.0, 20.0}, {0.0, 20.0});
  EXPECT_LT(mape, 150.0);
  EXPECT_GT(mape, 0.0);
}

TEST(MapeTest, TruncatesToShorterSeries) {
  EXPECT_NEAR(Mape({11.0}, {10.0, 100.0}), 10.0, 1e-9);
}

TEST(ResourceMapeTest, MissingKeyReturnsSentinel) {
  EstimateMap estimates;
  MetricsStore metrics;
  EXPECT_DOUBLE_EQ(ResourceMape(estimates, metrics, {"X", ResourceKind::kCpu}, 0, 4), 100.0);
}

TEST(ResourceMapeTest, ComparesAgainstStoreRange) {
  EstimateMap estimates;
  ResourceEstimate estimate;
  estimate.expected = {10.0, 10.0};
  estimate.lower = estimate.expected;
  estimate.upper = estimate.expected;
  const MetricKey key{"X", ResourceKind::kCpu};
  estimates.emplace(key, estimate);
  MetricsStore metrics;
  metrics.Record(key, 5, 10.0);
  metrics.Record(key, 6, 20.0);
  EXPECT_NEAR(ResourceMape(estimates, metrics, key, 5, 7), 25.0, 1e-9);
}

TEST(IntervalCoverageTest, FullCoverage) {
  ResourceEstimate estimate;
  estimate.expected = {10.0, 10.0};
  estimate.lower = {5.0, 5.0};
  estimate.upper = {15.0, 15.0};
  EXPECT_DOUBLE_EQ(IntervalCoverage(estimate, {7.0, 14.0}), 1.0);
}

TEST(IntervalCoverageTest, PartialCoverage) {
  ResourceEstimate estimate;
  estimate.expected = {10.0, 10.0, 10.0, 10.0};
  estimate.lower = {5.0, 5.0, 5.0, 5.0};
  estimate.upper = {15.0, 15.0, 15.0, 15.0};
  EXPECT_DOUBLE_EQ(IntervalCoverage(estimate, {0.0, 10.0, 20.0, 10.0}), 0.5);
}

TEST(SynthesisQualityTest, IdenticalIsHundred) {
  const std::vector<std::vector<float>> features = {{1.0f, 2.0f}, {3.0f, 4.0f}};
  EXPECT_NEAR(SynthesisQuality(features, features), 100.0, 1e-9);
}

TEST(SynthesisQualityTest, DisjointIsZero) {
  const std::vector<std::vector<float>> a = {{1.0f, 0.0f}};
  const std::vector<std::vector<float>> b = {{0.0f, 1.0f}};
  EXPECT_NEAR(SynthesisQuality(a, b), 0.0, 1e-9);
}

TEST(SynthesisQualityTest, PartialOverlap) {
  // |2-1| / (2+1) = 1/3 error -> ~66.7% quality.
  const std::vector<std::vector<float>> a = {{2.0f}};
  const std::vector<std::vector<float>> b = {{1.0f}};
  EXPECT_NEAR(SynthesisQuality(a, b), 100.0 * (1.0 - 1.0 / 3.0), 1e-6);
}

TEST(AsciiTest, RenderSeriesContainsLegendAndAxis) {
  const std::string chart = RenderSeries({"deeprest", "actual"},
                                         {{1.0, 2.0, 3.0, 2.0}, {1.5, 2.5, 2.0, 1.0}});
  EXPECT_NE(chart.find("[a] deeprest"), std::string::npos);
  EXPECT_NE(chart.find("[b] actual"), std::string::npos);
  EXPECT_NE(chart.find("+"), std::string::npos);
}

TEST(AsciiTest, RenderSeriesHandlesEmpty) {
  EXPECT_EQ(RenderSeries({}, {}), "(empty series)\n");
}

TEST(AsciiTest, RenderHeatmapHasRowsAndCols) {
  const std::string heatmap =
      RenderHeatmap({"cpu", "memory"}, {"alg1", "alg2"}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NE(heatmap.find("cpu"), std::string::npos);
  EXPECT_NE(heatmap.find("alg2"), std::string::npos);
  EXPECT_NE(heatmap.find("4.0%"), std::string::npos);
}

TEST(AsciiTest, RenderTableAligns) {
  const std::string table = RenderTable({"name", "value"}, {{"a", "1"}, {"bb", "22"}});
  EXPECT_NE(table.find("name"), std::string::npos);
  EXPECT_NE(table.find("bb"), std::string::npos);
  EXPECT_NE(table.find("--"), std::string::npos);
}

TEST(AsciiTest, FormatDoublePrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace deeprest
