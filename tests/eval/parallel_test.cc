// Parallel training harness: pool mechanics, exception propagation, and —
// the property the whole design exists for — N-thread runs bit-identical to
// 1-thread runs. Labeled "chaos" so the chaos-tsan preset runs the
// concurrent-training tests under ThreadSanitizer.
#include <atomic>
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "src/eval/harness.h"
#include "src/eval/parallel.h"
#include "src/nn/rng.h"
#include "src/telemetry/metrics.h"
#include "src/trace/collector.h"

namespace deeprest {
namespace {

struct Fixture {
  TraceCollector traces;
  MetricsStore metrics;
  size_t windows = 24;
  std::vector<MetricKey> resources;

  Fixture() {
    Rng rng(7);
    for (size_t c = 0; c < 3; ++c) {
      resources.push_back({"Svc" + std::to_string(c), ResourceKind::kCpu});
    }
    for (size_t w = 0; w < windows; ++w) {
      const int count = rng.NextPoisson(8.0);
      for (int i = 0; i < count; ++i) {
        Trace t(w * 1000 + static_cast<uint64_t>(i), "/fan");
        const SpanIndex root = t.AddSpan("Frontend", "fan", kNoParent);
        for (size_t d = 0; d < 6; ++d) {
          t.AddSpan("Svc" + std::to_string(d % 3), "op" + std::to_string(d), root);
        }
        traces.Collect(w, t);
      }
      for (size_t c = 0; c < 3; ++c) {
        metrics.Record(resources[c], w, 5.0 + 0.1 * rng.Uniform(0, 10) + 0.2 * c);
      }
    }
  }

  std::vector<TrainJob> Jobs(size_t count) const {
    std::vector<TrainJob> jobs;
    for (size_t i = 0; i < count; ++i) {
      TrainJob job;
      job.config.hidden_dim = 6;
      job.config.epochs = 2;
      job.config.bptt_chunk = 12;
      job.config.warm_start = false;
      job.config.seed = 3 + i;  // distinct models
      job.traces = &traces;
      job.metrics = &metrics;
      job.from = 0;
      job.to = windows;
      job.resources = resources;
      jobs.push_back(job);
    }
    return jobs;
  }
};

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  // The pool is reusable after Wait().
  pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPoolTest, WaitRethrowsFirstJobException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(
      kN, [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); }, 4);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTrainTest, MultiThreadBitIdenticalToSingleThread) {
  const Fixture fixture;
  const auto jobs = fixture.Jobs(3);
  const auto sequential = TrainEstimatorsParallel(jobs, 1);
  const auto parallel = TrainEstimatorsParallel(jobs, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_NE(sequential[i], nullptr);
    ASSERT_NE(parallel[i], nullptr);
    // Epoch losses are the full training trajectory: bitwise equality here
    // means scheduling never leaked into the numerics.
    EXPECT_EQ(sequential[i]->epoch_losses(), parallel[i]->epoch_losses()) << "job " << i;
  }
}

// The TSan target: several threads build and train DISTINCT models
// concurrently, exercising the thread-local node arena, the atomic refcounts
// and sequence counter, and the shared read-only fixture.
TEST(ParallelTrainTest, ConcurrentDistinctModelTrainingIsRaceFree) {
  const Fixture fixture;
  const auto jobs = fixture.Jobs(4);
  const auto models = TrainEstimatorsParallel(jobs, 4);
  for (size_t i = 0; i < models.size(); ++i) {
    ASSERT_NE(models[i], nullptr);
    ASSERT_FALSE(models[i]->epoch_losses().empty());
    for (float loss : models[i]->epoch_losses()) {
      EXPECT_TRUE(std::isfinite(loss));
    }
  }
}

TEST(ParallelTrainTest, HarnessParallelTrainingIsDeterministic) {
  HarnessConfig config;
  config.learn_days = 1;
  config.windows_per_day = 12;
  config.base_requests_per_window = 40.0;
  config.estimator.hidden_dim = 4;
  config.estimator.epochs = 2;
  config.estimator.bptt_chunk = 12;
  config.cache_models = false;
  // Two harnesses with identical configs: training them concurrently must
  // produce identical models, or scheduling is leaking into the numerics.
  ExperimentHarness a(config);
  ExperimentHarness b(config);
  ExperimentHarness::TrainDeepRestParallel({&a, &b}, 2);
  EXPECT_EQ(a.deeprest().epoch_losses(), b.deeprest().epoch_losses());
  ASSERT_FALSE(a.deeprest().epoch_losses().empty());
}

}  // namespace
}  // namespace deeprest
