// End-to-end tests over the full pipeline: simulate the social network,
// train every algorithm, answer queries, and verify the paper's qualitative
// orderings on a scaled-down configuration.
#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/eval/harness.h"

namespace deeprest {
namespace {

HarnessConfig SmallConfig(uint64_t seed = 1) {
  HarnessConfig config;
  config.learn_days = 4;
  config.windows_per_day = 24;
  config.base_requests_per_window = 90.0;
  config.seed = seed;
  config.cache_models = false;
  config.estimator.hidden_dim = 10;
  config.estimator.epochs = 10;
  config.estimator.bptt_chunk = 24;
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    harness_ = new ExperimentHarness(SmallConfig());
    // One shared in-distribution query.
    Rng rng(99);
    query_ = new ExperimentHarness::QueryResult(
        harness_->RunQuery(GenerateTraffic(harness_->QuerySpec(1), rng)));
  }
  static void TearDownTestSuite() {
    delete query_;
    delete harness_;
    harness_ = nullptr;
    query_ = nullptr;
  }

  static ExperimentHarness* harness_;
  static ExperimentHarness::QueryResult* query_;
};

ExperimentHarness* EndToEndTest::harness_ = nullptr;
ExperimentHarness::QueryResult* EndToEndTest::query_ = nullptr;

TEST_F(EndToEndTest, LearningPhaseProducesTelemetry) {
  EXPECT_EQ(harness_->learn_windows(), 96u);
  EXPECT_GT(harness_->traces().total_traces(), 3000u);
  EXPECT_EQ(harness_->metrics().Keys().size(), 76u);
}

TEST_F(EndToEndTest, DeepRestTrainsOnFullCatalog) {
  DeepRestEstimator& estimator = harness_->deeprest();
  EXPECT_TRUE(estimator.trained());
  EXPECT_EQ(estimator.expert_count(), 76u);
  EXPECT_GE(estimator.features().dimension(), 30u);
  // Loss went down.
  const auto& losses = estimator.epoch_losses();
  EXPECT_LT(losses.back(), losses.front());
}

TEST_F(EndToEndTest, InDistributionQueryIsAccurate) {
  const EstimateMap estimates = harness_->EstimateDeepRest(*query_);
  // Busy components should be estimated well even from synthetic traces.
  for (const char* component :
       {"FrontendNGINX", "ComposePostService", "UserTimelineService"}) {
    const double mape =
        harness_->QueryMape(estimates, *query_, {component, ResourceKind::kCpu});
    EXPECT_LT(mape, 30.0) << component;
  }
}

TEST_F(EndToEndTest, SynthesizerQualityAboveNinetyPercent) {
  // Paper Table 1: > 91% on every scenario.
  DeepRestEstimator& estimator = harness_->deeprest();
  Rng rng(5);
  TraceCollector synthetic;
  estimator.synthesizer().SynthesizeSeries(query_->traffic, 0, rng, synthetic);
  const auto synth_features =
      estimator.features().ExtractSeries(synthetic, 0, query_->traffic.windows());
  const auto real_features =
      estimator.features().ExtractSeries(harness_->traces(), query_->from, query_->to);
  EXPECT_GT(SynthesisQuality(synth_features, real_features), 88.0);
}

TEST_F(EndToEndTest, DeepRestBeatsResourceAwareDlOnScaledQuery) {
  // 2x users: history-only forecasting cannot see the surge.
  TrafficSpec spec = harness_->QuerySpec(1);
  spec.user_scale = 2.0;
  Rng rng(123);
  const auto query = harness_->RunQuery(GenerateTraffic(spec, rng));

  const EstimateMap deeprest = harness_->EstimateDeepRest(query);
  const EstimateMap resrc_dl = harness_->EstimateResourceAwareDl(query);
  const MetricKey frontend{"FrontendNGINX", ResourceKind::kCpu};
  const double deeprest_mape = harness_->QueryMape(deeprest, query, frontend);
  const double resrc_mape = harness_->QueryMape(resrc_dl, query, frontend);
  EXPECT_LT(deeprest_mape, resrc_mape)
      << "DeepRest " << deeprest_mape << "% vs resrc-DL " << resrc_mape << "%";
  EXPECT_LT(deeprest_mape, 35.0);
}

TEST_F(EndToEndTest, SanityCheckFlagsCryptojackingOnly) {
  // Fresh harness so the attack does not contaminate the shared fixture.
  HarnessConfig config = SmallConfig(7);
  ExperimentHarness harness(config);
  AttackSpec attack;
  attack.kind = AttackSpec::Kind::kCryptojacking;
  attack.component = "PostStorageMongoDB";
  const size_t attack_start = harness.learn_windows() + 30;
  attack.start_window = attack_start;
  attack.end_window = attack_start + 12;
  harness.simulator().AddAttack(attack);

  Rng rng(5);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(2), rng));
  const EstimateMap estimates = harness.EstimateDeepRestFromRealTraces(query);

  SanityChecker checker;
  const auto events = checker.Detect(estimates, harness.metrics(), query.from, query.to);
  ASSERT_GE(events.size(), 1u);
  // The flagged interval overlaps the attack.
  bool overlaps = false;
  for (const auto& event : events) {
    const size_t event_abs_start = query.from + event.start_window;
    const size_t event_abs_end = query.from + event.end_window;
    if (event_abs_start < attack.end_window && event_abs_end > attack.start_window) {
      overlaps = true;
      // The attacked component shows up in the deviations.
      bool mentions_target = false;
      for (const auto& deviation : event.deviations) {
        mentions_target =
            mentions_target || deviation.key.component == "PostStorageMongoDB";
      }
      EXPECT_TRUE(mentions_target);
    }
  }
  EXPECT_TRUE(overlaps);
}

TEST_F(EndToEndTest, ModelCachingRoundTrips) {
  HarnessConfig config = SmallConfig(3);
  config.cache_models = true;
  // Fresh cache directory: a stale model from a previous run must not leak in.
  config.cache_dir = ::testing::TempDir() + "/deeprest_cache_test";
  std::filesystem::remove_all(config.cache_dir);
  std::filesystem::create_directories(config.cache_dir);
  config.estimator.epochs = 4;
  double first_train_seconds = 0.0;
  EstimateMap first;
  {
    ExperimentHarness harness(config);
    first_train_seconds = 0.0;
    DeepRestEstimator& estimator = harness.deeprest();
    first_train_seconds = estimator.train_seconds();
    Rng rng(9);
    auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
    first = harness.EstimateDeepRest(query);
    EXPECT_GT(first_train_seconds, 0.0);
  }
  {
    ExperimentHarness harness(config);
    DeepRestEstimator& estimator = harness.deeprest();
    // Loaded from cache: no training happened.
    EXPECT_DOUBLE_EQ(estimator.train_seconds(), 0.0);
    Rng rng(9);
    auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(1), rng));
    const EstimateMap second = harness.EstimateDeepRest(query);
    const MetricKey key{"FrontendNGINX", ResourceKind::kCpu};
    ASSERT_EQ(first.at(key).expected.size(), second.at(key).expected.size());
    for (size_t t = 0; t < first.at(key).expected.size(); ++t) {
      EXPECT_NEAR(first.at(key).expected[t], second.at(key).expected[t], 1e-3);
    }
  }
}

}  // namespace
}  // namespace deeprest
