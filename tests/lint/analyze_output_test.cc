// Output-contract tests for deeprest_analyze: every text diagnostic must be
// a clickable `path:line: [rule] message` (CI log conventions and editors
// both key on that shape), the GitHub annotation format must carry
// file/line/title, and the SARIF export must survive a real JSON parse —
// a minimal recursive-descent parser here, so a stray unescaped quote or
// trailing comma in the renderer fails the build, not the CI upload.
//
// DEEPREST_LINT_BIN and DEEPREST_LINT_FIXTURES are injected by CMake.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string command = std::string(DEEPREST_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  LintRun run;
  if (pipe == nullptr) {
    return run;
  }
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    run.output += buffer;
  }
  const int status = pclose(pipe);
  run.exit_code = status >= 256 ? status / 256 : status;
  return run;
}

std::string Fixture(const std::string& name) {
  return std::string(DEEPREST_LINT_FIXTURES) + "/" + name;
}

// A violating fixture per rule class — exercises every renderer path.
std::string ViolatingFixtures() {
  return Fixture("rand_violation.cc") + " " + Fixture("detach_violation.cc") + " " +
         Fixture("resource_leak_violation.cc") + " " +
         Fixture("blocking_violation.cc") + " " + Fixture("enum_switch_violation.cc") +
         " " + Fixture("src/serve/lock_order_violation.cc");
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char ch : text) {
    if (ch == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) {
    lines.push_back(current);
  }
  return lines;
}

// --- Minimal JSON parser (objects, arrays, strings, numbers, literals) ---
// Just enough to round-trip the SARIF export; any syntax error is a test
// failure. Values are kept as a tagged tree so tests can walk runs/results.

struct JsonValue {
  enum Kind { kObject, kArray, kString, kNumber, kBool, kNull } kind = kNull;
  std::map<std::string, std::shared_ptr<JsonValue>> object;
  std::vector<std::shared_ptr<JsonValue>> array;
  std::string string_value;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse() {
    std::shared_ptr<JsonValue> value = ParseValue();
    SkipSpace();
    if (!ok_ || pos_ != text_.size()) {
      return nullptr;  // trailing garbage or parse error
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }

  std::shared_ptr<JsonValue> Fail() {
    ok_ = false;
    return nullptr;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Fail();
    }
    const char ch = text_[pos_];
    if (ch == '{') {
      return ParseObject();
    }
    if (ch == '[') {
      return ParseArray();
    }
    if (ch == '"') {
      auto value = std::make_shared<JsonValue>();
      value->kind = JsonValue::kString;
      if (!ParseString(&value->string_value)) {
        return Fail();
      }
      return value;
    }
    if (ch == '-' || std::isdigit(static_cast<unsigned char>(ch))) {
      auto value = std::make_shared<JsonValue>();
      value->kind = JsonValue::kNumber;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E')) {
        value->string_value += text_[pos_++];
      }
      return value;
    }
    for (const char* literal : {"true", "false", "null"}) {
      const size_t len = std::string(literal).size();
      if (text_.compare(pos_, len, literal) == 0) {
        pos_ += len;
        auto value = std::make_shared<JsonValue>();
        value->kind = std::string(literal) == "null" ? JsonValue::kNull : JsonValue::kBool;
        value->string_value = literal;
        return value;
      }
    }
    return Fail();
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) {
            return false;
          }
          pos_ += 4;  // keep escaped form; tests only compare raw substrings
          *out += '?';
        } else if (esc == 'n') {
          *out += '\n';
        } else if (esc == 't') {
          *out += '\t';
        } else {
          *out += esc;  // \" \\ \/ \b \f \r collapse to the char itself
        }
        ++pos_;
      } else {
        *out += text_[pos_++];
      }
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  std::shared_ptr<JsonValue> ParseObject() {
    if (!Consume('{')) {
      return Fail();
    }
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Consume(':')) {
        return Fail();
      }
      std::shared_ptr<JsonValue> member = ParseValue();
      if (!ok_) {
        return Fail();
      }
      value->object[key] = member;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume('}')) {
        return Fail();
      }
      return value;
    }
  }

  std::shared_ptr<JsonValue> ParseArray() {
    if (!Consume('[')) {
      return Fail();
    }
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      std::shared_ptr<JsonValue> element = ParseValue();
      if (!ok_) {
        return Fail();
      }
      value->array.push_back(element);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (!Consume(']')) {
        return Fail();
      }
      return value;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Property: every text diagnostic line is `path:line: [rule] message` with a
// positive line number and a non-empty rule and message. The trailing
// `deeprest_analyze: N violation(s)` summary is the only other line shape.
TEST(AnalyzeOutputTest, EveryTextDiagnosticCarriesFileLineAndRule) {
  const LintRun run = RunLint(ViolatingFixtures());
  EXPECT_EQ(run.exit_code, 1) << run.output;
  size_t diagnostics = 0;
  for (const std::string& line : SplitLines(run.output)) {
    if (line.empty() || line.rfind("deeprest_analyze:", 0) == 0) {
      continue;
    }
    ++diagnostics;
    // path:line:
    const size_t bracket = line.find(" [");
    ASSERT_NE(bracket, std::string::npos) << line;
    const std::string location = line.substr(0, bracket);
    ASSERT_GE(location.size(), 4u) << line;
    EXPECT_EQ(location.back(), ':') << line;
    const size_t line_colon = location.rfind(':', location.size() - 2);
    ASSERT_NE(line_colon, std::string::npos) << line;
    const std::string line_number =
        location.substr(line_colon + 1, location.size() - line_colon - 2);
    ASSERT_FALSE(line_number.empty()) << line;
    for (char ch : line_number) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(ch))) << line;
    }
    EXPECT_GT(std::stoi(line_number), 0) << line;
    // [rule] message
    const size_t close = line.find(']', bracket);
    ASSERT_NE(close, std::string::npos) << line;
    const std::string rule = line.substr(bracket + 2, close - bracket - 2);
    EXPECT_FALSE(rule.empty()) << line;
    for (char ch : rule) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(ch)) || ch == '-') << line;
    }
    EXPECT_GT(line.size(), close + 2) << "empty message: " << line;
  }
  EXPECT_GE(diagnostics, 6u) << run.output;
}

// Property: the SARIF export parses as JSON, and its run carries exactly one
// result per text diagnostic, each with ruleId, message text, and a
// physical location whose startLine is positive.
TEST(AnalyzeOutputTest, SarifRoundTripsThroughJsonParse) {
  const LintRun text_run = RunLint(ViolatingFixtures());
  size_t text_diagnostics = 0;
  for (const std::string& line : SplitLines(text_run.output)) {
    if (!line.empty() && line.rfind("deeprest_analyze:", 0) != 0) {
      ++text_diagnostics;
    }
  }

  const LintRun sarif_run = RunLint("--format=sarif " + ViolatingFixtures());
  EXPECT_EQ(sarif_run.exit_code, 1);
  JsonParser parser(sarif_run.output);
  std::shared_ptr<JsonValue> root = parser.Parse();
  ASSERT_NE(root, nullptr) << "SARIF is not valid JSON:\n" << sarif_run.output;
  ASSERT_EQ(root->kind, JsonValue::kObject);
  ASSERT_TRUE(root->object.count("version"));
  EXPECT_EQ(root->object["version"]->string_value, "2.1.0");

  ASSERT_TRUE(root->object.count("runs"));
  ASSERT_EQ(root->object["runs"]->kind, JsonValue::kArray);
  ASSERT_EQ(root->object["runs"]->array.size(), 1u);
  std::shared_ptr<JsonValue> run = root->object["runs"]->array[0];

  ASSERT_TRUE(run->object.count("tool"));
  std::shared_ptr<JsonValue> driver = run->object["tool"]->object["driver"];
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->object["name"]->string_value, "deeprest_analyze");

  ASSERT_TRUE(run->object.count("results"));
  const std::vector<std::shared_ptr<JsonValue>>& results = run->object["results"]->array;
  EXPECT_EQ(results.size(), text_diagnostics) << sarif_run.output;
  for (const std::shared_ptr<JsonValue>& result : results) {
    ASSERT_EQ(result->kind, JsonValue::kObject);
    ASSERT_TRUE(result->object.count("ruleId"));
    EXPECT_FALSE(result->object["ruleId"]->string_value.empty());
    ASSERT_TRUE(result->object.count("message"));
    EXPECT_FALSE(result->object["message"]->object["text"]->string_value.empty());
    ASSERT_TRUE(result->object.count("locations"));
    ASSERT_EQ(result->object["locations"]->array.size(), 1u);
    std::shared_ptr<JsonValue> physical =
        result->object["locations"]->array[0]->object["physicalLocation"];
    ASSERT_NE(physical, nullptr);
    EXPECT_FALSE(physical->object["artifactLocation"]
                     ->object["uri"]
                     ->string_value.empty());
    const std::string start_line =
        physical->object["region"]->object["startLine"]->string_value;
    EXPECT_GT(std::stoi(start_line), 0);
  }
}

// Property: GitHub annotations carry file=, line= and title= so the CI
// runner can attach them to the diff view.
TEST(AnalyzeOutputTest, GithubAnnotationsCarryFileLineAndTitle) {
  const LintRun run = RunLint("--format=github " + Fixture("rand_violation.cc"));
  EXPECT_EQ(run.exit_code, 1);
  bool saw_annotation = false;
  for (const std::string& line : SplitLines(run.output)) {
    if (line.rfind("::error ", 0) != 0) {
      continue;
    }
    saw_annotation = true;
    EXPECT_NE(line.find("file="), std::string::npos) << line;
    EXPECT_NE(line.find("line="), std::string::npos) << line;
    EXPECT_NE(line.find("title="), std::string::npos) << line;
    EXPECT_NE(line.find("::", 8), std::string::npos) << line;
  }
  EXPECT_TRUE(saw_annotation) << run.output;
}

}  // namespace
