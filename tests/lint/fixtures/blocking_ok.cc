// Fixture: lock-safe blocking — the budget call happens after the lock
// scope closes, and the only wait is the sanctioned capital-W
// MutexLock::Wait wrapper (which releases the lock while parked).
// blocking-under-lock must stay silent.
#include "src/core/thread_annotations.h"

struct MemoryBudget {
  bool Reserve(long bytes);
};

struct CondVar {};

namespace deeprest {

class Polite {
 public:
  void Tick() {
    {
      MutexLock lock(polite_mu_);
      pending_ = true;
      lock.Wait(wake_);
    }
    budget_->Reserve(1024);
  }

 private:
  Mutex polite_mu_;
  CondVar wake_;
  bool pending_ DEEPREST_GUARDED_BY(polite_mu_);
  MemoryBudget* budget_;
};

}  // namespace deeprest
