// Fixture: must trip blocking-under-lock — MemoryBudget::Reserve() runs
// pressure callbacks under the budget mutex, so calling it while holding
// mu_ is exactly the lock-inversion hazard src/serve/state_cache.h warns
// about ("never Reserve() while holding a cache mutex").
#include "src/core/thread_annotations.h"

struct MemoryBudget {
  bool Reserve(long bytes);
};

namespace deeprest {

class Pressured {
 public:
  void Tick() {
    MutexLock lock(press_mu_);
    budget_->Reserve(1024);
  }

 private:
  Mutex press_mu_;
  MemoryBudget* budget_ DEEPREST_GUARDED_BY(press_mu_);
};

}  // namespace deeprest
