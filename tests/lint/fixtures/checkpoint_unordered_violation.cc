// Fixture: must trip no-unordered-iteration — the filename marks this as a
// checkpoint TU, and writing a hash container in iteration order would leak
// the hash seed into the checkpoint bytes.
#include <ostream>
#include <string>
#include <unordered_map>

void WriteCheckpoint(std::ostream& out,
                     const std::unordered_map<std::string, double>& gauges) {
  for (const auto& [name, value] : gauges) {
    out << name << '=' << value << '\n';
  }
}
