// Fixture: must pass every rule. Mentions the dangerous spellings only in
// comments and strings, which the tokenizer is required to skip; the mutex
// member carries a guard annotation.
#include <map>
#include <mutex>
#include <string>

// rand() and detach() in a comment must not fire.
#define DEEPREST_GUARDED_BY(x)

class OrderedStats {
 public:
  void Record(const std::string& name, double v) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = v;
  }
  std::string Banner() const { return "call rand() and detach() at your peril"; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> gauges_ DEEPREST_GUARDED_BY(mu_);
};
