// Fixture: must trip no-detached-threads — a detached worker outlives
// shutdown and races static destruction.
#include <thread>

void FireAndForget() {
  std::thread worker([] {});
  worker.detach();
}
