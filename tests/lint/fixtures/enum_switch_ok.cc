// Fixture: exhaustive handling of enforced enums — one switch names every
// KernelMode enumerator, the other covers a subset but carries a default
// arm. enum-switch must stay silent on both.
enum class KernelMode {
  kTiled,
  kReference,
  kSimd,
};

int Cost(KernelMode mode) {
  switch (mode) {
    case KernelMode::kTiled:
      return 3;
    case KernelMode::kReference:
      return 9;
    case KernelMode::kSimd:
      return 1;
  }
  return 0;
}

bool IsFast(KernelMode mode) {
  switch (mode) {
    case KernelMode::kSimd:
      return true;
    default:
      return false;
  }
}
