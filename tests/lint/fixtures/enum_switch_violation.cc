// Fixture: must trip enum-switch — ShedPolicy is one of the enforced
// enums, and this switch handles only one of its two enumerators with no
// default arm, so adding a policy would silently fall through.
enum class ShedPolicy {
  kRejectNew,
  kDropOldest,
};

int Describe(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kRejectNew:
      return 1;
  }
  return 0;
}
