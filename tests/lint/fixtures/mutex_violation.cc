// Fixture: must trip mutex-needs-guarded-by. This is the classic
// believed-guarded race: the author added mu_ "for total_", but nothing
// declares that relationship, and Read() indeed skips the lock — exactly the
// bug class the rule (and, under Clang, the thread-safety analysis) catches.
#include <mutex>

class Counters {
 public:
  void Add(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += v;
  }
  int Read() const { return total_; }  // racy: no lock, no annotation to notice

 private:
  mutable std::mutex mu_;
  int total_ = 0;
};
