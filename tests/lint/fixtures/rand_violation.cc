// Fixture: must trip no-unseeded-rand (three spellings).
#include <cstdlib>
#include <ctime>
#include <random>

int UnseededDraw() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  std::random_device entropy;
  return rand() + static_cast<int>(entropy());
}
