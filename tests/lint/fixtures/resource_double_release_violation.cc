// Fixture: must trip resource-pairing — the same amount is released twice
// with no intervening charge, corrupting the budget gauge (the second
// release un-accounts someone else's bytes).
struct MemoryBudget {
  void Charge(long bytes);
  void Release(long bytes);
};

void DoubleRelease(MemoryBudget& budget, long bytes) {
  budget.Charge(bytes);
  budget.Release(bytes);
  budget.Release(bytes);
}
