// Fixture: must trip resource-pairing — the function pairs Charge with
// Release on the happy path, but the early-return path exits with the
// charge still held, leaking budget every time the flaky branch is taken.
struct MemoryBudget {
  void Charge(long bytes);
  void Release(long bytes);
};

void Use(long bytes);

bool ChargeWithEarlyReturn(MemoryBudget& budget, long bytes, bool flaky) {
  budget.Charge(bytes);
  if (flaky) {
    return false;
  }
  Use(bytes);
  budget.Release(bytes);
  return true;
}
