// Fixture: balanced Charge/Release pairing on every path — including the
// early-return arm — plus the sanctioned `if (!Reserve())` guard idiom
// (the charge only lands on the success path). resource-pairing must stay
// silent.
struct MemoryBudget {
  void Charge(long bytes);
  void Release(long bytes);
  bool Reserve(long bytes);
};

void Use(long bytes);

bool BalancedPaths(MemoryBudget& budget, long bytes, bool flaky) {
  budget.Charge(bytes);
  if (flaky) {
    budget.Release(bytes);
    return false;
  }
  Use(bytes);
  budget.Release(bytes);
  return true;
}

bool GuardedReserve(MemoryBudget& budget, long bytes) {
  if (!budget.Reserve(bytes)) {
    return false;  // Reserve failed: nothing to release on this path
  }
  Use(bytes);
  budget.Release(bytes);
  return true;
}
