// Fixture: must trip no-fast-math-reassoc — lives under a src/nn/ path, and
// both the pragma and std::reduce reassociate float sums.
#pragma float_control(precise, off)
#include <numeric>
#include <vector>

float LooseSum(const std::vector<float>& xs) {
  return std::reduce(xs.begin(), xs.end(), 0.0f);
}
