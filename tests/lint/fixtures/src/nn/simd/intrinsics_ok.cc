// Fixture: the SAME intrinsics inside src/nn/simd/ are sanctioned — the
// dispatch layer is where vector code lives, so intrinsics-only-in-simd must
// stay silent here (and no other rule may fire either).
#include <immintrin.h>

namespace deeprest {
namespace simd {

float DotProduct(const float* a, const float* b, int n) {
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, acc);
  float sum = lanes[0] + lanes[1] + lanes[2] + lanes[3] + lanes[4] + lanes[5] +
              lanes[6] + lanes[7];
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

}  // namespace simd
}  // namespace deeprest
