// Fixture: every sanctioned shape for bounded-containers-in-serve — an
// annotated member (same line), an annotated member (line above), a type
// alias, a method returning a map, and map locals/parameters. None may fire.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

namespace deeprest {

class BoundedTable {
 public:
  using Index = std::unordered_map<uint64_t, size_t>;  // alias: no storage

  void Touch(uint64_t key, const std::map<uint64_t, std::string>& updates) {
    std::map<uint64_t, int> scratch;  // local: fine
    (void)updates;
    (void)scratch;
    while (entries_.size() > kCap) {
      entries_.erase(entries_.begin());
    }
    entries_[key] += 1;
  }

  std::map<uint64_t, uint64_t> Snapshot() const { return entries_; }

 private:
  static constexpr size_t kCap = 1024;
  std::map<uint64_t, uint64_t> entries_;  // deeprest-lint: bounded(Touch drops oldest beyond kCap)
  // deeprest-lint: bounded(one slot per shard, shard count fixed at startup)
  std::unordered_map<uint64_t, uint64_t> per_shard_;
};

}  // namespace deeprest
