// Fixture: a std::map member in a src/serve class with no bounded-cap
// escape annotation — bounded-containers-in-serve
// must fire on the member (and only on the member: the local map inside the
// method and the parameter are usage, not unbounded resident state).
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

namespace deeprest {

class SessionTable {
 public:
  void Touch(uint64_t key, const std::map<uint64_t, std::string>& updates) {
    std::unordered_map<uint64_t, int> scratch;  // local: fine
    (void)updates;
    (void)scratch;
    sessions_[key] += 1;
  }

  std::map<uint64_t, uint64_t> Snapshot() const { return sessions_; }

 private:
  std::map<uint64_t, uint64_t> sessions_;  // VIOLATION: no bound documented
};

}  // namespace deeprest
