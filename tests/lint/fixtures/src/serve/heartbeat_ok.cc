// Fixture: must NOT trip heartbeat-on-loop. Three sanctioned shapes: a loop
// that heartbeats, a cv predicate wait (the cv wakes it — not a poll), and
// an explicitly allowed loop.
#include <atomic>
#include <chrono>
#include <thread>

struct Handle {
  void Heartbeat() {}
};

struct Cv {
  void WaitFor(std::chrono::milliseconds) {}
};

void Supervised(const std::atomic<bool>& stop_flag, Handle& health) {
  while (!stop_flag.load()) {
    health.Heartbeat();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void PredicateWait(const std::atomic<bool>& stop_flag, Cv& cv) {
  while (!stop_flag.load()) {
    cv.WaitFor(std::chrono::milliseconds(5));
  }
}

void Granted(const std::atomic<bool>& stop_flag) {
  // deeprest-lint: allow(heartbeat-on-loop)
  while (!stop_flag.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}
