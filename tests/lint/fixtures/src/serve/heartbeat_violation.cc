// Fixture: must trip heartbeat-on-loop — a stop-flag worker loop under a
// src/serve path that neither heartbeats nor blocks on a condition variable.
#include <atomic>
#include <chrono>
#include <thread>

void Loop(const std::atomic<bool>& stop_flag) {
  while (!stop_flag.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}
