// Fixture: must trip lock-graph-cycle — the two ACQUIRED_AFTER annotations
// order each lock after the other, so the declared hierarchy promises a
// deadlock. No function ever acquires them (the cycle is an annotation bug,
// not a runtime one), so no other rule may fire.
#include "src/core/thread_annotations.h"

namespace deeprest {

class CyclePair {
 private:
  Mutex cyc_a_mu_ DEEPREST_ACQUIRED_AFTER(cyc_b_mu_);
  Mutex cyc_b_mu_ DEEPREST_ACQUIRED_AFTER(cyc_a_mu_);
  int left_ DEEPREST_GUARDED_BY(cyc_a_mu_);
  int right_ DEEPREST_GUARDED_BY(cyc_b_mu_);
};

}  // namespace deeprest
