// Fixture: a consistent two-level lock hierarchy — the root carries a
// lock-level comment, the inner lock an ACQUIRED_AFTER annotation, and the
// only nested acquisition follows the declared order. No lock-graph rule
// (cycle, order, position) may fire.
#include "src/core/thread_annotations.h"

namespace deeprest {

class GraphCoordinator {
 public:
  void Sweep() {
    MutexLock outer(sweep_mu_);
    MutexLock inner(detail_mu_);
    details_ += sweeps_;
  }

 private:
  Mutex sweep_mu_;  // deeprest-lint: lock-level(root)
  Mutex detail_mu_ DEEPREST_ACQUIRED_AFTER(sweep_mu_);
  int sweeps_ DEEPREST_GUARDED_BY(sweep_mu_);
  int details_ DEEPREST_GUARDED_BY(detail_mu_);
};

}  // namespace deeprest
