// Fixture: must trip lock-graph-order — the annotations order ord_a_mu_
// before ord_b_mu_, but Swap() acquires them inverted, which deadlocks
// against any thread following the declared order.
#include "src/core/thread_annotations.h"

namespace deeprest {

class InvertedOrder {
 public:
  void Swap() {
    MutexLock second(ord_b_mu_);
    MutexLock first(ord_a_mu_);
    left_ = right_;
  }

 private:
  Mutex ord_a_mu_;  // deeprest-lint: lock-level(root)
  Mutex ord_b_mu_ DEEPREST_ACQUIRED_AFTER(ord_a_mu_);
  int left_ DEEPREST_GUARDED_BY(ord_a_mu_);
  int right_ DEEPREST_GUARDED_BY(ord_b_mu_);
};

}  // namespace deeprest
