// Fixture: must trip lock-graph-position — a serving-layer mutex with no
// hierarchy position at all: no ACQUIRED_AFTER/BEFORE annotation, nothing
// references it, and no lock-level comment. It guards a field, so the
// legacy mutex-needs-guarded-by rule stays silent; only the position rule
// may fire.
#include "src/core/thread_annotations.h"

namespace deeprest {

class FloatingLock {
 private:
  Mutex float_mu_;
  int state_ DEEPREST_GUARDED_BY(float_mu_);
};

}  // namespace deeprest
