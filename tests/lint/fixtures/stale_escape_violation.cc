// Fixture: must trip stale-escape — the inline allow() below grants
// no-unseeded-rand on a line that no longer calls rand(), so the escape
// suppresses nothing and would silently mask a future regression.
int NextTicket() {
  static int counter = 0;
  // deeprest-lint: allow(no-unseeded-rand) — stale: the rand() call was removed
  counter += 1;
  return counter;
}
