// Fixture: must pass — every violation carries an allow-comment, on the same
// line or the line above.
#include <cstdlib>
#include <mutex>
#include <thread>

int SanctionedRand() {
  return rand();  // deeprest-lint: allow(no-unseeded-rand)
}

void SanctionedDetach() {
  std::thread worker([] {});
  // deeprest-lint: allow(no-detached-threads)
  worker.detach();
}

class PureSerializer {
 private:
  // Guards no field: callers only want mutual exclusion of a code path.
  std::mutex serial_mu_;  // deeprest-lint: allow(mutex-needs-guarded-by)
};
