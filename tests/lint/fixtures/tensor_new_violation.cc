// Fixture: must trip no-raw-tensor-node-new twice (new and delete) — nodes
// allocated outside the arena bypass the freelist accounting.
struct TensorNode {
  int refs = 0;
};

TensorNode* LeakyAcquire() { return new TensorNode; }

void LeakyRelease() {
  TensorNode* node = LeakyAcquire();
  delete node;
}
