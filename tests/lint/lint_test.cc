// Rule-level tests for tools/lint/deeprest_lint: each fixture under
// tests/lint/fixtures is a minimal file violating exactly one rule (plus one
// clean file and one fully-suppressed file). The test shells out to the real
// binary — the same one `ctest -L lint` runs over src/ — and asserts the
// exact rule id fires (or doesn't).
//
// DEEPREST_LINT_BIN and DEEPREST_LINT_FIXTURES are injected by CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string command = std::string(DEEPREST_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  LintRun run;
  if (pipe == nullptr) {
    return run;
  }
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    run.output += buffer;
  }
  const int status = pclose(pipe);
  run.exit_code = status >= 256 ? status / 256 : status;  // WEXITSTATUS without <sys/wait.h>
  return run;
}

std::string Fixture(const std::string& name) {
  return std::string(DEEPREST_LINT_FIXTURES) + "/" + name;
}

// One violating fixture per rule: the named rule must fire (and carry a
// file:line diagnostic), and the run must fail.
struct RuleCase {
  const char* fixture;
  const char* rule;
};

class LintRuleTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(LintRuleTest, ViolatingFixtureTripsExactlyItsRule) {
  const RuleCase& c = GetParam();
  const LintRun run = RunLint(Fixture(c.fixture));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find(std::string("[") + c.rule + "]"), std::string::npos)
      << "expected rule " << c.rule << " in:\n"
      << run.output;
  // Minimal fixtures are single-purpose: no OTHER rule may fire.
  for (const char* other :
       {"no-unseeded-rand", "no-unordered-iteration", "no-raw-tensor-node-new",
        "no-fast-math-reassoc", "mutex-needs-guarded-by", "no-detached-threads",
        "heartbeat-on-loop", "intrinsics-only-in-simd",
        "bounded-containers-in-serve"}) {
    if (std::string(other) != c.rule) {
      EXPECT_EQ(run.output.find(std::string("[") + other + "]"), std::string::npos)
          << "unexpected rule " << other << " in:\n"
          << run.output;
    }
  }
  // Diagnostics must be clickable file:line.
  EXPECT_NE(run.output.find(std::string(c.fixture) + ":"), std::string::npos) << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRuleTest,
    ::testing::Values(RuleCase{"rand_violation.cc", "no-unseeded-rand"},
                      RuleCase{"checkpoint_unordered_violation.cc", "no-unordered-iteration"},
                      RuleCase{"tensor_new_violation.cc", "no-raw-tensor-node-new"},
                      RuleCase{"src/nn/reassoc_violation.cc", "no-fast-math-reassoc"},
                      RuleCase{"mutex_violation.cc", "mutex-needs-guarded-by"},
                      RuleCase{"detach_violation.cc", "no-detached-threads"},
                      RuleCase{"src/serve/heartbeat_violation.cc", "heartbeat-on-loop"},
                      RuleCase{"src/nn/intrinsics_violation.cc", "intrinsics-only-in-simd"},
                      RuleCase{"src/serve/bounded_violation.cc",
                               "bounded-containers-in-serve"}),
    [](const ::testing::TestParamInfo<RuleCase>& param_info) {
      std::string name = param_info.param.rule;
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

TEST(LintTest, CleanFilePasses) {
  const LintRun run = RunLint(Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(LintTest, AllowCommentsSuppressSameAndNextLine) {
  const LintRun run = RunLint(Fixture("suppressed.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// heartbeat-on-loop is path-scoped AND shape-scoped: a heartbeating loop, a
// cv predicate wait, and an allow-comment grant must all pass; the identical
// un-heartbeated loop outside src/serve|src/autoscale never fires.
TEST(LintTest, HeartbeatRuleAcceptsSanctionedLoopShapes) {
  const LintRun run = RunLint(Fixture("src/serve/heartbeat_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, HeartbeatRuleIsScopedToSupervisedPaths) {
  // clean.cc sits outside src/serve and src/autoscale — out of scope even
  // though it has no heartbeats.
  const LintRun run = RunLint(Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// bounded-containers-in-serve accepts every sanctioned shape: annotated
// members (same line and line-above), type aliases, map-returning methods,
// and map locals/parameters. The identical unannotated member outside
// src/serve is out of scope (clean.cc has none, covered above).
TEST(LintTest, BoundedContainersRuleAcceptsAnnotatedAndNonMemberShapes) {
  const LintRun run = RunLint(Fixture("src/serve/bounded_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// intrinsics-only-in-simd is path-scoped: the byte-identical vector code
// passes inside src/nn/simd/ and fails one directory up (covered by the
// parameterized case above).
TEST(LintTest, IntrinsicsAreSanctionedInsideSimdDirectory) {
  const LintRun run = RunLint(Fixture("src/nn/simd/intrinsics_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(LintTest, AllowlistFileGrantsWholeFile) {
  const LintRun without = RunLint(Fixture("rand_violation.cc"));
  EXPECT_EQ(without.exit_code, 1);
  const LintRun with = RunLint("--allowlist " + Fixture("allowlist_rand.txt") + " " +
                               Fixture("rand_violation.cc"));
  EXPECT_EQ(with.exit_code, 0) << with.output;
}

TEST(LintTest, MultipleFilesAggregateViolations) {
  const LintRun run =
      RunLint(Fixture("clean.cc") + " " + Fixture("detach_violation.cc"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("[no-detached-threads]"), std::string::npos) << run.output;
}

TEST(LintTest, MissingFileIsUsageError) {
  const LintRun run = RunLint(Fixture("does_not_exist.cc"));
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

// The rule the whole PR hangs on: the real tree must stay lint-clean with
// the checked-in allowlist — same invocation as the `lint_src` ctest.
TEST(LintTest, RealSourceTreeIsClean) {
  const LintRun run = RunLint(std::string("--root ") + DEEPREST_SOURCE_ROOT +
                              " --allowlist " + DEEPREST_SOURCE_ROOT +
                              "/tools/lint/allowlist.txt");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
