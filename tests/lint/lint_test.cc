// Rule-level tests for tools/analyze/deeprest_analyze: each fixture under
// tests/lint/fixtures is a minimal file violating exactly one rule (plus
// clean/suppressed files and per-rule passing fixtures for the flow-aware
// rule classes). The test shells out to the real binary — the same one
// `ctest -L lint` runs over src/, tools/ and tests/ — and asserts the exact
// rule id fires (or doesn't), that the incremental cache reruns warm, and
// that the lock-graph DOT export names the declared hierarchy.
//
// DEEPREST_LINT_BIN and DEEPREST_LINT_FIXTURES are injected by CMake.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun RunLint(const std::string& args) {
  const std::string command = std::string(DEEPREST_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  LintRun run;
  if (pipe == nullptr) {
    return run;
  }
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    run.output += buffer;
  }
  const int status = pclose(pipe);
  run.exit_code = status >= 256 ? status / 256 : status;  // WEXITSTATUS without <sys/wait.h>
  return run;
}

std::string Fixture(const std::string& name) {
  return std::string(DEEPREST_LINT_FIXTURES) + "/" + name;
}

// Every rule the analyzer can emit — used to assert single-rule purity of
// the minimal fixtures.
const char* const kAllRules[] = {
    "no-unseeded-rand",      "no-unordered-iteration", "no-raw-tensor-node-new",
    "no-fast-math-reassoc",  "mutex-needs-guarded-by", "no-detached-threads",
    "heartbeat-on-loop",     "intrinsics-only-in-simd",
    "bounded-containers-in-serve",
    "lock-graph-cycle",      "lock-graph-order",       "lock-graph-position",
    "resource-pairing",      "blocking-under-lock",    "enum-switch",
    "stale-escape"};

// One violating fixture per rule: the named rule must fire (and carry a
// file:line diagnostic), and the run must fail.
struct RuleCase {
  const char* fixture;
  const char* rule;
};

class LintRuleTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(LintRuleTest, ViolatingFixtureTripsExactlyItsRule) {
  const RuleCase& c = GetParam();
  const LintRun run = RunLint(Fixture(c.fixture));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find(std::string("[") + c.rule + "]"), std::string::npos)
      << "expected rule " << c.rule << " in:\n"
      << run.output;
  // Minimal fixtures are single-purpose: no OTHER rule may fire.
  for (const char* other : kAllRules) {
    if (std::string(other) != c.rule) {
      EXPECT_EQ(run.output.find(std::string("[") + other + "]"), std::string::npos)
          << "unexpected rule " << other << " in:\n"
          << run.output;
    }
  }
  // Diagnostics must be clickable file:line.
  EXPECT_NE(run.output.find(std::string(c.fixture) + ":"), std::string::npos) << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintRuleTest,
    ::testing::Values(
        RuleCase{"rand_violation.cc", "no-unseeded-rand"},
        RuleCase{"checkpoint_unordered_violation.cc", "no-unordered-iteration"},
        RuleCase{"tensor_new_violation.cc", "no-raw-tensor-node-new"},
        RuleCase{"src/nn/reassoc_violation.cc", "no-fast-math-reassoc"},
        RuleCase{"mutex_violation.cc", "mutex-needs-guarded-by"},
        RuleCase{"detach_violation.cc", "no-detached-threads"},
        RuleCase{"src/serve/heartbeat_violation.cc", "heartbeat-on-loop"},
        RuleCase{"src/nn/intrinsics_violation.cc", "intrinsics-only-in-simd"},
        RuleCase{"src/serve/bounded_violation.cc", "bounded-containers-in-serve"},
        RuleCase{"src/serve/lock_cycle_violation.cc", "lock-graph-cycle"},
        RuleCase{"src/serve/lock_order_violation.cc", "lock-graph-order"},
        RuleCase{"src/serve/lock_position_violation.cc", "lock-graph-position"},
        RuleCase{"resource_leak_violation.cc", "resource-pairing"},
        RuleCase{"resource_double_release_violation.cc", "resource-pairing"},
        RuleCase{"blocking_violation.cc", "blocking-under-lock"},
        RuleCase{"enum_switch_violation.cc", "enum-switch"},
        RuleCase{"stale_escape_violation.cc", "stale-escape"}),
    [](const ::testing::TestParamInfo<RuleCase>& param_info) {
      // Two fixtures share the resource-pairing rule, so names derive from
      // the fixture file, not the rule.
      std::string name = param_info.param.fixture;
      const size_t slash = name.rfind('/');
      if (slash != std::string::npos) {
        name = name.substr(slash + 1);
      }
      const size_t dot = name.rfind('.');
      if (dot != std::string::npos) {
        name = name.substr(0, dot);
      }
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) {
          ch = '_';
        }
      }
      return name;
    });

TEST(LintTest, CleanFilePasses) {
  const LintRun run = RunLint(Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(LintTest, AllowCommentsSuppressSameAndNextLine) {
  const LintRun run = RunLint(Fixture("suppressed.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// heartbeat-on-loop is path-scoped AND shape-scoped: a heartbeating loop, a
// cv predicate wait, and an allow-comment grant must all pass; the identical
// un-heartbeated loop outside src/serve|src/autoscale never fires.
TEST(LintTest, HeartbeatRuleAcceptsSanctionedLoopShapes) {
  const LintRun run = RunLint(Fixture("src/serve/heartbeat_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, HeartbeatRuleIsScopedToSupervisedPaths) {
  // clean.cc sits outside src/serve and src/autoscale — out of scope even
  // though it has no heartbeats.
  const LintRun run = RunLint(Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// bounded-containers-in-serve accepts every sanctioned shape: annotated
// members (same line and line-above), type aliases, map-returning methods,
// and map locals/parameters. The identical unannotated member outside
// src/serve is out of scope (clean.cc has none, covered above).
TEST(LintTest, BoundedContainersRuleAcceptsAnnotatedAndNonMemberShapes) {
  const LintRun run = RunLint(Fixture("src/serve/bounded_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

// intrinsics-only-in-simd is path-scoped: the byte-identical vector code
// passes inside src/nn/simd/ and fails one directory up (covered by the
// parameterized case above).
TEST(LintTest, IntrinsicsAreSanctionedInsideSimdDirectory) {
  const LintRun run = RunLint(Fixture("src/nn/simd/intrinsics_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

// The flow-aware passing fixtures: declared hierarchy respected, balanced
// Charge/Release on every path, blocking calls only outside lock scopes,
// exhaustive (or defaulted) switches.
TEST(LintTest, ConsistentLockHierarchyPasses) {
  const LintRun run = RunLint(Fixture("src/serve/lock_graph_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(LintTest, BalancedResourcePairingPasses) {
  const LintRun run = RunLint(Fixture("resource_pairing_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, BlockingOutsideLockScopePasses) {
  const LintRun run = RunLint(Fixture("blocking_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, ExhaustiveAndDefaultedSwitchesPass) {
  const LintRun run = RunLint(Fixture("enum_switch_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintTest, AllowlistFileGrantsWholeFile) {
  const LintRun without = RunLint(Fixture("rand_violation.cc"));
  EXPECT_EQ(without.exit_code, 1);
  const LintRun with = RunLint("--allowlist " + Fixture("allowlist_rand.txt") + " " +
                               Fixture("rand_violation.cc"));
  EXPECT_EQ(with.exit_code, 0) << with.output;
}

// Satellite: escape hygiene. An allowlist entry that matches no diagnostic
// is itself a failure — dead suppressions hide new regressions.
TEST(LintTest, StaleAllowlistEntryFails) {
  const LintRun run = RunLint("--allowlist " + Fixture("allowlist_stale.txt") + " " +
                              Fixture("clean.cc"));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("[stale-escape]"), std::string::npos) << run.output;
  // The diagnostic points at the allowlist line, not the analyzed file.
  EXPECT_NE(run.output.find("allowlist_stale.txt:"), std::string::npos) << run.output;
}

// The lock-graph DOT export (feeds DESIGN.md §7) names the declared nodes
// and the acquired-before edge.
TEST(LintTest, DotExportNamesHierarchyNodesAndEdges) {
  const LintRun run = RunLint("--dot - " + Fixture("src/serve/lock_graph_ok.cc"));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("digraph deeprest_locks"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("GraphCoordinator::sweep_mu_"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("GraphCoordinator::detail_mu_"), std::string::npos) << run.output;
  EXPECT_NE(run.output.find("->"), std::string::npos) << run.output;
}

TEST(LintTest, MultipleFilesAggregateViolations) {
  const LintRun run =
      RunLint(Fixture("clean.cc") + " " + Fixture("detach_violation.cc"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_NE(run.output.find("[no-detached-threads]"), std::string::npos) << run.output;
}

TEST(LintTest, MissingFileIsUsageError) {
  const LintRun run = RunLint(Fixture("does_not_exist.cc"));
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

// Satellite: the content-hash incremental cache. A cold run analyzes the
// file, a no-op rerun serves it from the cache, and an edit invalidates
// exactly that entry.
TEST(LintTest, CacheServesWarmRerunAndInvalidatesOnEdit) {
  namespace fs = std::filesystem;
  const fs::path proj = fs::path(::testing::TempDir()) / "deeprest_analyze_cache_test";
  fs::remove_all(proj);
  fs::create_directories(proj / "src");
  const fs::path file = proj / "src" / "cache_probe.cc";
  {
    std::ofstream out(file);
    out << "int Answer() { return 42; }\n";
  }
  const std::string base_args =
      "--root " + proj.string() + " --cache " + (proj / "cache.txt").string() + " --stats";

  const LintRun cold = RunLint(base_args);
  EXPECT_EQ(cold.exit_code, 0) << cold.output;
  EXPECT_NE(cold.output.find("1 analyzed, 0 cached"), std::string::npos) << cold.output;

  const LintRun warm = RunLint(base_args);
  EXPECT_EQ(warm.exit_code, 0) << warm.output;
  EXPECT_NE(warm.output.find("0 analyzed, 1 cached"), std::string::npos) << warm.output;

  {
    std::ofstream out(file, std::ios::app);
    out << "// touched: the content hash must move\n";
  }
  const LintRun edited = RunLint(base_args);
  EXPECT_EQ(edited.exit_code, 0) << edited.output;
  EXPECT_NE(edited.output.find("1 analyzed, 0 cached"), std::string::npos) << edited.output;

  fs::remove_all(proj);
}

// A cached rerun must reproduce the cold run's diagnostics verbatim —
// caching may never eat a violation.
TEST(LintTest, CacheReplaysDiagnosticsVerbatim) {
  namespace fs = std::filesystem;
  const fs::path proj = fs::path(::testing::TempDir()) / "deeprest_analyze_replay_test";
  fs::remove_all(proj);
  fs::create_directories(proj / "src");
  {
    std::ofstream out(proj / "src" / "dirty_probe.cc");
    out << "#include <cstdlib>\n"
           "int Roll() { return std::rand(); }\n";
  }
  const std::string base_args =
      "--root " + proj.string() + " --cache " + (proj / "cache.txt").string();

  const LintRun cold = RunLint(base_args);
  const LintRun warm = RunLint(base_args);
  EXPECT_EQ(cold.exit_code, 1) << cold.output;
  EXPECT_EQ(warm.exit_code, 1) << warm.output;
  EXPECT_EQ(cold.output, warm.output);
  EXPECT_NE(warm.output.find("[no-unseeded-rand]"), std::string::npos) << warm.output;

  fs::remove_all(proj);
}

// The rule the whole PR hangs on: the real tree must stay lint-clean with
// the checked-in allowlist — same invocation as the `lint_src` ctest.
TEST(LintTest, RealSourceTreeIsClean) {
  const LintRun run = RunLint(std::string("--root ") + DEEPREST_SOURCE_ROOT +
                              " --allowlist " + DEEPREST_SOURCE_ROOT +
                              "/tools/lint/allowlist.txt");
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

}  // namespace
