// Fused ops vs their elementary-op compositions.
//
// The fused graph nodes (SigmoidMaskMul, FusedGruStep) promise BIT-EXACT
// values and gradients relative to the elementary composition they replace:
// each gradient buffer receives the same += contributions in the same order
// through the same kernels (see DESIGN.md "Performance notes"). These tests
// assert full bit equality, not approximate closeness.
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/ops.h"
#include "src/nn/rng.h"

namespace deeprest {
namespace {

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(FusedOpsTest, SigmoidMaskMulMatchesCompositionBitExact) {
  Rng rng(31);
  Matrix mask_value(6, 1), x_value(6, 1);
  mask_value.FillUniform(rng, 2.0f);
  x_value.FillUniform(rng, 2.0f);

  Tensor mask_f = Tensor::Parameter(mask_value);
  Tensor x_f = Tensor::Parameter(x_value);
  Tensor fused = SigmoidMaskMul(mask_f, x_f);
  SumAll(fused).Backward();

  Tensor mask_r = Tensor::Parameter(mask_value);
  Tensor x_r = Tensor::Parameter(x_value);
  Tensor composed = Hadamard(Sigmoid(mask_r), x_r);
  SumAll(composed).Backward();

  EXPECT_TRUE(BitIdentical(fused.value(), composed.value()));
  EXPECT_TRUE(BitIdentical(mask_f.grad(), mask_r.grad()));
  EXPECT_TRUE(BitIdentical(x_f.grad(), x_r.grad()));
}

// Bit-exactness holds under the TRAINING loss topology: every step's output
// feeds the loss (here AddN of per-step sums, like the estimator's per-step
// pinball losses). The reverse sweep then processes each step as one
// contiguous block in both graphs, so every gradient buffer sees identical
// += order. With a loss on only the FINAL state, the reference graph's
// wz@x matmul — whose parents are both already-visited leaves — is
// post-ordered ascending across steps while everything else stays
// descending, and the match degrades to ~1 ulp (see the test below).
TEST(FusedOpsTest, FusedGruStepMatchesReferenceBitExactUnderTrainingLoss) {
  constexpr size_t kInDim = 9;
  constexpr size_t kHidden = 7;
  constexpr size_t kUnroll = 5;
  Rng rng(32);
  ParameterStore store;
  GruCell gru(store, "gru", kInDim, kHidden, rng);
  Matrix x_value(kInDim, 1);
  x_value.FillUniform(rng, 1.0f);
  const Tensor x = Tensor::Constant(x_value);

  const auto run = [&](bool fused) {
    Tensor h = gru.InitialState();
    std::vector<Tensor> losses;
    for (size_t t = 0; t < kUnroll; ++t) {
      h = fused ? gru.Step(x, h) : gru.StepReference(x, h);
      losses.push_back(SumAll(h));
    }
    AddN(losses).Backward();
    return h;
  };

  const Tensor h_fused = run(true);
  std::vector<Matrix> fused_grads;
  for (const auto& entry : store.entries()) {
    fused_grads.push_back(entry.tensor.grad());
  }

  store.ZeroGrad();
  const Tensor h_ref = run(false);

  EXPECT_TRUE(BitIdentical(h_fused.value(), h_ref.value()));
  const auto& entries = store.entries();
  ASSERT_EQ(entries.size(), fused_grads.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_TRUE(BitIdentical(fused_grads[i], entries[i].tensor.grad()))
        << "parameter " << entries[i].name;
  }
}

TEST(FusedOpsTest, FusedGruStepLastStateLossMatchesWithinUlps) {
  // The out-of-contract topology: loss on the final state only. Gradients
  // are mathematically identical but the wz@x contributions accumulate in
  // opposite step order, so equality is approximate, not bitwise.
  constexpr size_t kUnroll = 5;
  Rng rng(32);
  ParameterStore store;
  GruCell gru(store, "gru", 9, 7, rng);
  Matrix x_value(9, 1);
  x_value.FillUniform(rng, 1.0f);
  const Tensor x = Tensor::Constant(x_value);

  const auto run = [&](bool fused) {
    Tensor h = gru.InitialState();
    for (size_t t = 0; t < kUnroll; ++t) {
      h = fused ? gru.Step(x, h) : gru.StepReference(x, h);
    }
    SumAll(h).Backward();
  };

  run(true);
  std::vector<Matrix> fused_grads;
  for (const auto& entry : store.entries()) {
    fused_grads.push_back(entry.tensor.grad());
  }
  store.ZeroGrad();
  run(false);

  const auto& entries = store.entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    const Matrix& ref = entries[i].tensor.grad();
    ASSERT_TRUE(ref.SameShape(fused_grads[i]));
    for (size_t j = 0; j < ref.size(); ++j) {
      EXPECT_NEAR(fused_grads[i][j], ref[j], 1e-6f * (1.0f + std::fabs(ref[j])))
          << entries[i].name << " element " << j;
    }
  }
}

TEST(FusedOpsTest, FusedGruStepIsOneGraphNode) {
  Rng rng(33);
  ParameterStore store;
  GruCell gru(store, "gru", 4, 3, rng);
  Matrix x_value(4, 1);
  x_value.FillUniform(rng, 1.0f);
  const Tensor x = Tensor::Constant(x_value);
  const Tensor h0 = gru.InitialState();

  const uint64_t before = TensorNodesCreated();
  const Tensor h1 = gru.Step(x, h0);
  EXPECT_EQ(TensorNodesCreated() - before, 1u);

  const uint64_t before_ref = TensorNodesCreated();
  const Tensor h1_ref = gru.StepReference(x, h0);
  EXPECT_GT(TensorNodesCreated() - before_ref, 10u);
  EXPECT_TRUE(BitIdentical(h1.value(), h1_ref.value()));
}

}  // namespace
}  // namespace deeprest
