// Tiled-kernel vs reference-kernel equivalence.
//
// The tiled GEMM kernels block only over independent output elements, never
// over the reduction dimension, so they promise results IDENTICAL to the
// reference kernels up to the sign of zero: the reference MatMulInto skipped
// `a == 0.0f` terms, and adding a 0*b term can turn -0 into +0 (which still
// compares equal under ==). These tests pin that tolerance: exact value
// equality (operator==, where -0 == +0) always, and bit-for-bit equality
// whenever the inputs contain no zeros.
#include <cstring>

#include <gtest/gtest.h>

#include "src/nn/matrix.h"
#include "src/nn/rng.h"

namespace deeprest {
namespace {

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void ExpectValuesEqual(const Matrix& a, const Matrix& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (size_t i = 0; i < a.size(); ++i) {
    // operator== on floats: -0 == +0, and any magnitude difference fails.
    EXPECT_EQ(a[i], b[i]) << "element " << i;
  }
}

// Shape grid covering the kernels' special cases: 1x1, matvec fast path
// (n == 1), the 4-row/4-column block remainders, and larger squares.
struct Shape {
  size_t m, k, n;
};
const Shape kShapes[] = {{1, 1, 1},   {1, 5, 1},   {4, 8, 1},  {5, 9, 3},
                         {3, 7, 2},   {16, 256, 1}, {13, 13, 13}, {12, 12, 16},
                         {32, 17, 6}, {2, 1, 2}};

TEST(KernelsTest, TiledMatMulBitIdenticalOnNonZeroInputs) {
  Rng rng(101);
  for (const Shape& s : kShapes) {
    Matrix a(s.m, s.k), b(s.k, s.n), tiled, ref;
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    // FillUniform essentially never produces exact zeros, so the zero-skip
    // in the reference kernel never fires and the results must be
    // bit-for-bit identical, not merely value-equal.
    MatMulInto(a, b, tiled);
    reference::MatMulInto(a, b, ref);
    EXPECT_TRUE(BitIdentical(tiled, ref)) << s.m << "x" << s.k << "*" << s.k << "x" << s.n;
  }
}

TEST(KernelsTest, TiledMatMulEqualsReferenceWithZeroRows) {
  Rng rng(102);
  for (const Shape& s : kShapes) {
    Matrix a(s.m, s.k), b(s.k, s.n), tiled, ref;
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    // Plant exact zeros so the reference skip path fires; the documented
    // tolerance is sign-of-zero only, which operator== ignores.
    for (size_t i = 0; i < a.size(); i += 3) {
      a[i] = 0.0f;
    }
    MatMulInto(a, b, tiled);
    reference::MatMulInto(a, b, ref);
    ExpectValuesEqual(tiled, ref);
  }
}

TEST(KernelsTest, SkipZerosVariantMatchesDense) {
  Rng rng(103);
  Matrix a(9, 14), b(14, 5), dense, sparse;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  for (size_t i = 0; i < a.size(); i += 2) {
    a[i] = 0.0f;  // genuinely sparse left operand: the masked variant's case
  }
  MatMulInto(a, b, dense);
  MatMulIntoSkipZeros(a, b, sparse);
  ExpectValuesEqual(dense, sparse);
}

TEST(KernelsTest, TiledAccumulateATransposeBBitIdentical) {
  Rng rng(104);
  for (const Shape& s : kShapes) {
    Matrix a(s.m, s.k), g(s.m, s.n);
    a.FillUniform(rng, 1.0f);
    g.FillUniform(rng, 1.0f);
    Matrix tiled(s.k, s.n), ref(s.k, s.n);
    tiled.FillUniform(rng, 1.0f);  // accumulate on top of a non-trivial seed
    for (size_t i = 0; i < tiled.size(); ++i) {
      ref[i] = tiled[i];
    }
    AccumulateATransposeB(a, g, tiled);
    reference::AccumulateATransposeB(a, g, ref);
    EXPECT_TRUE(BitIdentical(tiled, ref)) << s.m << "x" << s.k;
  }
}

TEST(KernelsTest, TiledAccumulateABTransposeBitIdentical) {
  Rng rng(105);
  for (const Shape& s : kShapes) {
    Matrix g(s.m, s.n), b(s.k, s.n);
    g.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    Matrix tiled(s.m, s.k), ref(s.m, s.k);
    tiled.FillUniform(rng, 1.0f);
    for (size_t i = 0; i < tiled.size(); ++i) {
      ref[i] = tiled[i];
    }
    AccumulateABTranspose(g, b, tiled);
    reference::AccumulateABTranspose(g, b, ref);
    EXPECT_TRUE(BitIdentical(tiled, ref)) << s.m << "x" << s.k;
  }
}

TEST(KernelsTest, KernelModeDispatchesToReference) {
  Rng rng(106);
  Matrix a(7, 11), b(11, 4), via_mode, direct;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  SetKernelMode(KernelMode::kReference);
  EXPECT_EQ(GetKernelMode(), KernelMode::kReference);
  MatMulInto(a, b, via_mode);
  SetKernelMode(KernelMode::kTiled);
  reference::MatMulInto(a, b, direct);
  EXPECT_TRUE(BitIdentical(via_mode, direct));
  EXPECT_EQ(GetKernelMode(), KernelMode::kTiled);
}

}  // namespace
}  // namespace deeprest
