#include "src/nn/layers.h"

#include <gtest/gtest.h>

#include "src/nn/rng.h"
#include "tests/testing/gradcheck.h"

namespace deeprest {
namespace {

TEST(ParameterStoreTest, CreateRegistersAndCounts) {
  ParameterStore store;
  store.Create("a", Matrix(2, 3));
  store.Create("b", Matrix(4, 1));
  EXPECT_EQ(store.entries().size(), 2u);
  EXPECT_EQ(store.TotalParameters(), 10u);
}

TEST(ParameterStoreTest, FindByName) {
  ParameterStore store;
  store.Create("x", Matrix(1, 1, 5.0f));
  Tensor found = store.Find("x");
  ASSERT_TRUE(found.defined());
  EXPECT_FLOAT_EQ(found.value().At(0, 0), 5.0f);
  EXPECT_FALSE(store.Find("missing").defined());
}

TEST(ParameterStoreTest, ZeroGradClearsGradients) {
  ParameterStore store;
  Tensor t = store.Create("p", Matrix(1, 1, 1.0f));
  Tensor loss = Hadamard(t, t);
  loss.Backward();
  EXPECT_NE(t.grad().At(0, 0), 0.0f);
  store.ZeroGrad();
  EXPECT_FLOAT_EQ(t.grad().At(0, 0), 0.0f);
}

TEST(LinearTest, ForwardComputesAffineMap) {
  ParameterStore store;
  Rng rng(1);
  Linear layer(store, "fc", 2, 3, rng);
  // Overwrite with known weights.
  Tensor w = store.Find("fc.W");
  Tensor b = store.Find("fc.b");
  w.mutable_value() = Matrix::FromRows({{1, 0}, {0, 1}, {1, 1}});
  b.mutable_value() = Matrix::Column({0.5f, -0.5f, 0.0f});
  Tensor x = Tensor::Constant(Matrix::Column({2.0f, 3.0f}));
  Tensor y = layer.Forward(x);
  EXPECT_FLOAT_EQ(y.value().At(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.value().At(1, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.value().At(2, 0), 5.0f);
}

TEST(LinearTest, RegistersTwoParameters) {
  ParameterStore store;
  Rng rng(2);
  Linear layer(store, "fc", 4, 2, rng);
  EXPECT_EQ(store.entries().size(), 2u);
  EXPECT_EQ(store.TotalParameters(), 4u * 2u + 2u);
  EXPECT_EQ(layer.in_dim(), 4u);
  EXPECT_EQ(layer.out_dim(), 2u);
}

TEST(LinearTest, GradientFlowsToWeights) {
  ParameterStore store;
  Rng rng(3);
  Linear layer(store, "fc", 3, 2, rng);
  Tensor x = Tensor::Constant(Matrix::Column({1.0f, -1.0f, 0.5f}));
  std::vector<Tensor> params;
  for (const auto& e : store.entries()) {
    params.push_back(e.tensor);
  }
  ExpectGradientsMatch(params, [&] {
    Tensor y = layer.Forward(x);
    return SumAll(Hadamard(y, y));
  });
}

TEST(GruCellTest, ShapesAndParameterCount) {
  ParameterStore store;
  Rng rng(4);
  GruCell cell(store, "gru", 5, 3, rng);
  EXPECT_EQ(cell.in_dim(), 5u);
  EXPECT_EQ(cell.hidden_dim(), 3u);
  // 3 gates x (W: 3x5, U: 3x3, b: 3x1) = 3 * (15 + 9 + 3) = 81.
  EXPECT_EQ(store.TotalParameters(), 81u);
  Tensor h = cell.InitialState();
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 1u);
  Tensor x = Tensor::Constant(Matrix::Column({1, 2, 3, 4, 5}));
  Tensor h1 = cell.Step(x, h);
  EXPECT_EQ(h1.rows(), 3u);
  EXPECT_EQ(h1.cols(), 1u);
}

TEST(GruCellTest, InitialStateIsZero) {
  ParameterStore store;
  Rng rng(5);
  GruCell cell(store, "gru", 2, 4, rng);
  Tensor h = cell.InitialState();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(h.value().At(i, 0), 0.0f);
  }
}

TEST(GruCellTest, HiddenStateBounded) {
  // GRU hidden state is a convex combination of tanh outputs and previous
  // state, so it must stay inside (-1, 1) from a zero start.
  ParameterStore store;
  Rng rng(6);
  GruCell cell(store, "gru", 3, 4, rng);
  Tensor h = cell.InitialState();
  for (int t = 0; t < 50; ++t) {
    Matrix x(3, 1);
    x.FillUniform(rng, 5.0f);
    h = cell.Step(Tensor::Constant(x), h);
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_GT(h.value().At(i, 0), -1.0f);
      EXPECT_LT(h.value().At(i, 0), 1.0f);
    }
  }
}

TEST(GruCellTest, GradientThroughThreeSteps) {
  ParameterStore store;
  Rng rng(7);
  GruCell cell(store, "gru", 2, 2, rng);
  std::vector<Matrix> inputs;
  for (int t = 0; t < 3; ++t) {
    Matrix x(2, 1);
    x.FillUniform(rng, 1.0f);
    inputs.push_back(x);
  }
  std::vector<Tensor> params;
  for (const auto& e : store.entries()) {
    params.push_back(e.tensor);
  }
  ExpectGradientsMatch(params, [&] {
    Tensor h = cell.InitialState();
    for (const auto& x : inputs) {
      h = cell.Step(Tensor::Constant(x), h);
    }
    return SumAll(Hadamard(h, h));
  });
}

TEST(GruCellTest, FlattenedParametersSizeMatches) {
  ParameterStore store;
  Rng rng(8);
  GruCell cell(store, "gru", 5, 3, rng);
  EXPECT_EQ(cell.FlattenedParameters().size(), 81u);
}

TEST(GruCellTest, ZeroInputZeroStateGivesDeterministicOutput) {
  ParameterStore store_a;
  ParameterStore store_b;
  Rng rng_a(9);
  Rng rng_b(9);
  GruCell cell_a(store_a, "g", 2, 3, rng_a);
  GruCell cell_b(store_b, "g", 2, 3, rng_b);
  Tensor x = Tensor::Constant(Matrix::Column({0.3f, -0.2f}));
  Tensor ha = cell_a.Step(x, cell_a.InitialState());
  Tensor hb = cell_b.Step(x, cell_b.InitialState());
  EXPECT_EQ(ha.value(), hb.value());
}

}  // namespace
}  // namespace deeprest
