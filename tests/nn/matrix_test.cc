#include "src/nn/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/rng.h"

namespace deeprest {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m[i], 0.0f);
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 3.5f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m[i], 3.5f);
  }
}

TEST(MatrixTest, FromRowsLaysOutRowMajor) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.At(0, 0), 1.0f);
  EXPECT_EQ(m.At(0, 2), 3.0f);
  EXPECT_EQ(m.At(1, 0), 4.0f);
  EXPECT_EQ(m.At(1, 2), 6.0f);
}

TEST(MatrixTest, ColumnVector) {
  Matrix v = Matrix::Column({7, 8, 9});
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_EQ(v.At(1, 0), 8.0f);
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id.At(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, AddAndAddScaled) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a.Add(b);
  EXPECT_EQ(a.At(0, 0), 11.0f);
  EXPECT_EQ(a.At(1, 1), 44.0f);
  a.AddScaled(b, -1.0f);
  EXPECT_EQ(a.At(0, 0), 1.0f);
  EXPECT_EQ(a.At(1, 1), 4.0f);
}

TEST(MatrixTest, Scale) {
  Matrix a = Matrix::FromRows({{2, 4}});
  a.Scale(0.5f);
  EXPECT_EQ(a.At(0, 0), 1.0f);
  EXPECT_EQ(a.At(0, 1), 2.0f);
}

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.MatMul(b);
  EXPECT_EQ(c.At(0, 0), 19.0f);
  EXPECT_EQ(c.At(0, 1), 22.0f);
  EXPECT_EQ(c.At(1, 0), 43.0f);
  EXPECT_EQ(c.At(1, 1), 50.0f);
}

TEST(MatrixTest, MatMulRectangular) {
  Matrix a = Matrix::FromRows({{1, 0, 2}});       // 1x3
  Matrix b = Matrix::FromRows({{1}, {2}, {3}});   // 3x1
  Matrix c = a.MatMul(b);                         // 1x1
  EXPECT_EQ(c.rows(), 1u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_EQ(c.At(0, 0), 7.0f);
}

TEST(MatrixTest, MatMulByIdentityIsNoop) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(a.MatMul(Matrix::Identity(2)), a);
  EXPECT_EQ(Matrix::Identity(2).MatMul(a), a);
}

TEST(MatrixTest, MatMulIntoReusesStorage) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::Identity(2);
  Matrix out(2, 2, 99.0f);
  MatMulInto(a, b, out);
  EXPECT_EQ(out, a);
}

TEST(MatrixTest, Transposed) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.At(0, 1), 4.0f);
  EXPECT_EQ(t.At(2, 0), 3.0f);
}

TEST(MatrixTest, AccumulateATransposeB) {
  // a (2x2), b (2x3): out (2x3) += a^T b.
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{1, 0, 1}, {0, 1, 1}});
  Matrix out(2, 3);
  AccumulateATransposeB(a, b, out);
  Matrix expected = a.Transposed().MatMul(b);
  EXPECT_EQ(out, expected);
  // Accumulation: calling again doubles.
  AccumulateATransposeB(a, b, out);
  expected.Scale(2.0f);
  EXPECT_EQ(out, expected);
}

TEST(MatrixTest, AccumulateABTranspose) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});       // 1x3
  Matrix b = Matrix::FromRows({{4, 5, 6}, {1, 1, 1}});  // 2x3
  Matrix out(1, 2);
  AccumulateABTranspose(a, b, out);
  Matrix expected = a.MatMul(b.Transposed());
  EXPECT_EQ(out, expected);
}

TEST(MatrixTest, NormSumMaxMin) {
  Matrix a = Matrix::FromRows({{3, -4}});
  EXPECT_FLOAT_EQ(a.Norm(), 5.0f);
  EXPECT_FLOAT_EQ(a.Sum(), -1.0f);
  EXPECT_FLOAT_EQ(a.Max(), 3.0f);
  EXPECT_FLOAT_EQ(a.Min(), -4.0f);
}

TEST(MatrixTest, FillUniformWithinBounds) {
  Rng rng(1);
  Matrix m(10, 10);
  m.FillUniform(rng, 0.25f);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m[i], -0.25f);
    EXPECT_LE(m[i], 0.25f);
  }
}

TEST(MatrixTest, FillGaussianHasRoughMoments) {
  Rng rng(2);
  Matrix m(100, 100);
  m.FillGaussian(rng, 2.0f);
  double sum = 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sum += m[i];
    sq += static_cast<double>(m[i]) * m[i];
  }
  EXPECT_NEAR(sum / m.size(), 0.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / m.size()), 2.0, 0.1);
}

TEST(MatrixTest, EqualityComparesShapeAndData) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1}, {2}});
  EXPECT_FALSE(a == b);
  Matrix c = Matrix::FromRows({{1, 2}});
  EXPECT_TRUE(a == c);
}

TEST(MatrixTest, DebugStringContainsShape) {
  Matrix a = Matrix::FromRows({{1, 2}});
  EXPECT_NE(a.DebugString().find("1x2"), std::string::npos);
}

}  // namespace
}  // namespace deeprest
