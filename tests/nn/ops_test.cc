#include "src/nn/ops.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/rng.h"
#include "tests/testing/gradcheck.h"

namespace deeprest {
namespace {

Tensor RandomParam(size_t rows, size_t cols, Rng& rng, float scale = 0.5f) {
  Matrix m(rows, cols);
  m.FillUniform(rng, scale);
  return Tensor::Parameter(m);
}

TEST(OpsTest, AddForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{1, 2}}));
  Tensor b = Tensor::Constant(Matrix::FromRows({{3, 4}}));
  Tensor c = Add(a, b);
  EXPECT_FLOAT_EQ(c.value().At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(c.value().At(0, 1), 6.0f);
}

TEST(OpsTest, SubForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{5, 2}}));
  Tensor b = Tensor::Constant(Matrix::FromRows({{3, 4}}));
  Tensor c = Sub(a, b);
  EXPECT_FLOAT_EQ(c.value().At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.value().At(0, 1), -2.0f);
}

TEST(OpsTest, HadamardForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{2, 3}}));
  Tensor b = Tensor::Constant(Matrix::FromRows({{4, 5}}));
  Tensor c = Hadamard(a, b);
  EXPECT_FLOAT_EQ(c.value().At(0, 0), 8.0f);
  EXPECT_FLOAT_EQ(c.value().At(0, 1), 15.0f);
}

TEST(OpsTest, AffineForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{1, -2}}));
  Tensor c = Affine(a, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(c.value().At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(c.value().At(0, 1), 3.0f);
}

TEST(OpsTest, SigmoidForwardRange) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{-100, 0, 100}}));
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.value().At(0, 0), 0.0f, 1e-6f);
  EXPECT_FLOAT_EQ(s.value().At(0, 1), 0.5f);
  EXPECT_NEAR(s.value().At(0, 2), 1.0f, 1e-6f);
}

TEST(OpsTest, TanhForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{0.0f}}));
  EXPECT_FLOAT_EQ(Tanh(a).scalar(), 0.0f);
}

TEST(OpsTest, ReluForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{-1, 0, 2}}));
  Tensor r = Relu(a);
  EXPECT_FLOAT_EQ(r.value().At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(r.value().At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(r.value().At(0, 2), 2.0f);
}

TEST(OpsTest, ExpForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{0, 1}}));
  Tensor e = Exp(a);
  EXPECT_FLOAT_EQ(e.value().At(0, 0), 1.0f);
  EXPECT_NEAR(e.value().At(0, 1), std::exp(1.0f), 1e-5f);
}

TEST(OpsTest, MatMulForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{1, 2}, {3, 4}}));
  Tensor x = Tensor::Constant(Matrix::Column({1, 1}));
  Tensor y = MatMul(a, x);
  EXPECT_FLOAT_EQ(y.value().At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(y.value().At(1, 0), 7.0f);
}

TEST(OpsTest, ConcatRowsForward) {
  Tensor a = Tensor::Constant(Matrix::Column({1, 2}));
  Tensor b = Tensor::Constant(Matrix::Column({3}));
  Tensor c = ConcatRows(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_FLOAT_EQ(c.value().At(2, 0), 3.0f);
}

TEST(OpsTest, StackColumnsForward) {
  Tensor a = Tensor::Constant(Matrix::Column({1, 2}));
  Tensor b = Tensor::Constant(Matrix::Column({3, 4}));
  Tensor s = StackColumns({a, b});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_FLOAT_EQ(s.value().At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(s.value().At(1, 0), 3.0f);
}

TEST(OpsTest, RowAsColumnForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{1, 2}, {3, 4}}));
  Tensor r = RowAsColumn(a, 1);
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.cols(), 1u);
  EXPECT_FLOAT_EQ(r.value().At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(r.value().At(1, 0), 4.0f);
}

TEST(OpsTest, SumMeanForward) {
  Tensor a = Tensor::Constant(Matrix::FromRows({{1, 2}, {3, 4}}));
  EXPECT_FLOAT_EQ(SumAll(a).scalar(), 10.0f);
  EXPECT_FLOAT_EQ(MeanAll(a).scalar(), 2.5f);
}

TEST(OpsTest, AddNForward) {
  Tensor a = Tensor::Constant(Matrix(1, 1, 1.0f));
  Tensor b = Tensor::Constant(Matrix(1, 1, 2.0f));
  Tensor c = Tensor::Constant(Matrix(1, 1, 3.0f));
  EXPECT_FLOAT_EQ(AddN({a, b, c}).scalar(), 6.0f);
}

TEST(OpsTest, PinballForwardMatchesDefinition) {
  // pred = 1.0, target = 0.0, delta = 0.9: u = -1 < 0 -> (0.9 - 1) * -1 = 0.1
  // (over-prediction is cheap for a high quantile).
  Tensor pred = Tensor::Constant(Matrix::Column({1.0f}));
  EXPECT_FLOAT_EQ(PinballLoss(pred, 0.0f, {0.9f}).scalar(), 0.1f);
  // pred = -1.0: u = 1 >= 0 -> 0.9 * 1 (under-prediction is expensive).
  Tensor pred2 = Tensor::Constant(Matrix::Column({-1.0f}));
  EXPECT_FLOAT_EQ(PinballLoss(pred2, 0.0f, {0.9f}).scalar(), 0.9f);
}

TEST(OpsTest, PinballThreeHeadLoss) {
  Tensor pred = Tensor::Constant(Matrix::Column({1.0f, 0.5f, 2.0f}));
  const float target = 1.0f;
  Tensor loss = PinballLoss(pred, target, {0.5f, 0.05f, 0.95f});
  // head0: u=0 -> 0; head1: u=0.5 -> 0.05*0.5=0.025; head2: u=-1 -> 0.05.
  EXPECT_NEAR(loss.scalar(), 0.0f + 0.025f + 0.05f, 1e-5f);
}

TEST(OpsTest, PinballMinimizerIsQuantile) {
  // Directly verify the convention: for data {0..9}, the 0.1-quantile head
  // should settle near the low end, the 0.9-quantile head near the high end.
  Tensor pred = Tensor::Parameter(Matrix::Column({5.0f, 5.0f}));
  for (int step = 0; step < 4000; ++step) {
    const float y = static_cast<float>(step % 10);
    pred.node()->EnsureGrad();
    pred.mutable_grad().Zero();
    PinballLoss(pred, y, {0.1f, 0.9f}).Backward();
    pred.mutable_value().AddScaled(pred.grad(), -0.01f);
  }
  EXPECT_LT(pred.value().At(0, 0), 2.5f);
  EXPECT_GT(pred.value().At(1, 0), 6.5f);
}

TEST(OpsTest, SquaredErrorForward) {
  Tensor pred = Tensor::Constant(Matrix::Column({3.0f}));
  EXPECT_FLOAT_EQ(SquaredError(pred, Matrix::Column({1.0f})).scalar(), 2.0f);
}

// ----- Gradient checks -----

TEST(OpsGradTest, AddGradient) {
  Rng rng(1);
  Tensor a = RandomParam(3, 2, rng);
  Tensor b = RandomParam(3, 2, rng);
  ExpectGradientsMatch({a, b}, [&] { return SumAll(Hadamard(Add(a, b), Add(a, b))); });
}

TEST(OpsGradTest, SubGradient) {
  Rng rng(2);
  Tensor a = RandomParam(2, 2, rng);
  Tensor b = RandomParam(2, 2, rng);
  ExpectGradientsMatch({a, b}, [&] { return SumAll(Hadamard(Sub(a, b), Sub(a, b))); });
}

TEST(OpsGradTest, HadamardGradient) {
  Rng rng(3);
  Tensor a = RandomParam(3, 1, rng);
  Tensor b = RandomParam(3, 1, rng);
  ExpectGradientsMatch({a, b}, [&] { return SumAll(Hadamard(a, b)); });
}

TEST(OpsGradTest, AffineGradient) {
  Rng rng(4);
  Tensor a = RandomParam(2, 3, rng);
  ExpectGradientsMatch({a}, [&] { return SumAll(Hadamard(Affine(a, -2.0f, 0.5f), a)); });
}

TEST(OpsGradTest, MatMulGradient) {
  Rng rng(5);
  Tensor w = RandomParam(4, 3, rng);
  Tensor x = RandomParam(3, 2, rng);
  ExpectGradientsMatch({w, x}, [&] { return SumAll(Hadamard(MatMul(w, x), MatMul(w, x))); });
}

TEST(OpsGradTest, SigmoidGradient) {
  Rng rng(6);
  Tensor a = RandomParam(3, 3, rng, 2.0f);
  ExpectGradientsMatch({a}, [&] { return SumAll(Sigmoid(a)); });
}

TEST(OpsGradTest, TanhGradient) {
  Rng rng(7);
  Tensor a = RandomParam(3, 3, rng, 2.0f);
  ExpectGradientsMatch({a}, [&] { return SumAll(Tanh(a)); });
}

TEST(OpsGradTest, ReluGradientAwayFromKink) {
  Rng rng(8);
  // Shift values away from 0 so finite differences are valid.
  Matrix m(3, 3);
  m.FillUniform(rng, 1.0f);
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] += m[i] >= 0.0f ? 0.5f : -0.5f;
  }
  Tensor a = Tensor::Parameter(m);
  ExpectGradientsMatch({a}, [&] { return SumAll(Relu(a)); });
}

TEST(OpsGradTest, ExpGradient) {
  Rng rng(9);
  Tensor a = RandomParam(2, 2, rng, 1.0f);
  ExpectGradientsMatch({a}, [&] { return SumAll(Exp(a)); });
}

TEST(OpsGradTest, ConcatRowsGradient) {
  Rng rng(10);
  Tensor a = RandomParam(2, 1, rng);
  Tensor b = RandomParam(3, 1, rng);
  ExpectGradientsMatch(
      {a, b}, [&] { return SumAll(Hadamard(ConcatRows(a, b), ConcatRows(a, b))); });
}

TEST(OpsGradTest, StackColumnsAndRowAsColumnGradient) {
  Rng rng(11);
  Tensor a = RandomParam(3, 1, rng);
  Tensor b = RandomParam(3, 1, rng);
  Tensor c = RandomParam(3, 1, rng);
  ExpectGradientsMatch({a, b, c}, [&] {
    Tensor stacked = StackColumns({a, b, c});  // 3x3
    Tensor row = RowAsColumn(stacked, 1);      // = b
    return SumAll(Hadamard(row, RowAsColumn(stacked, 2)));
  });
}

TEST(OpsGradTest, MeanAllGradient) {
  Rng rng(12);
  Tensor a = RandomParam(4, 2, rng);
  ExpectGradientsMatch({a}, [&] { return MeanAll(Hadamard(a, a)); });
}

TEST(OpsGradTest, AddNGradient) {
  Rng rng(13);
  Tensor a = RandomParam(1, 1, rng);
  Tensor b = RandomParam(1, 1, rng);
  ExpectGradientsMatch(
      {a, b}, [&] { return AddN({Hadamard(a, a), Hadamard(b, b), Hadamard(a, b)}); });
}

TEST(OpsGradTest, PinballGradientAwayFromKink) {
  // Keep pred far from target so the subgradient is exact.
  Tensor pred = Tensor::Parameter(Matrix::Column({2.0f, -1.0f, 4.0f}));
  ExpectGradientsMatch({pred},
                       [&] { return PinballLoss(pred, 0.5f, {0.5f, 0.05f, 0.95f}); });
}

TEST(OpsGradTest, SquaredErrorGradient) {
  Rng rng(14);
  Tensor pred = RandomParam(4, 1, rng, 2.0f);
  const Matrix target = Matrix::Column({1.0f, -1.0f, 0.5f, 2.0f});
  ExpectGradientsMatch({pred}, [&] { return SquaredError(pred, target); });
}

TEST(OpsGradTest, AttentionPatternGradient) {
  // The exact composite used by the estimator: alpha (masked) x stacked H,
  // then per-expert row extraction — checks gradient flow across experts.
  Rng rng(15);
  Tensor alpha = RandomParam(3, 3, rng);
  Tensor h0 = RandomParam(4, 1, rng);
  Tensor h1 = RandomParam(4, 1, rng);
  Tensor h2 = RandomParam(4, 1, rng);
  Matrix diag_mask = Matrix::FromRows({{0, 1, 1}, {1, 0, 1}, {1, 1, 0}});
  Tensor mask = Tensor::Constant(diag_mask);
  ExpectGradientsMatch({alpha, h0, h1, h2}, [&] {
    Tensor stacked = StackColumns({h0, h1, h2});
    Tensor attended = MatMul(Hadamard(alpha, mask), stacked);
    std::vector<Tensor> parts;
    for (size_t i = 0; i < 3; ++i) {
      Tensor a_i = RowAsColumn(attended, i);
      parts.push_back(SumAll(Hadamard(a_i, a_i)));
    }
    return AddN(parts);
  });
}

}  // namespace
}  // namespace deeprest
