#include "src/nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/ops.h"
#include "src/nn/rng.h"

namespace deeprest {
namespace {

TEST(SgdTest, ConvergesOnQuadratic) {
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(1, 1, 10.0f));
  SgdOptimizer opt(store, 0.1f);
  const Matrix target = Matrix::Column({2.0f});
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Tensor loss = SquaredError(p, target);
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(p.value().At(0, 0), 2.0f, 1e-3f);
}

TEST(SgdTest, SingleStepMatchesHandComputation) {
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(1, 1, 4.0f));
  SgdOptimizer opt(store, 0.5f);
  opt.ZeroGrad();
  Tensor loss = SquaredError(p, Matrix::Column({0.0f}));  // grad = p = 4
  loss.Backward();
  opt.Step();
  EXPECT_FLOAT_EQ(p.value().At(0, 0), 4.0f - 0.5f * 4.0f);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  // With momentum the second step applies velocity = m*v + g.
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(1, 1, 1.0f));
  SgdOptimizer opt(store, 0.1f, 0.9f);
  const Matrix target = Matrix::Column({0.0f});
  opt.ZeroGrad();
  SquaredError(p, target).Backward();  // grad = 1
  opt.Step();                          // v=1, p = 1 - 0.1 = 0.9
  EXPECT_NEAR(p.value().At(0, 0), 0.9f, 1e-6f);
  opt.ZeroGrad();
  SquaredError(p, target).Backward();  // grad = 0.9
  opt.Step();                          // v = 0.9*1 + 0.9 = 1.8, p = 0.9 - 0.18
  EXPECT_NEAR(p.value().At(0, 0), 0.72f, 1e-6f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(1, 1, 10.0f));
  AdamOptimizer opt(store, 0.1f);
  const Matrix target = Matrix::Column({-3.0f});
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    SquaredError(p, target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(p.value().At(0, 0), -3.0f, 1e-2f);
}

TEST(AdamTest, FirstStepSizeIsLearningRate) {
  // Adam's bias correction makes the first update ~= lr * sign(grad).
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(1, 1, 1.0f));
  AdamOptimizer opt(store, 0.01f);
  opt.ZeroGrad();
  SquaredError(p, Matrix::Column({0.0f})).Backward();
  opt.Step();
  EXPECT_NEAR(p.value().At(0, 0), 1.0f - 0.01f, 1e-4f);
}

TEST(AdamTest, HandlesMultipleParameters) {
  ParameterStore store;
  Tensor a = store.Create("a", Matrix(1, 1, 5.0f));
  Tensor b = store.Create("b", Matrix(1, 1, -5.0f));
  AdamOptimizer opt(store, 0.05f);
  for (int i = 0; i < 600; ++i) {
    opt.ZeroGrad();
    Tensor loss = Add(SquaredError(a, Matrix::Column({1.0f})),
                      SquaredError(b, Matrix::Column({2.0f})));
    loss.Backward();
    opt.Step();
  }
  EXPECT_NEAR(a.value().At(0, 0), 1.0f, 5e-2f);
  EXPECT_NEAR(b.value().At(0, 0), 2.0f, 5e-2f);
}

TEST(ClipGradNormTest, NoOpBelowThreshold) {
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(1, 1, 0.0f));
  p.node()->EnsureGrad();
  p.mutable_grad().At(0, 0) = 0.5f;
  const float norm = ClipGradNorm(store, 1.0f);
  EXPECT_FLOAT_EQ(norm, 0.5f);
  EXPECT_FLOAT_EQ(p.grad().At(0, 0), 0.5f);
}

TEST(ClipGradNormTest, RescalesAboveThreshold) {
  ParameterStore store;
  Tensor a = store.Create("a", Matrix(1, 1, 0.0f));
  Tensor b = store.Create("b", Matrix(1, 1, 0.0f));
  a.node()->EnsureGrad();
  b.node()->EnsureGrad();
  a.mutable_grad().At(0, 0) = 3.0f;
  b.mutable_grad().At(0, 0) = 4.0f;  // norm 5
  const float norm = ClipGradNorm(store, 1.0f);
  EXPECT_FLOAT_EQ(norm, 5.0f);
  EXPECT_NEAR(a.grad().At(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(b.grad().At(0, 0), 0.8f, 1e-6f);
  // Post-clip norm is the threshold.
  EXPECT_NEAR(std::hypot(a.grad().At(0, 0), b.grad().At(0, 0)), 1.0f, 1e-5f);
}

TEST(ClipGradNormTest, ZeroGradientsStayZero) {
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(2, 2));
  const float norm = ClipGradNorm(store, 1.0f);
  EXPECT_FLOAT_EQ(norm, 0.0f);
}

}  // namespace
}  // namespace deeprest
