#include "src/nn/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/rng.h"

namespace deeprest {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  std::vector<double> m = {3.0, 0.0, 0.0, 1.0};
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen(m, 2, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-9);
  EXPECT_NEAR(values[1], 1.0, 1e-9);
  // First eigenvector aligned with axis 0.
  EXPECT_NEAR(std::fabs(vectors[0][0]), 1.0, 1e-9);
  EXPECT_NEAR(vectors[0][1], 0.0, 1e-9);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  std::vector<double> m = {2.0, 1.0, 1.0, 2.0};
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen(m, 2, values, vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-9);
  EXPECT_NEAR(values[1], 1.0, 1e-9);
  // Eigenvector for 3 is (1,1)/sqrt(2).
  EXPECT_NEAR(std::fabs(vectors[0][0]), std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(std::fabs(vectors[0][1]), std::sqrt(0.5), 1e-9);
}

TEST(SymmetricEigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(1);
  const size_t n = 6;
  // Random symmetric matrix.
  std::vector<double> m(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Uniform(-1.0, 1.0);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen(m, n, values, vectors);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a; b < n; ++b) {
      double dot = 0.0;
      for (size_t k = 0; k < n; ++k) {
        dot += vectors[a][k] * vectors[b][k];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SymmetricEigenTest, EigenvaluesSorted) {
  Rng rng(2);
  const size_t n = 5;
  std::vector<double> m(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double v = rng.Uniform(-2.0, 2.0);
      m[i * n + j] = v;
      m[j * n + i] = v;
    }
  }
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen(m, n, values, vectors);
  for (size_t i = 1; i < n; ++i) {
    EXPECT_GE(values[i - 1], values[i]);
  }
}

TEST(PcaTest, EmptyInput) {
  PcaResult r = ComputePca({}, 2);
  EXPECT_TRUE(r.projections.empty());
}

TEST(PcaTest, LineInTwoDimensions) {
  // Points along y = 2x: first PC captures ~all variance.
  std::vector<std::vector<float>> samples;
  for (int i = -5; i <= 5; ++i) {
    samples.push_back({static_cast<float>(i), static_cast<float>(2 * i)});
  }
  PcaResult r = ComputePca(samples, 2);
  ASSERT_EQ(r.projections.size(), samples.size());
  EXPECT_GT(r.explained_variance_ratio[0], 0.999f);
  EXPECT_LT(r.explained_variance_ratio[1], 1e-3f);
}

TEST(PcaTest, ProjectionsPreservePairwiseOrderOnLine) {
  std::vector<std::vector<float>> samples;
  for (int i = 0; i < 8; ++i) {
    samples.push_back({static_cast<float>(i), static_cast<float>(i)});
  }
  PcaResult r = ComputePca(samples, 1);
  // First component is monotonic along the line (either direction).
  bool increasing = r.projections[1][0] > r.projections[0][0];
  for (size_t i = 1; i < samples.size(); ++i) {
    if (increasing) {
      EXPECT_GT(r.projections[i][0], r.projections[i - 1][0]);
    } else {
      EXPECT_LT(r.projections[i][0], r.projections[i - 1][0]);
    }
  }
}

TEST(PcaTest, HighDimensionalSeparatesClusters) {
  // Two clusters in 1000-d space (D >> N exercises the Gram trick).
  Rng rng(3);
  std::vector<std::vector<float>> samples;
  const size_t d = 1000;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 5; ++i) {
      std::vector<float> row(d);
      for (size_t j = 0; j < d; ++j) {
        row[j] = static_cast<float>(rng.Gaussian(c * 10.0, 0.5));
      }
      samples.push_back(row);
    }
  }
  PcaResult r = ComputePca(samples, 2);
  // Cluster 0 and cluster 1 are separated along PC1.
  float min0 = 1e9f;
  float max0 = -1e9f;
  float min1 = 1e9f;
  float max1 = -1e9f;
  for (int i = 0; i < 5; ++i) {
    min0 = std::min(min0, r.projections[i][0]);
    max0 = std::max(max0, r.projections[i][0]);
    min1 = std::min(min1, r.projections[5 + i][0]);
    max1 = std::max(max1, r.projections[5 + i][0]);
  }
  EXPECT_TRUE(max0 < min1 || max1 < min0);
}

TEST(PcaTest, ComponentsClampedToSampleCount) {
  std::vector<std::vector<float>> samples = {{1, 2, 3}, {4, 5, 6}};
  PcaResult r = ComputePca(samples, 10);
  EXPECT_EQ(r.projections[0].size(), 2u);
}

TEST(PcaTest, ExplainedVarianceSumsToAtMostOne) {
  Rng rng(4);
  std::vector<std::vector<float>> samples;
  for (int i = 0; i < 6; ++i) {
    std::vector<float> row(4);
    for (auto& v : row) {
      v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    samples.push_back(row);
  }
  PcaResult r = ComputePca(samples, 4);
  float total = 0.0f;
  for (float f : r.explained_variance_ratio) {
    EXPECT_GE(f, 0.0f);
    total += f;
  }
  EXPECT_LE(total, 1.0f + 1e-4f);
}

}  // namespace
}  // namespace deeprest
