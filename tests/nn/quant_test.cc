// Reduced-precision building blocks (src/nn/quant.h): fp16 conversion
// correctness down to the rounding mode, per-row int8 quantization error
// bounds, the quantized GEMM against an analytic error envelope, and the
// fp16 (v2) checkpoint format.
//
// The END-TO-END accuracy budget (quantile-loss delta of a quantized model
// vs its fp32 twin) lives in tests/core/quantized_inference_test.cc; these
// tests pin the pieces it is built from.
#include "src/nn/quant.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <sstream>

#include <gtest/gtest.h>

#include "src/nn/matrix.h"
#include "src/nn/rng.h"
#include "src/nn/serialize.h"

namespace deeprest {
namespace {

// ---- fp16 scalar conversions ----

TEST(QuantTest, HalfRoundTripsEveryEncodableValue) {
  // binary16 has only 65536 bit patterns: test ALL of them. Every non-NaN
  // half widens to float and narrows back to the identical bits (including
  // -0, subnormals, and both infinities); NaN narrows to some NaN.
  for (uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const float f = HalfToFloat(h);
    const uint16_t back = FloatToHalf(f);
    const bool is_nan = (h & 0x7C00) == 0x7C00 && (h & 0x03FF) != 0;
    if (is_nan) {
      EXPECT_TRUE((back & 0x7C00) == 0x7C00 && (back & 0x03FF) != 0)
          << "bits 0x" << std::hex << bits;
    } else {
      EXPECT_EQ(back, h) << "bits 0x" << std::hex << bits;
    }
  }
}

TEST(QuantTest, FloatToHalfRoundsToNearestEven) {
  // Halves near 1.0 step by 2^-10; exact ties must round to the even
  // significand in both directions.
  const float tie_down = 1.0f + 0.00048828125f;      // 1 + 2^-11: tie -> 0x3C00
  const float tie_up = 1.0f + 3.0f * 0.00048828125f; // 1 + 3*2^-11: tie -> 0x3C02
  EXPECT_EQ(FloatToHalf(tie_down), 0x3C00);
  EXPECT_EQ(FloatToHalf(tie_up), 0x3C02);
  // Just past the tie rounds up/down normally.
  EXPECT_EQ(FloatToHalf(1.0f + 0.0005f), 0x3C01);
  EXPECT_EQ(FloatToHalf(1.0f + 0.0004f), 0x3C00);
}

TEST(QuantTest, FloatToHalfSaturatesAndHandlesTinyValues) {
  EXPECT_EQ(FloatToHalf(65504.0f), 0x7BFF);   // largest finite half
  EXPECT_EQ(FloatToHalf(1.0e6f), 0x7C00);     // overflow -> +inf
  EXPECT_EQ(FloatToHalf(-1.0e6f), 0xFC00);    // overflow -> -inf
  EXPECT_EQ(FloatToHalf(65520.0f), 0x7C00);   // tie at the overflow boundary
  const float min_subnormal = 5.9604644775390625e-8f;  // 2^-24
  EXPECT_EQ(FloatToHalf(min_subnormal), 0x0001);
  EXPECT_EQ(FloatToHalf(min_subnormal * 0.5f), 0x0000);  // 2^-25 ties to even 0
  EXPECT_EQ(FloatToHalf(min_subnormal * 0.6f), 0x0001);  // past the tie
  EXPECT_EQ(HalfToFloat(0x0001), min_subnormal);
  EXPECT_EQ(FloatToHalf(-0.0f), 0x8000);
  EXPECT_EQ(HalfToFloat(0x8000), -0.0f);
  EXPECT_TRUE(std::isinf(HalfToFloat(0x7C00)));
  EXPECT_TRUE(std::isnan(HalfToFloat(0x7E00)));
}

TEST(QuantTest, RoundMatrixToHalfIsIdempotentAndBounded) {
  Rng rng(401);
  Matrix m(9, 13);
  m.FillUniform(rng, 2.0f);
  Matrix original = m;
  RoundMatrixToHalf(m);
  for (size_t i = 0; i < m.size(); ++i) {
    // binary16 carries 11 significand bits: relative error <= 2^-11.
    EXPECT_LE(std::fabs(m[i] - original[i]),
              std::fabs(original[i]) * 0.00048828125f + 1e-8f)
        << "element " << i;
  }
  Matrix once = m;
  RoundMatrixToHalf(m);  // already half-exact: must be a no-op
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m[i], once[i]) << "element " << i;
  }
}

TEST(QuantTest, ToHalfFromHalfRoundTripsHalfExactValues) {
  Rng rng(402);
  Matrix m(5, 7);
  m.FillUniform(rng, 1.0f);
  RoundMatrixToHalf(m);  // make every entry exactly representable
  const HalfMatrix h = ToHalf(m);
  EXPECT_EQ(h.rows, m.rows());
  EXPECT_EQ(h.cols, m.cols());
  const Matrix back = FromHalf(h);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(back[i], m[i]) << "element " << i;
  }
}

// ---- int8 per-row quantization ----

TEST(QuantTest, QuantizeRowwiseErrorWithinHalfLsbPerEntry) {
  Rng rng(403);
  Matrix m(17, 23);
  m.FillUniform(rng, 3.0f);
  const QuantizedMatrix q = QuantizeRowwise(m);
  ASSERT_EQ(q.rows, m.rows());
  ASSERT_EQ(q.cols, m.cols());
  ASSERT_EQ(q.scales.size(), m.rows());
  const Matrix deq = Dequantize(q);
  for (size_t r = 0; r < m.rows(); ++r) {
    float row_max = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) {
      row_max = std::max(row_max, std::fabs(m[r * m.cols() + c]));
    }
    EXPECT_NEAR(q.scales[r], row_max / 127.0f, row_max * 1e-6f) << "row " << r;
    for (size_t c = 0; c < m.cols(); ++c) {
      // Symmetric round-to-nearest: at most half an LSB of error per entry.
      EXPECT_LE(std::fabs(deq[r * m.cols() + c] - m[r * m.cols() + c]),
                0.5f * q.scales[r] * (1.0f + 1e-5f))
          << "entry " << r << "," << c;
    }
  }
}

TEST(QuantTest, QuantizeRowwiseZeroRowGetsUnitScale) {
  Matrix m(2, 4);  // zero-initialized
  m[4 + 1] = 0.5f;  // second row non-zero
  const QuantizedMatrix q = QuantizeRowwise(m);
  EXPECT_EQ(q.scales[0], 1.0f);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(q.data[c], 0);
  }
  EXPECT_GT(q.scales[1], 0.0f);
  const Matrix deq = Dequantize(q);
  EXPECT_NEAR(deq[4 + 1], 0.5f, 0.5f * q.scales[1]);
}

TEST(QuantTest, QuantizedMatMulWithinAnalyticErrorEnvelope) {
  // out ~= dequant(w) @ x. The weight error is already inside dequant(w)
  // (exactly recoverable via Dequantize), so the remaining error per output
  // element comes from activation quantization only:
  //   |out[i,b] - (dequant(w) @ x)[i,b]| <= 0.5 * xscale_b * sum_c|wq[i,c]|
  // with xscale_b = max_c|x[c,b]| / 127.
  Rng rng(404);
  for (const auto& dims : {std::array<size_t, 3>{7, 33, 5},
                           std::array<size_t, 3>{16, 8, 1},
                           std::array<size_t, 3>{1, 100, 4}}) {
    const size_t n = dims[0], k = dims[1], m = dims[2];
    Matrix w(n, k), x(k, m);
    w.FillUniform(rng, 1.5f);
    x.FillUniform(rng, 2.0f);
    const QuantizedMatrix q = QuantizeRowwise(w);
    const Matrix wq = Dequantize(q);
    Matrix fp32;
    MatMulInto(wq, x, fp32);
    QuantScratch scratch;
    Matrix out;
    QuantizedMatMul(q, x, out, scratch);
    ASSERT_EQ(out.rows(), n);
    ASSERT_EQ(out.cols(), m);
    for (size_t b = 0; b < m; ++b) {
      float col_max = 0.0f;
      for (size_t c = 0; c < k; ++c) {
        col_max = std::max(col_max, std::fabs(x[c * m + b]));
      }
      const float xscale = col_max / 127.0f;
      for (size_t i = 0; i < n; ++i) {
        float w_mass = 0.0f;
        for (size_t c = 0; c < k; ++c) {
          w_mass += std::fabs(wq[i * k + c]);
        }
        const float bound = 0.5f * xscale * w_mass * 1.01f + 1e-5f;
        EXPECT_LE(std::fabs(out[i * m + b] - fp32[i * m + b]), bound)
            << n << "x" << k << "x" << m << " element " << i << "," << b;
      }
    }
  }
}

TEST(QuantTest, WeightViewDispatchesToBothPrecisions) {
  Rng rng(405);
  Matrix w(6, 11), x(11, 3);
  w.FillUniform(rng, 1.0f);
  x.FillUniform(rng, 1.0f);
  const QuantizedMatrix q = QuantizeRowwise(w);
  QuantScratch scratch;

  const WeightView fp_view = w;  // implicit conversion — the call-site idiom
  ASSERT_TRUE(fp_view.valid());
  EXPECT_FALSE(fp_view.quantized());
  EXPECT_EQ(fp_view.rows(), w.rows());
  Matrix via_view, direct;
  WeightMatMul(fp_view, x, via_view, scratch);
  MatMulInto(w, x, direct);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_view[i], direct[i]) << "fp32 element " << i;
  }

  const WeightView q_view = q;
  ASSERT_TRUE(q_view.valid());
  EXPECT_TRUE(q_view.quantized());
  Matrix via_q, direct_q;
  WeightMatMul(q_view, x, via_q, scratch);
  QuantizedMatMul(q, x, direct_q, scratch);
  for (size_t i = 0; i < direct_q.size(); ++i) {
    EXPECT_EQ(via_q[i], direct_q[i]) << "int8 element " << i;
  }

  const WeightView absent;  // default: "no skip connection"
  EXPECT_FALSE(absent.valid());
}

// ---- fp16 checkpoint format (v2) ----

ParameterStore MakeStore(uint64_t seed) {
  ParameterStore store;
  Rng rng(seed);
  Matrix a(3, 4);
  a.FillUniform(rng, 1.0f);
  Matrix b(2, 1);
  b.FillUniform(rng, 1.0f);
  store.Create("layer.W", a);
  store.Create("layer.b", b);
  return store;
}

TEST(QuantTest, Fp16CheckpointRoundTripsWithinHalfPrecision) {
  ParameterStore source = MakeStore(11);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParametersFp16(source, buffer));

  ParameterStore dest = MakeStore(12);
  ASSERT_TRUE(LoadParameters(dest, buffer));
  for (size_t e = 0; e < source.entries().size(); ++e) {
    const Matrix& src = source.entries()[e].tensor.value();
    const Matrix& got = dest.entries()[e].tensor.value();
    ASSERT_TRUE(src.SameShape(got));
    for (size_t i = 0; i < src.size(); ++i) {
      // Loaded value is exactly the half-rounded source value.
      EXPECT_EQ(got[i], HalfToFloat(FloatToHalf(src[i]))) << "element " << i;
    }
  }
}

TEST(QuantTest, Fp16CheckpointIsExactForHalfRoundedModels) {
  // The ModelRegistry fp16 storage policy rounds parameters in place, so a
  // v2 checkpoint of such a model round-trips BIT-EXACTLY.
  ParameterStore source = MakeStore(13);
  for (auto& entry : source.entries()) {
    RoundMatrixToHalf(entry.tensor.mutable_value());
  }
  std::stringstream buffer;
  ASSERT_TRUE(SaveParametersFp16(source, buffer));
  ParameterStore dest = MakeStore(14);
  ASSERT_TRUE(LoadParameters(dest, buffer));
  for (size_t e = 0; e < source.entries().size(); ++e) {
    EXPECT_EQ(source.entries()[e].tensor.value(), dest.entries()[e].tensor.value());
  }
}

TEST(QuantTest, Fp16CheckpointIsSmallerThanFp32) {
  ParameterStore store = MakeStore(15);
  std::stringstream v1, v2;
  ASSERT_TRUE(SaveParameters(store, v1));
  ASSERT_TRUE(SaveParametersFp16(store, v2));
  EXPECT_LT(v2.str().size(), v1.str().size());
}

TEST(QuantTest, V1CheckpointsStillLoad) {
  // Format compat: the fp32 writer and its reader are untouched by v2.
  ParameterStore source = MakeStore(16);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(source, buffer));
  ParameterStore dest = MakeStore(17);
  ASSERT_TRUE(LoadParameters(dest, buffer));
  for (size_t e = 0; e < source.entries().size(); ++e) {
    EXPECT_EQ(source.entries()[e].tensor.value(), dest.entries()[e].tensor.value());
  }
}

}  // namespace
}  // namespace deeprest
