#include "src/nn/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace deeprest {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.5, 2.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 2.25);
  }
}

TEST(RngTest, UniformMeanApproximatesMidpoint) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform(0.0, 10.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, NextBelowStaysBelow) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.NextBelow(8)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // Roughly uniform: expectation is 1000 each.
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(6);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, GaussianScalesMeanAndStddev) {
  Rng rng(7);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sum_sq += (v - 10.0) * (v - 10.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanMatchesLambdaSmall) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextPoisson(4.5);
  }
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLambdaLarge) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextPoisson(200.0);
  }
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextPoisson(0.0), 0);
    EXPECT_EQ(rng.NextPoisson(-1.0), 0);
  }
}

TEST(RngTest, SplitProducesIndependentStreams) {
  Rng parent(12);
  Rng child_a = parent.Split();
  Rng child_b = parent.Split();
  // Children have distinct streams from each other and the parent.
  EXPECT_NE(child_a.NextU64(), child_b.NextU64());

  // Splitting is deterministic: the first split of an identically-seeded
  // parent yields an identical stream.
  Rng parent2(12);
  Rng child_a2 = parent2.Split();
  Rng parent3(12);
  Rng child_a3 = parent3.Split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child_a2.NextU64(), child_a3.NextU64());
  }
}

}  // namespace
}  // namespace deeprest
