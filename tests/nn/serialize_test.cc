#include "src/nn/serialize.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "src/nn/rng.h"

namespace deeprest {
namespace {

ParameterStore MakeStore(uint64_t seed) {
  ParameterStore store;
  Rng rng(seed);
  Matrix a(3, 4);
  a.FillUniform(rng, 1.0f);
  Matrix b(2, 1);
  b.FillUniform(rng, 1.0f);
  store.Create("layer.W", a);
  store.Create("layer.b", b);
  return store;
}

TEST(SerializeTest, RoundTripRestoresValues) {
  ParameterStore source = MakeStore(1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(source, buffer));

  ParameterStore dest = MakeStore(2);  // Different values, same shapes.
  ASSERT_TRUE(LoadParameters(dest, buffer));
  for (size_t i = 0; i < source.entries().size(); ++i) {
    EXPECT_EQ(source.entries()[i].tensor.value(), dest.entries()[i].tensor.value());
  }
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "not a model file";
  ParameterStore store = MakeStore(1);
  EXPECT_FALSE(LoadParameters(store, buffer));
}

TEST(SerializeTest, RejectsShapeMismatch) {
  ParameterStore source = MakeStore(1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(source, buffer));

  ParameterStore dest;
  dest.Create("layer.W", Matrix(4, 3));  // Transposed shape.
  dest.Create("layer.b", Matrix(2, 1));
  EXPECT_FALSE(LoadParameters(dest, buffer));
}

TEST(SerializeTest, RejectsMissingParameter) {
  ParameterStore source = MakeStore(1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(source, buffer));

  ParameterStore dest;
  dest.Create("layer.W", Matrix(3, 4));
  dest.Create("other.q", Matrix(2, 1));
  EXPECT_FALSE(LoadParameters(dest, buffer));
}

TEST(SerializeTest, IgnoresExtraStreamEntries) {
  ParameterStore source = MakeStore(1);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(source, buffer));

  ParameterStore dest;
  dest.Create("layer.b", Matrix(2, 1));  // Subset of what was saved.
  EXPECT_TRUE(LoadParameters(dest, buffer));
  EXPECT_EQ(dest.entries()[0].tensor.value(), source.entries()[1].tensor.value());
}

TEST(SerializeTest, SerializedSizeMatchesStream) {
  ParameterStore source = MakeStore(3);
  std::stringstream buffer;
  ASSERT_TRUE(SaveParameters(source, buffer));
  EXPECT_EQ(buffer.str().size(), SerializedSize(source));
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/deeprest_params.bin";
  ParameterStore source = MakeStore(4);
  ASSERT_TRUE(SaveParametersToFile(source, path));
  ParameterStore dest = MakeStore(5);
  ASSERT_TRUE(LoadParametersFromFile(dest, path));
  for (size_t i = 0; i < source.entries().size(); ++i) {
    EXPECT_EQ(source.entries()[i].tensor.value(), dest.entries()[i].tensor.value());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadFromMissingFileFails) {
  ParameterStore store = MakeStore(1);
  EXPECT_FALSE(LoadParametersFromFile(store, "/nonexistent/deeprest.bin"));
}

}  // namespace
}  // namespace deeprest
