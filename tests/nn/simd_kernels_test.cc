// SIMD kernel contract tests, per ISA rung.
//
// The dispatch layer (src/nn/simd/dispatch.h) promises two tiers of numeric
// fidelity, and these tests pin both on EVERY rung the host can execute:
//
//   * BIT-IDENTICAL to the tiled kernels: the mat-mat MatMul path,
//     AccumulateATransposeB, and all element-wise kernels (Add, Axpby,
//     Hadamard, GruBlend) keep each output element's reduction in ascending-k
//     order with one rounding per multiply and per add — vector width changes
//     which elements compute together, never how one element rounds.
//   * ULP-BOUNDED: the m == 1 GEMV path and AccumulateABTranspose
//     reassociate across lanes, so they are compared against an exact
//     double-precision oracle under the standard reassociation bound
//     |simd - exact| <= (k + 8) * eps * sum|terms|.
//
// kScalar is held to the stricter standard everywhere — it is bit-identical
// to kTiled on ALL paths including GEMV and AccumulateABTranspose, which is
// the property the ci.sh simd-off leg (DEEPREST_SIMD=scalar) relies on.
//
// Also here: the KernelMode round-trip property, ForceIsa ladder clamping,
// SelectIsaFromSpec parsing, and exactness of the int8 GEMM across rungs.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/matrix.h"
#include "src/nn/rng.h"
#include "src/nn/simd/dispatch.h"

namespace deeprest {
namespace {

const simd::Isa kAllIsas[] = {simd::Isa::kScalar, simd::Isa::kAvx2,
                              simd::Isa::kAvx512, simd::Isa::kNeon};

std::vector<simd::Isa> SupportedIsas() {
  std::vector<simd::Isa> out;
  for (simd::Isa isa : kAllIsas) {
    if (simd::IsaSupported(isa)) {
      out.push_back(isa);
    }
  }
  return out;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// a is (n x k), b is (k x m): covers 1x1, vector-lane remainders around the
// 8/16-wide loops, the 4-row GEMV blocks, and shapes larger than one AVX-512
// register on every axis.
struct Shape {
  size_t n, k, m;
};
const Shape kMatShapes[] = {{1, 1, 1},    {1, 7, 1},    {4, 8, 1},  {5, 9, 3},
                            {3, 33, 2},   {16, 256, 1}, {13, 13, 13},
                            {12, 12, 16}, {32, 17, 6},  {2, 1, 2},  {7, 64, 31},
                            {1, 100, 1},  {9, 40, 1}};

// Restores global dispatch state no matter how a test exits.
class SimdKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    simd::ResetIsa();
    SetKernelMode(KernelMode::kTiled);
  }
};

TEST_F(SimdKernelsTest, MatMatMatMulBitIdenticalToTiledOnEveryIsa) {
  Rng rng(301);
  for (const Shape& s : kMatShapes) {
    if (s.m == 1) {
      continue;  // GEMV path is ULP-bounded, tested below
    }
    Matrix a(s.n, s.k), b(s.k, s.m), tiled;
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    SetKernelMode(KernelMode::kTiled);
    MatMulInto(a, b, tiled);
    for (simd::Isa isa : SupportedIsas()) {
      ASSERT_EQ(simd::ForceIsa(isa), isa);
      Matrix out(s.n, s.m);
      simd::MatMul(a.data(), b.data(), out.data(), s.n, s.k, s.m);
      EXPECT_TRUE(BitIdentical(out, tiled))
          << simd::IsaName(isa) << " " << s.n << "x" << s.k << "*" << s.k << "x" << s.m;
    }
  }
}

TEST_F(SimdKernelsTest, GemvUlpBoundedOnEveryIsa) {
  Rng rng(302);
  for (const Shape& s : kMatShapes) {
    if (s.m != 1) {
      continue;
    }
    Matrix a(s.n, s.k), b(s.k, 1);
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    // Exact oracle in double; the float results may reassociate lanes.
    std::vector<double> exact(s.n, 0.0);
    std::vector<double> term_mass(s.n, 0.0);
    for (size_t i = 0; i < s.n; ++i) {
      for (size_t c = 0; c < s.k; ++c) {
        const double t = static_cast<double>(a[i * s.k + c]) * b[c];
        exact[i] += t;
        term_mass[i] += std::fabs(t);
      }
    }
    const double eps = 1.1920929e-7;  // 2^-23
    for (simd::Isa isa : SupportedIsas()) {
      ASSERT_EQ(simd::ForceIsa(isa), isa);
      Matrix out(s.n, 1);
      simd::MatMul(a.data(), b.data(), out.data(), s.n, s.k, 1);
      for (size_t i = 0; i < s.n; ++i) {
        const double bound = (static_cast<double>(s.k) + 8.0) * eps * term_mass[i] + 1e-12;
        EXPECT_LE(std::fabs(out[i] - exact[i]), bound)
            << simd::IsaName(isa) << " row " << i << " of " << s.n << "x" << s.k;
      }
    }
  }
}

TEST_F(SimdKernelsTest, AccumulateATransposeBBitIdenticalToTiledOnEveryIsa) {
  Rng rng(303);
  for (const Shape& s : kMatShapes) {
    // out(p x q) += a(n x p)^T * b(n x q): reuse the grid as n=k, p=n, q=m.
    const size_t n = s.k, p = s.n, q = s.m;
    Matrix a(n, p), b(n, q), seed(p, q);
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    seed.FillUniform(rng, 1.0f);
    Matrix tiled = seed;
    SetKernelMode(KernelMode::kTiled);
    AccumulateATransposeB(a, b, tiled);
    for (simd::Isa isa : SupportedIsas()) {
      ASSERT_EQ(simd::ForceIsa(isa), isa);
      Matrix out = seed;
      simd::AccumulateATransposeB(a.data(), b.data(), out.data(), n, p, q);
      EXPECT_TRUE(BitIdentical(out, tiled))
          << simd::IsaName(isa) << " n=" << n << " p=" << p << " q=" << q;
    }
  }
}

TEST_F(SimdKernelsTest, AccumulateABTransposeUlpBoundedOnEveryIsa) {
  Rng rng(304);
  for (const Shape& s : kMatShapes) {
    // out(n x m) += a(n x k') * b(m x k')^T with k' = reduction length.
    const size_t n = s.n, red = s.m == 1 ? s.k : s.m, m = s.k;
    Matrix a(n, red), b(m, red), seed(n, m);
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    seed.FillUniform(rng, 1.0f);
    std::vector<double> exact(n * m), term_mass(n * m);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < m; ++j) {
        double acc = seed[i * m + j];
        double mass = std::fabs(acc);
        for (size_t c = 0; c < red; ++c) {
          const double t = static_cast<double>(a[i * red + c]) * b[j * red + c];
          acc += t;
          mass += std::fabs(t);
        }
        exact[i * m + j] = acc;
        term_mass[i * m + j] = mass;
      }
    }
    const double eps = 1.1920929e-7;
    for (simd::Isa isa : SupportedIsas()) {
      ASSERT_EQ(simd::ForceIsa(isa), isa);
      Matrix out = seed;
      simd::AccumulateABTranspose(a.data(), b.data(), out.data(), n, red, m);
      for (size_t i = 0; i < out.size(); ++i) {
        const double bound = (static_cast<double>(red) + 8.0) * eps * term_mass[i] + 1e-12;
        EXPECT_LE(std::fabs(out[i] - exact[i]), bound)
            << simd::IsaName(isa) << " element " << i;
      }
    }
  }
}

// The portable fallback is bit-identical to kTiled on the REASSOCIATING
// paths too (GEMV, AccumulateABTranspose) — it re-states the tiled loops
// verbatim. The ci.sh simd-off leg (DEEPREST_SIMD=scalar) pins exactly this.
TEST_F(SimdKernelsTest, ScalarIsaBitIdenticalToTiledOnReassociatingPaths) {
  Rng rng(305);
  ASSERT_EQ(simd::ForceIsa(simd::Isa::kScalar), simd::Isa::kScalar);
  for (const Shape& s : kMatShapes) {
    Matrix a(s.n, s.k), b(s.k, 1), tiled;
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    SetKernelMode(KernelMode::kTiled);
    MatMulInto(a, b, tiled);
    Matrix out(s.n, 1);
    simd::MatMul(a.data(), b.data(), out.data(), s.n, s.k, 1);
    EXPECT_TRUE(BitIdentical(out, tiled)) << "gemv " << s.n << "x" << s.k;

    Matrix g(s.n, s.m), w(s.k, s.m), seed(s.n, s.k);
    g.FillUniform(rng, 1.0f);
    w.FillUniform(rng, 1.0f);
    seed.FillUniform(rng, 1.0f);
    Matrix tiled_acc = seed, scalar_acc = seed;
    AccumulateABTranspose(g, w, tiled_acc);
    simd::AccumulateABTranspose(g.data(), w.data(), scalar_acc.data(), s.n, s.m, s.k);
    EXPECT_TRUE(BitIdentical(scalar_acc, tiled_acc))
        << "accabt " << s.n << "x" << s.m << " * (" << s.k << "x" << s.m << ")^T";
  }
}

TEST_F(SimdKernelsTest, ElementwiseKernelsBitExactOnEveryIsa) {
  Rng rng(306);
  // Sizes straddling the 8- and 16-lane boundaries plus ragged tails.
  for (size_t n : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 100u, 1037u}) {
    Matrix a(1, n), b(1, n), c(1, n);
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    c.FillUniform(rng, 1.0f);
    const float scale = 0.37f;
    std::vector<float> add(n), axpby(n), had(n), blend(n);
    for (size_t i = 0; i < n; ++i) {
      add[i] = a[i] + b[i];
      axpby[i] = a[i] + scale * b[i];
      had[i] = a[i] * b[i];
      const float omz = -1.0f * a[i] + 1.0f;  // the documented GRU blend sequence
      blend[i] = a[i] * b[i] + omz * c[i];
    }
    for (simd::Isa isa : SupportedIsas()) {
      ASSERT_EQ(simd::ForceIsa(isa), isa);
      std::vector<float> out(n);
      simd::Add(a.data(), b.data(), out.data(), n);
      EXPECT_EQ(std::memcmp(out.data(), add.data(), n * sizeof(float)), 0)
          << simd::IsaName(isa) << " Add n=" << n;
      simd::Axpby(a.data(), b.data(), scale, out.data(), n);
      EXPECT_EQ(std::memcmp(out.data(), axpby.data(), n * sizeof(float)), 0)
          << simd::IsaName(isa) << " Axpby n=" << n;
      simd::Hadamard(a.data(), b.data(), out.data(), n);
      EXPECT_EQ(std::memcmp(out.data(), had.data(), n * sizeof(float)), 0)
          << simd::IsaName(isa) << " Hadamard n=" << n;
      simd::GruBlend(a.data(), b.data(), c.data(), out.data(), n);
      EXPECT_EQ(std::memcmp(out.data(), blend.data(), n * sizeof(float)), 0)
          << simd::IsaName(isa) << " GruBlend n=" << n;
    }
  }
}

TEST_F(SimdKernelsTest, AxpbyIsInPlaceSafe) {
  // BatchedAttention accumulates with out == a; lanes never overlap, so the
  // in-place call must match the out-of-place one bit-for-bit.
  Rng rng(307);
  for (simd::Isa isa : SupportedIsas()) {
    ASSERT_EQ(simd::ForceIsa(isa), isa);
    Matrix a(1, 100), b(1, 100);
    a.FillUniform(rng, 1.0f);
    b.FillUniform(rng, 1.0f);
    std::vector<float> separate(100);
    simd::Axpby(a.data(), b.data(), 0.5f, separate.data(), 100);
    simd::Axpby(a.data(), b.data(), 0.5f, a.data(), 100);  // in place
    EXPECT_EQ(std::memcmp(a.data(), separate.data(), 100 * sizeof(float)), 0)
        << simd::IsaName(isa);
  }
}

TEST_F(SimdKernelsTest, Int8MatMulExactAcrossIsas) {
  // int32 accumulation never rounds, so every rung must produce the same
  // result as a plain int64 scalar model of the kernel.
  Rng rng(308);
  for (const Shape& s : kMatShapes) {
    std::vector<int8_t> w8(s.n * s.k), x8(s.m * s.k);
    std::vector<float> wscale(s.n), xscale(s.m);
    for (auto& v : w8) {
      v = static_cast<int8_t>(rng.Uniform(-127.0, 128.0));
    }
    for (auto& v : x8) {
      v = static_cast<int8_t>(rng.Uniform(-127.0, 128.0));
    }
    for (auto& v : wscale) {
      v = static_cast<float>(rng.Uniform(0.001, 1.0));
    }
    for (auto& v : xscale) {
      v = static_cast<float>(rng.Uniform(0.001, 1.0));
    }
    std::vector<float> expected(s.n * s.m);
    for (size_t i = 0; i < s.n; ++i) {
      for (size_t b = 0; b < s.m; ++b) {
        int32_t acc = 0;
        for (size_t c = 0; c < s.k; ++c) {
          acc += static_cast<int32_t>(w8[i * s.k + c]) * x8[b * s.k + c];
        }
        // Matches the kernels' epilogue association exactly:
        // float(acc) * (wscale * xscale).
        expected[i * s.m + b] = static_cast<float>(acc) * (wscale[i] * xscale[b]);
      }
    }
    for (simd::Isa isa : SupportedIsas()) {
      ASSERT_EQ(simd::ForceIsa(isa), isa);
      std::vector<float> out(s.n * s.m);
      simd::Int8MatMul(w8.data(), wscale.data(), x8.data(), xscale.data(), out.data(),
                       s.n, s.k, s.m);
      for (size_t i = 0; i < out.size(); ++i) {
        // The int32 sum is exact; only the two scale multiplies round, and
        // they round identically on every rung.
        EXPECT_EQ(out[i], expected[i])
            << simd::IsaName(isa) << " element " << i << " shape " << s.n << "x"
            << s.k << "x" << s.m;
      }
    }
  }
}

// ---- mode / dispatch state machine ----

TEST_F(SimdKernelsTest, KernelModeRoundTripsAllModes) {
  for (KernelMode mode :
       {KernelMode::kReference, KernelMode::kSimd, KernelMode::kTiled}) {
    SetKernelMode(mode);
    EXPECT_EQ(GetKernelMode(), mode);
  }
  // And the setting is sticky across unrelated kernel invocations.
  SetKernelMode(KernelMode::kSimd);
  Rng rng(309);
  Matrix a(3, 5), b(5, 2), out;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  MatMulInto(a, b, out);
  EXPECT_EQ(GetKernelMode(), KernelMode::kSimd);
}

TEST_F(SimdKernelsTest, SimdModeRoutesMatMulThroughDispatch) {
  Rng rng(310);
  Matrix a(6, 9), b(9, 4), via_mode;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  SetKernelMode(KernelMode::kSimd);
  MatMulInto(a, b, via_mode);
  Matrix direct(6, 4);
  simd::MatMul(a.data(), b.data(), direct.data(), 6, 9, 4);
  EXPECT_TRUE(BitIdentical(via_mode, direct));
}

TEST_F(SimdKernelsTest, ForceIsaAlwaysLandsOnASupportedRung) {
  for (simd::Isa wanted : kAllIsas) {
    const simd::Isa got = simd::ForceIsa(wanted);
    EXPECT_TRUE(simd::IsaSupported(got)) << simd::IsaName(wanted);
    EXPECT_EQ(got, simd::ActiveIsa()) << simd::IsaName(wanted);
    if (simd::IsaSupported(wanted)) {
      EXPECT_EQ(got, wanted) << simd::IsaName(wanted);
    }
  }
  // kScalar is the ladder floor: it must always be grantable verbatim.
  EXPECT_EQ(simd::ForceIsa(simd::Isa::kScalar), simd::Isa::kScalar);
#if defined(__x86_64__) || defined(__i386__)
  // Cross-architecture request: NEON on x86 falls cleanly to the floor.
  EXPECT_EQ(simd::ForceIsa(simd::Isa::kNeon), simd::Isa::kScalar);
#endif
}

TEST_F(SimdKernelsTest, SelectIsaFromSpecParsesAndClamps) {
  EXPECT_TRUE(simd::SelectIsaFromSpec("scalar"));
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  EXPECT_TRUE(simd::SelectIsaFromSpec("auto"));
  EXPECT_EQ(simd::ActiveIsa(), simd::BestSupportedIsa());
  // Named rungs clamp down the ladder rather than failing.
  EXPECT_TRUE(simd::SelectIsaFromSpec("avx512"));
  EXPECT_TRUE(simd::IsaSupported(simd::ActiveIsa()));
  // Unknown specs leave the selection untouched.
  const simd::Isa before = simd::ActiveIsa();
  EXPECT_FALSE(simd::SelectIsaFromSpec("quantum"));
  EXPECT_EQ(simd::ActiveIsa(), before);
  EXPECT_FALSE(simd::SelectIsaFromSpec(""));
  EXPECT_EQ(simd::ActiveIsa(), before);
}

TEST_F(SimdKernelsTest, ResetIsaReturnsToDefault) {
  simd::ForceIsa(simd::Isa::kScalar);
  ASSERT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  simd::ResetIsa();
  // No DEEPREST_SIMD in the test environment -> best supported rung. (When
  // CI sets DEEPREST_SIMD=scalar, best == scalar is exactly what it pins.)
  const char* env = std::getenv("DEEPREST_SIMD");
  if (env == nullptr || std::string(env) == "auto") {
    EXPECT_EQ(simd::ActiveIsa(), simd::BestSupportedIsa());
  } else {
    EXPECT_TRUE(simd::IsaSupported(simd::ActiveIsa()));
  }
}

}  // namespace
}  // namespace deeprest
