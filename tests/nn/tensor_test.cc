#include "src/nn/tensor.h"

#include <gtest/gtest.h>

#include "src/nn/ops.h"

namespace deeprest {
namespace {

TEST(TensorTest, UndefinedByDefault) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(TensorTest, ConstantDoesNotRequireGrad) {
  Tensor t = Tensor::Constant(Matrix(2, 2, 1.0f));
  EXPECT_TRUE(t.defined());
  EXPECT_FALSE(t.requires_grad());
}

TEST(TensorTest, ParameterRequiresGrad) {
  Tensor t = Tensor::Parameter(Matrix(2, 2, 1.0f));
  EXPECT_TRUE(t.requires_grad());
}

TEST(TensorTest, OpWithOnlyConstantsDoesNotTrack) {
  Tensor a = Tensor::Constant(Matrix(1, 1, 1.0f));
  Tensor b = Tensor::Constant(Matrix(1, 1, 2.0f));
  Tensor c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_FLOAT_EQ(c.scalar(), 3.0f);
}

TEST(TensorTest, OpWithParameterTracks) {
  Tensor a = Tensor::Parameter(Matrix(1, 1, 1.0f));
  Tensor b = Tensor::Constant(Matrix(1, 1, 2.0f));
  EXPECT_TRUE(Add(a, b).requires_grad());
}

TEST(TensorTest, BackwardSimpleAdd) {
  Tensor a = Tensor::Parameter(Matrix(1, 1, 3.0f));
  Tensor b = Tensor::Parameter(Matrix(1, 1, 4.0f));
  Tensor loss = Add(a, b);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.grad().At(0, 0), 1.0f);
}

TEST(TensorTest, BackwardDiamondGraphAccumulates) {
  // loss = (a + a) -> d(loss)/da = 2.
  Tensor a = Tensor::Parameter(Matrix(1, 1, 5.0f));
  Tensor loss = Add(a, a);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().At(0, 0), 2.0f);
}

TEST(TensorTest, BackwardSharedSubexpression) {
  // b = a*a; loss = b + b -> dloss/da = 2 * 2a = 4a.
  Tensor a = Tensor::Parameter(Matrix(1, 1, 3.0f));
  Tensor b = Hadamard(a, a);
  Tensor loss = Add(b, b);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().At(0, 0), 12.0f);
}

TEST(TensorTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor a = Tensor::Parameter(Matrix(1, 1, 1.0f));
  Tensor loss = Add(a, a);
  loss.Backward();
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().At(0, 0), 4.0f);
}

TEST(TensorTest, DetachBlocksGradient) {
  Tensor a = Tensor::Parameter(Matrix(1, 1, 2.0f));
  Tensor b = Hadamard(a, a);
  Tensor detached = b.Detach();
  EXPECT_FALSE(detached.requires_grad());
  EXPECT_FLOAT_EQ(detached.value().At(0, 0), 4.0f);
}

TEST(TensorTest, DeepChainDoesNotOverflowStack) {
  // 50k-node chain; a recursive backward would overflow the stack.
  Tensor x = Tensor::Parameter(Matrix(1, 1, 1.0f));
  Tensor y = x;
  for (int i = 0; i < 50000; ++i) {
    y = Affine(y, 1.0f, 0.0f);
  }
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().At(0, 0), 1.0f);
}

TEST(TensorTest, ScalarRequiresOneByOne) {
  Tensor t = Tensor::Constant(Matrix(1, 1, 9.0f));
  EXPECT_FLOAT_EQ(t.scalar(), 9.0f);
}

TEST(TensorTest, NodeCounterIncreases) {
  const uint64_t before = TensorNodesCreated();
  Tensor::Constant(Matrix(1, 1));
  EXPECT_GT(TensorNodesCreated(), before);
}

TEST(TensorTest, NoGradGuardDisablesTracking) {
  Tensor a = Tensor::Parameter(Matrix(1, 1, 2.0f));
  {
    NoGradGuard guard;
    Tensor b = Hadamard(a, a);
    EXPECT_FALSE(b.requires_grad());
    EXPECT_FLOAT_EQ(b.scalar(), 4.0f);
  }
  // Tracking resumes after the guard is destroyed.
  Tensor c = Hadamard(a, a);
  EXPECT_TRUE(c.requires_grad());
}

TEST(TensorTest, NoGradGuardNests) {
  Tensor a = Tensor::Parameter(Matrix(1, 1, 2.0f));
  {
    NoGradGuard outer;
    {
      NoGradGuard inner;
      EXPECT_FALSE(NoGradGuard::GradEnabled());
    }
    EXPECT_FALSE(NoGradGuard::GradEnabled());
    EXPECT_FALSE(Hadamard(a, a).requires_grad());
  }
  EXPECT_TRUE(NoGradGuard::GradEnabled());
}

TEST(TensorTest, BackwardTwiceOnSameGraphResetsVisitedFlags) {
  // If visited flags were not reset, the second Backward would no-op.
  Tensor a = Tensor::Parameter(Matrix(1, 1, 1.0f));
  Tensor b = Tensor::Parameter(Matrix(1, 1, 2.0f));
  Tensor loss = Hadamard(a, b);
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().At(0, 0), 2.0f);
  a.mutable_grad().Zero();
  b.mutable_grad().Zero();
  loss.Backward();
  EXPECT_FLOAT_EQ(a.grad().At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(b.grad().At(0, 0), 1.0f);
}

}  // namespace
}  // namespace deeprest
