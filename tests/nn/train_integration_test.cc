// End-to-end learning sanity checks: small recurrent models trained with the
// same machinery the DeepRest estimator uses must actually fit simple
// sequence-to-sequence tasks. These protect against subtle autograd bugs that
// per-op gradient checks can miss (e.g. hidden-state wiring across steps).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/rng.h"

namespace deeprest {
namespace {

TEST(TrainIntegrationTest, GruLearnsRunningMean) {
  // Target: exponential moving average of a scalar input stream.
  ParameterStore store;
  Rng rng(1);
  GruCell cell(store, "gru", 1, 8, rng);
  Linear head(store, "head", 8, 1, rng);
  AdamOptimizer opt(store, 0.02f);

  const int kSteps = 30;
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> targets;
  Rng data_rng(2);
  for (int s = 0; s < 8; ++s) {
    std::vector<float> xs;
    std::vector<float> ys;
    float ema = 0.0f;
    for (int t = 0; t < kSteps; ++t) {
      const float x = static_cast<float>(data_rng.Uniform(0.0, 1.0));
      ema = 0.8f * ema + 0.2f * x;
      xs.push_back(x);
      ys.push_back(ema);
    }
    inputs.push_back(xs);
    targets.push_back(ys);
  }

  auto epoch_loss = [&]() {
    float total = 0.0f;
    for (size_t s = 0; s < inputs.size(); ++s) {
      opt.ZeroGrad();
      Tensor h = cell.InitialState();
      std::vector<Tensor> losses;
      for (int t = 0; t < kSteps; ++t) {
        Tensor x = Tensor::Constant(Matrix::Column({inputs[s][t]}));
        h = cell.Step(x, h);
        Tensor y = head.Forward(h);
        losses.push_back(SquaredError(y, Matrix::Column({targets[s][t]})));
      }
      Tensor loss = AddN(losses);
      loss.Backward();
      ClipGradNorm(store, 5.0f);
      opt.Step();
      total += loss.scalar();
    }
    return total / static_cast<float>(inputs.size() * kSteps);
  };

  const float initial = epoch_loss();
  float final_loss = initial;
  for (int e = 0; e < 60; ++e) {
    final_loss = epoch_loss();
  }
  EXPECT_LT(final_loss, initial * 0.2f) << "GRU failed to learn EMA";
  EXPECT_LT(final_loss, 5e-3f);
}

TEST(TrainIntegrationTest, GruLearnsCumulativeSum) {
  // Cumulative behaviour matters for the disk-usage resource in DeepRest:
  // utilization is the integral of write activity, which only a recurrent
  // model can represent.
  ParameterStore store;
  Rng rng(3);
  GruCell cell(store, "gru", 1, 12, rng);
  Linear head(store, "head", 12, 1, rng);
  AdamOptimizer opt(store, 0.02f);

  const int kSteps = 20;
  Rng data_rng(4);
  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> targets;
  for (int s = 0; s < 10; ++s) {
    std::vector<float> xs;
    std::vector<float> ys;
    float acc = 0.0f;
    for (int t = 0; t < kSteps; ++t) {
      const float x = data_rng.NextBernoulli(0.4) ? 1.0f : 0.0f;
      acc += 0.05f * x;
      xs.push_back(x);
      ys.push_back(acc);
    }
    inputs.push_back(xs);
    targets.push_back(ys);
  }

  float final_loss = 0.0f;
  for (int e = 0; e < 80; ++e) {
    final_loss = 0.0f;
    for (size_t s = 0; s < inputs.size(); ++s) {
      opt.ZeroGrad();
      Tensor h = cell.InitialState();
      std::vector<Tensor> losses;
      for (int t = 0; t < kSteps; ++t) {
        Tensor x = Tensor::Constant(Matrix::Column({inputs[s][t]}));
        h = cell.Step(x, h);
        losses.push_back(SquaredError(head.Forward(h), Matrix::Column({targets[s][t]})));
      }
      Tensor loss = AddN(losses);
      loss.Backward();
      ClipGradNorm(store, 5.0f);
      opt.Step();
      final_loss += loss.scalar();
    }
    final_loss /= static_cast<float>(inputs.size() * kSteps);
  }
  EXPECT_LT(final_loss, 1e-3f);
}

TEST(TrainIntegrationTest, QuantileHeadsBracketNoisyTarget) {
  // A three-head linear model trained with the paper's quantile loss must
  // produce lower/upper heads that bracket ~90% of noisy observations.
  ParameterStore store;
  Rng rng(5);
  Linear head(store, "head", 1, 3, rng);
  AdamOptimizer opt(store, 0.05f);
  Rng data_rng(6);

  const float kDelta = 0.90f;
  const std::vector<float> deltas = {0.5f, (1.0f - kDelta) / 2.0f, kDelta + (1.0f - kDelta) / 2.0f};
  for (int step = 0; step < 3000; ++step) {
    const float x = static_cast<float>(data_rng.Uniform(0.0, 1.0));
    const float y = 2.0f * x + static_cast<float>(data_rng.Gaussian(0.0, 0.2));
    opt.ZeroGrad();
    Tensor pred = head.Forward(Tensor::Constant(Matrix::Column({x})));
    PinballLoss(pred, y, deltas).Backward();
    opt.Step();
  }

  int covered = 0;
  const int kEval = 2000;
  for (int i = 0; i < kEval; ++i) {
    const float x = static_cast<float>(data_rng.Uniform(0.0, 1.0));
    const float y = 2.0f * x + static_cast<float>(data_rng.Gaussian(0.0, 0.2));
    Tensor pred = head.Forward(Tensor::Constant(Matrix::Column({x})));
    const float lo = pred.value().At(1, 0);
    const float hi = pred.value().At(2, 0);
    EXPECT_LE(lo, hi);
    if (y >= lo && y <= hi) {
      ++covered;
    }
  }
  const float coverage = static_cast<float>(covered) / kEval;
  EXPECT_GT(coverage, 0.82f);
  EXPECT_LT(coverage, 0.97f);
}

}  // namespace
}  // namespace deeprest
