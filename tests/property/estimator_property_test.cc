// Parameterized sweeps over the estimator itself, on a 3-component fixture
// small enough to train per-parameter in well under a second.
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/eval/metrics.h"
#include "src/sim/simulator.h"

namespace deeprest {
namespace {

// Same tiny application as the estimator unit tests, rebuilt here so the
// property suite stays self-contained.
Application TinyApp() {
  Application app("tiny");
  ComponentSpec frontend;
  frontend.name = "Frontend";
  app.AddComponent(frontend);
  ComponentSpec db;
  db.name = "DB";
  db.stateful = true;
  db.initial_disk_mb = 50.0;
  db.write_noise_ops = 0.2;
  db.write_noise_kb = 2.0;
  app.AddComponent(db);

  CostTerm cpu;
  cpu.base = 0.1;
  CostTerm db_cpu;
  db_cpu.base = 0.08;
  CostTerm iops;
  iops.resource = ResourceKind::kWriteIops;
  iops.base = 1.0;
  CostTerm thr;
  thr.resource = ResourceKind::kWriteThroughput;
  thr.base = 1.2;

  ApiEndpoint read;
  read.name = "/read";
  OpNode read_db{"DB", "find", 1.0, "", {db_cpu}, {}};
  read.root = OpNode{"Frontend", "read", 1.0, "", {cpu}, {read_db}};
  app.AddApi(read);
  ApiEndpoint write;
  write.name = "/write";
  OpNode write_db{"DB", "insert", 1.0, "", {db_cpu, iops, thr}, {}};
  write.root = OpNode{"Frontend", "write", 1.0, "", {cpu}, {write_db}};
  app.AddApi(write);
  return app;
}

struct Fixture {
  Application app = TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  size_t learn_windows = 72;
  size_t query_windows = 24;

  explicit Fixture(uint64_t seed) {
    TrafficSeries traffic({"/read", "/write"}, learn_windows + query_windows);
    Rng rng(seed);
    for (size_t w = 0; w < traffic.windows(); ++w) {
      traffic.set_rate(w, 0, rng.Uniform(10.0, 100.0));
      traffic.set_rate(w, 1, rng.Uniform(5.0, 50.0));
    }
    Simulator sim(app, {.seed = seed});
    sim.Run(traffic, 0, &traces, &metrics);
  }
};

// ---- Hidden-dimension sweep: accuracy holds across model capacities ----

class HiddenDimSweep : public ::testing::TestWithParam<int> {};

TEST_P(HiddenDimSweep, QueryAccuracyWithinBound) {
  Fixture fixture(3);
  EstimatorConfig config;
  config.hidden_dim = static_cast<size_t>(GetParam());
  config.epochs = 14;
  config.bptt_chunk = 24;
  config.seed = 5;
  DeepRestEstimator estimator(config);
  estimator.Learn(fixture.traces, fixture.metrics, 0, fixture.learn_windows,
                  fixture.app.MetricCatalog());
  const EstimateMap estimates = estimator.EstimateFromTraces(
      fixture.traces, fixture.learn_windows, fixture.learn_windows + fixture.query_windows);
  const double mape =
      ResourceMape(estimates, fixture.metrics, {"Frontend", ResourceKind::kCpu},
                   fixture.learn_windows, fixture.learn_windows + fixture.query_windows);
  EXPECT_LT(mape, 25.0) << "hidden_dim=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Capacities, HiddenDimSweep, ::testing::Values(4, 8, 16));

// ---- Confidence-level sweep: empirical coverage tracks delta ----

class DeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSweep, IntervalCoverageNearConfidenceLevel) {
  const double delta = GetParam();
  Fixture fixture(7);
  EstimatorConfig config;
  config.hidden_dim = 8;
  config.epochs = 18;
  config.bptt_chunk = 24;
  config.delta = static_cast<float>(delta);
  config.seed = 9;
  DeepRestEstimator estimator(config);
  estimator.Learn(fixture.traces, fixture.metrics, 0, fixture.learn_windows,
                  fixture.app.MetricCatalog());
  const size_t from = fixture.learn_windows;
  const size_t to = fixture.learn_windows + fixture.query_windows;
  const EstimateMap estimates = estimator.EstimateFromTraces(fixture.traces, from, to);

  // Pool coverage over all resources for statistical mass.
  double covered = 0.0;
  double total = 0.0;
  for (const auto& [key, estimate] : estimates) {
    const auto actual = fixture.metrics.Series(key, from, to);
    covered += IntervalCoverage(estimate, actual) * static_cast<double>(actual.size());
    total += static_cast<double>(actual.size());
  }
  const double coverage = covered / total;
  // The interval heads are quantile estimates on finite noisy data: allow a
  // generous band around the nominal level, but they must track it.
  EXPECT_GT(coverage, delta - 0.22) << "delta=" << delta;
  EXPECT_GT(coverage, 0.35);
  if (delta <= 0.6) {
    EXPECT_LT(coverage, 0.995) << "narrow interval should not cover everything";
  }
}

INSTANTIATE_TEST_SUITE_P(Confidence, DeltaSweep, ::testing::Values(0.5, 0.8, 0.95));

// ---- Query-duration sweep: "queries of any duration" (paper section 4.2) ----

class DurationSweep : public ::testing::TestWithParam<int> {};

TEST_P(DurationSweep, VariableLengthQueriesSupported) {
  const size_t duration = static_cast<size_t>(GetParam());
  Fixture fixture(11);
  EstimatorConfig config;
  config.hidden_dim = 8;
  config.epochs = 6;
  config.bptt_chunk = 24;
  DeepRestEstimator estimator(config);
  estimator.Learn(fixture.traces, fixture.metrics, 0, fixture.learn_windows,
                  fixture.app.MetricCatalog());
  TrafficSeries query({"/read", "/write"}, duration);
  for (size_t w = 0; w < duration; ++w) {
    query.set_rate(w, 0, 40.0);
    query.set_rate(w, 1, 20.0);
  }
  const EstimateMap estimates = estimator.EstimateFromTraffic(query, 3);
  for (const auto& [key, estimate] : estimates) {
    EXPECT_EQ(estimate.expected.size(), duration) << key.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Durations, DurationSweep, ::testing::Values(1, 7, 30, 120));

}  // namespace
}  // namespace deeprest
