// Parameterized property checks for the evaluation metrics and the sanity
// scorer: invariances that must hold for arbitrary inputs.
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/sanity.h"
#include "src/eval/metrics.h"
#include "src/nn/rng.h"

namespace deeprest {
namespace {

// ---- MAPE invariances across random series ----

class MapePropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(MapePropertySweep, NonNegativeAndZeroOnlyAtEquality) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<double> actual;
  std::vector<double> pred;
  for (int i = 0; i < 50; ++i) {
    actual.push_back(rng.Uniform(1.0, 100.0));
    pred.push_back(rng.Uniform(1.0, 100.0));
  }
  EXPECT_GE(Mape(pred, actual), 0.0);
  EXPECT_DOUBLE_EQ(Mape(actual, actual), 0.0);
}

TEST_P(MapePropertySweep, ScaleInvariant) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  std::vector<double> actual;
  std::vector<double> pred;
  for (int i = 0; i < 50; ++i) {
    actual.push_back(rng.Uniform(1.0, 100.0));
    pred.push_back(rng.Uniform(1.0, 100.0));
  }
  std::vector<double> actual_scaled;
  std::vector<double> pred_scaled;
  for (size_t i = 0; i < actual.size(); ++i) {
    actual_scaled.push_back(actual[i] * 7.5);
    pred_scaled.push_back(pred[i] * 7.5);
  }
  EXPECT_NEAR(Mape(pred, actual), Mape(pred_scaled, actual_scaled), 1e-9);
}

TEST_P(MapePropertySweep, WorseningPredictionNeverLowersError) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  std::vector<double> actual;
  std::vector<double> pred;
  for (int i = 0; i < 50; ++i) {
    actual.push_back(rng.Uniform(10.0, 100.0));
    pred.push_back(actual.back());
  }
  double previous = Mape(pred, actual);
  for (int step = 0; step < 5; ++step) {
    for (auto& p : pred) {
      p += 5.0;  // move everything further above the actuals
    }
    const double current = Mape(pred, actual);
    EXPECT_GE(current, previous);
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapePropertySweep, ::testing::Values(1, 2, 3, 4));

// ---- Synthesis quality bounds across block sizes ----

class SynthesisBlockSweep : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisBlockSweep, BoundedAndMaximalAtIdentity) {
  const size_t block = static_cast<size_t>(GetParam());
  Rng rng(9);
  std::vector<std::vector<float>> real;
  std::vector<std::vector<float>> synth;
  for (int w = 0; w < 32; ++w) {
    std::vector<float> row_real;
    std::vector<float> row_synth;
    for (int d = 0; d < 10; ++d) {
      row_real.push_back(static_cast<float>(rng.NextPoisson(8.0)));
      row_synth.push_back(static_cast<float>(rng.NextPoisson(8.0)));
    }
    real.push_back(row_real);
    synth.push_back(row_synth);
  }
  const double quality = SynthesisQuality(synth, real, block);
  EXPECT_LE(quality, 100.0);
  EXPECT_GE(quality, 0.0);
  EXPECT_NEAR(SynthesisQuality(real, real, block), 100.0, 1e-9);
}

TEST_P(SynthesisBlockSweep, LargerBlocksAbsorbSamplingNoise) {
  // With identical generating distributions, aggregating more windows per
  // block averages out Poisson noise, so quality should not decrease.
  const size_t block = static_cast<size_t>(GetParam());
  if (block >= 16) {
    GTEST_SKIP() << "comparison needs a larger block to compare against";
  }
  Rng rng(10);
  std::vector<std::vector<float>> real;
  std::vector<std::vector<float>> synth;
  for (int w = 0; w < 64; ++w) {
    std::vector<float> row_real;
    std::vector<float> row_synth;
    for (int d = 0; d < 8; ++d) {
      row_real.push_back(static_cast<float>(rng.NextPoisson(6.0)));
      row_synth.push_back(static_cast<float>(rng.NextPoisson(6.0)));
    }
    real.push_back(row_real);
    synth.push_back(row_synth);
  }
  EXPECT_GE(SynthesisQuality(synth, real, block * 4) + 1.0,
            SynthesisQuality(synth, real, block));
}

INSTANTIATE_TEST_SUITE_P(Blocks, SynthesisBlockSweep, ::testing::Values(1, 2, 4, 8, 16));

// ---- Sanity scores across interval widths ----

class IntervalWidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(IntervalWidthSweep, ZeroInsidePositiveOutside) {
  const double width = GetParam();
  ResourceEstimate estimate;
  const size_t n = 16;
  for (size_t t = 0; t < n; ++t) {
    estimate.expected.push_back(50.0);
    estimate.lower.push_back(50.0 - width / 2.0);
    estimate.upper.push_back(50.0 + width / 2.0);
  }
  // Inside.
  std::vector<double> inside(n, 50.0 + width / 4.0);
  for (double s : SanityChecker::ResourceScores(estimate, inside)) {
    EXPECT_DOUBLE_EQ(s, 0.0);
  }
  // Outside, above.
  std::vector<double> outside(n, 50.0 + width);
  for (double s : SanityChecker::ResourceScores(estimate, outside)) {
    EXPECT_GT(s, 0.0);
  }
}

TEST_P(IntervalWidthSweep, ScoreMonotoneInExcursion) {
  const double width = GetParam();
  ResourceEstimate estimate;
  estimate.expected = {50.0};
  estimate.lower = {50.0 - width / 2.0};
  estimate.upper = {50.0 + width / 2.0};
  double previous = 0.0;
  for (double excursion = 0.0; excursion < 200.0; excursion += 20.0) {
    const auto scores =
        SanityChecker::ResourceScores(estimate, {50.0 + width / 2.0 + excursion});
    EXPECT_GE(scores[0], previous);
    previous = scores[0];
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, IntervalWidthSweep,
                         ::testing::Values(0.5, 2.0, 10.0, 40.0));

}  // namespace
}  // namespace deeprest
