// Property-style parameterized sweeps over the nn module: gradient
// correctness and invariants must hold across layer shapes, quantile levels,
// and seeds — not just the single configurations unit tests pin down.
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/matrix.h"
#include "src/nn/optimizer.h"
#include "src/nn/rng.h"
#include "src/nn/simd/dispatch.h"
#include "tests/testing/gradcheck.h"

namespace deeprest {
namespace {

// ---- GRU invariants across (in_dim, hidden_dim, seed) ----

class GruShapeSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GruShapeSweep, GradientMatchesNumerical) {
  const auto [in_dim, hidden_dim, seed] = GetParam();
  ParameterStore store;
  Rng rng(static_cast<uint64_t>(seed));
  GruCell cell(store, "gru", in_dim, hidden_dim, rng);
  std::vector<Matrix> inputs;
  for (int t = 0; t < 2; ++t) {
    Matrix x(in_dim, 1);
    x.FillUniform(rng, 1.0f);
    inputs.push_back(x);
  }
  std::vector<Tensor> params;
  for (const auto& entry : store.entries()) {
    params.push_back(entry.tensor);
  }
  ExpectGradientsMatch(params, [&] {
    Tensor h = cell.InitialState();
    for (const auto& x : inputs) {
      h = cell.Step(Tensor::Constant(x), h);
    }
    return SumAll(Hadamard(h, h));
  });
}

TEST_P(GruShapeSweep, ParameterCountFormula) {
  const auto [in_dim, hidden_dim, seed] = GetParam();
  ParameterStore store;
  Rng rng(static_cast<uint64_t>(seed));
  GruCell cell(store, "gru", in_dim, hidden_dim, rng);
  const size_t expected = 3u * (static_cast<size_t>(hidden_dim) * in_dim +
                                static_cast<size_t>(hidden_dim) * hidden_dim + hidden_dim);
  EXPECT_EQ(store.TotalParameters(), expected);
  EXPECT_EQ(cell.FlattenedParameters().size(), expected);
}

TEST_P(GruShapeSweep, HiddenStateStaysBounded) {
  const auto [in_dim, hidden_dim, seed] = GetParam();
  ParameterStore store;
  Rng rng(static_cast<uint64_t>(seed));
  GruCell cell(store, "gru", in_dim, hidden_dim, rng);
  Tensor h = cell.InitialState();
  for (int t = 0; t < 30; ++t) {
    Matrix x(in_dim, 1);
    x.FillUniform(rng, 10.0f);  // extreme inputs
    h = cell.Step(Tensor::Constant(x), h);
    for (size_t i = 0; i < h.value().size(); ++i) {
      // Mathematically the state is strictly inside (-1, 1); in float,
      // saturated tanh rounds to exactly +-1, so the bound is inclusive.
      EXPECT_GE(h.value()[i], -1.0f);
      EXPECT_LE(h.value()[i], 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GruShapeSweep,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(1, 4, 2),
                                           std::make_tuple(3, 2, 3),
                                           std::make_tuple(5, 5, 4),
                                           std::make_tuple(8, 3, 5)));

// ---- Pinball loss: the minimizer is the requested quantile, for any q ----

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MinimizerConvergesToEmpiricalQuantile) {
  const double q = GetParam();
  // Data: uniform over {0, 1, ..., 99}; the q-quantile is ~100q.
  Tensor pred = Tensor::Parameter(Matrix::Column({50.0f}));
  Rng rng(7);
  for (int step = 0; step < 30000; ++step) {
    const float y = static_cast<float>(rng.NextBelow(100));
    pred.node()->EnsureGrad();
    pred.mutable_grad().Zero();
    PinballLoss(pred, y, {static_cast<float>(q)}).Backward();
    pred.mutable_value().AddScaled(pred.grad(), -0.05f);
  }
  EXPECT_NEAR(pred.value().At(0, 0), 100.0 * q, 6.0) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95));

// ---- Optimizers converge across learning rates ----

class AdamLrSweep : public ::testing::TestWithParam<float> {};

TEST_P(AdamLrSweep, ConvergesOnQuadratic) {
  const float lr = GetParam();
  ParameterStore store;
  Tensor p = store.Create("p", Matrix(1, 1, 8.0f));
  AdamOptimizer opt(store, lr);
  const Matrix target = Matrix::Column({-1.0f});
  for (int i = 0; i < 12000; ++i) {
    opt.ZeroGrad();
    SquaredError(p, target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(p.value().At(0, 0), -1.0f, 0.05f) << "lr=" << lr;
}

INSTANTIATE_TEST_SUITE_P(LearningRates, AdamLrSweep,
                         ::testing::Values(0.003f, 0.01f, 0.03f, 0.1f));

// ---- Gradient-clipping invariant across thresholds ----

class ClipSweep : public ::testing::TestWithParam<float> {};

TEST_P(ClipSweep, PostClipNormNeverExceedsThreshold) {
  const float max_norm = GetParam();
  ParameterStore store;
  Rng rng(11);
  Tensor a = store.Create("a", Matrix(4, 4));
  Tensor b = store.Create("b", Matrix(3, 1));
  a.node()->EnsureGrad();
  b.node()->EnsureGrad();
  a.mutable_grad().FillUniform(rng, 10.0f);
  b.mutable_grad().FillUniform(rng, 10.0f);
  ClipGradNorm(store, max_norm);
  double total = 0.0;
  for (const auto& entry : store.entries()) {
    const Matrix& g = entry.tensor.grad();
    for (size_t i = 0; i < g.size(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  EXPECT_LE(std::sqrt(total), max_norm * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ClipSweep, ::testing::Values(0.1f, 1.0f, 5.0f, 100.0f));

// ---- Kernel-mode lifecycle across random mode/ISA sequences ----

// A fixture-level guard: every test leaves the process-global kernel state
// as it found it, whatever the random walk did.
class KernelModeWalk : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override {
    simd::ResetIsa();
    SetKernelMode(KernelMode::kTiled);
  }
};

TEST_P(KernelModeWalk, RandomModeAndIsaSequencesKeepInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const KernelMode modes[] = {KernelMode::kTiled, KernelMode::kReference, KernelMode::kSimd};
  const simd::Isa rungs[] = {simd::Isa::kScalar, simd::Isa::kAvx2, simd::Isa::kAvx512,
                             simd::Isa::kNeon};
  Matrix a(5, 9), b(9, 3), tiled_out, walk_out;
  a.FillUniform(rng, 1.0f);
  b.FillUniform(rng, 1.0f);
  SetKernelMode(KernelMode::kTiled);
  MatMulInto(a, b, tiled_out);

  for (int step = 0; step < 64; ++step) {
    const KernelMode mode = modes[static_cast<size_t>(rng.Uniform(0.0, 3.0))];
    SetKernelMode(mode);
    // Round-trip: the setter is the only writer, so the getter must agree.
    EXPECT_EQ(GetKernelMode(), mode);

    const simd::Isa forced = rungs[static_cast<size_t>(rng.Uniform(0.0, 4.0))];
    simd::ForceIsa(forced);
    // Fallback: whatever was requested, the active rung is one the host
    // can execute — an unsupported force clamps down the ladder instead of
    // selecting an illegal-instruction kernel table.
    EXPECT_TRUE(simd::IsaSupported(simd::ActiveIsa()));
    EXPECT_LE(static_cast<int>(simd::ActiveIsa()), static_cast<int>(simd::BestSupportedIsa()));

    // And the selected configuration actually computes: the bit-exactness
    // contract holds for the mat-mat path in every mode on every rung.
    MatMulInto(a, b, walk_out);
    if (mode != KernelMode::kReference) {
      for (size_t i = 0; i < tiled_out.size(); ++i) {
        ASSERT_EQ(walk_out[i], tiled_out[i]) << "mode " << static_cast<int>(mode) << " isa "
                                             << simd::IsaName(simd::ActiveIsa());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelModeWalk, ::testing::Values(1, 7, 42, 1337));

}  // namespace
}  // namespace deeprest
