// Parameterized invariant sweeps over the simulator: across both benchmark
// applications, traffic shapes, and seeds, the produced telemetry must obey
// physical constraints and the trace structure must stay well-formed.
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace deeprest {
namespace {

enum class WhichApp { kSocial, kHotel };

Application MakeApp(WhichApp which) {
  return which == WhichApp::kSocial ? BuildSocialNetworkApp() : BuildHotelReservationApp();
}

TrafficSpec SpecFor(WhichApp which, ShapeKind shape) {
  TrafficSpec spec;
  spec.days = 1;
  spec.windows_per_day = 24;
  spec.shape = shape;
  spec.base_requests_per_window = 80.0;
  if (which == WhichApp::kSocial) {
    spec.mix = {{"/composePost", 0.25}, {"/readTimeline", 0.40}, {"/uploadMedia", 0.10},
                {"/getMedia", 0.15},    {"/login", 0.10}};
  } else {
    spec.mix = {{"/searchHotels", 0.55}, {"/recommend", 0.20}, {"/reserve", 0.10},
                {"/login", 0.15}};
  }
  return spec;
}

class SimInvariantSweep
    : public ::testing::TestWithParam<std::tuple<WhichApp, ShapeKind, int>> {};

TEST_P(SimInvariantSweep, MetricsObeyPhysicalConstraints) {
  const auto [which, shape, seed] = GetParam();
  const Application app = MakeApp(which);
  Simulator sim(app, {.seed = static_cast<uint64_t>(seed)});
  Rng rng(static_cast<uint64_t>(seed) + 1000);
  const TrafficSeries traffic = GenerateTraffic(SpecFor(which, shape), rng);
  MetricsStore metrics;
  sim.Run(traffic, 0, nullptr, &metrics);

  for (const auto& key : app.MetricCatalog()) {
    const auto series = metrics.Series(key, 0, traffic.windows());
    double previous_disk = 0.0;
    for (size_t w = 0; w < series.size(); ++w) {
      switch (key.resource) {
        case ResourceKind::kCpu:
          EXPECT_GE(series[w], 0.0) << key.ToString() << " @" << w;
          EXPECT_LE(series[w], 100.0) << key.ToString() << " @" << w;
          break;
        case ResourceKind::kMemory:
          EXPECT_GT(series[w], 0.0) << key.ToString() << " @" << w;
          break;
        case ResourceKind::kWriteIops:
        case ResourceKind::kWriteThroughput:
          EXPECT_GE(series[w], 0.0) << key.ToString() << " @" << w;
          break;
        case ResourceKind::kDiskUsage:
          EXPECT_GE(series[w], previous_disk) << key.ToString() << " @" << w;
          previous_disk = series[w];
          break;
      }
    }
  }
}

TEST_P(SimInvariantSweep, TracesAreWellFormed) {
  const auto [which, shape, seed] = GetParam();
  const Application app = MakeApp(which);
  Simulator sim(app, {.seed = static_cast<uint64_t>(seed)});
  Rng rng(static_cast<uint64_t>(seed) + 2000);
  const TrafficSeries traffic = GenerateTraffic(SpecFor(which, shape), rng);
  TraceCollector traces;
  sim.Run(traffic, 0, &traces, nullptr);
  ASSERT_GT(traces.total_traces(), 0u);

  std::set<std::string> known_components;
  for (const auto& component : app.components()) {
    known_components.insert(component.name);
  }
  for (size_t w = 0; w < traces.window_count(); ++w) {
    for (const Trace& trace : traces.TracesAt(w)) {
      ASSERT_FALSE(trace.empty());
      // Root has no parent; every other span's parent precedes it.
      EXPECT_EQ(trace.spans()[0].parent, kNoParent);
      for (SpanIndex s = 1; s < trace.size(); ++s) {
        EXPECT_LT(trace.spans()[s].parent, s);
      }
      // Every span names a declared component.
      for (const Span& span : trace.spans()) {
        EXPECT_TRUE(known_components.count(span.component)) << span.component;
      }
      // The root operation matches the API's entry template.
      const ApiEndpoint* api = app.FindApi(trace.api_name());
      ASSERT_NE(api, nullptr) << trace.api_name();
      EXPECT_EQ(trace.root().component, api->root.component);
      EXPECT_EQ(trace.root().operation, api->root.operation);
    }
  }
}

TEST_P(SimInvariantSweep, RunsAreDeterministicPerSeed) {
  const auto [which, shape, seed] = GetParam();
  const Application app = MakeApp(which);
  Rng rng_a(static_cast<uint64_t>(seed) + 3000);
  Rng rng_b(static_cast<uint64_t>(seed) + 3000);
  const TrafficSeries traffic_a = GenerateTraffic(SpecFor(which, shape), rng_a);
  const TrafficSeries traffic_b = GenerateTraffic(SpecFor(which, shape), rng_b);
  Simulator sim_a(app, {.seed = static_cast<uint64_t>(seed)});
  Simulator sim_b(app, {.seed = static_cast<uint64_t>(seed)});
  MetricsStore m_a;
  MetricsStore m_b;
  TraceCollector t_a;
  TraceCollector t_b;
  sim_a.Run(traffic_a, 0, &t_a, &m_a);
  sim_b.Run(traffic_b, 0, &t_b, &m_b);
  EXPECT_EQ(t_a.total_traces(), t_b.total_traces());
  for (const auto& key : app.MetricCatalog()) {
    for (size_t w = 0; w < traffic_a.windows(); ++w) {
      ASSERT_DOUBLE_EQ(m_a.At(key, w), m_b.At(key, w)) << key.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsShapesSeeds, SimInvariantSweep,
    ::testing::Combine(::testing::Values(WhichApp::kSocial, WhichApp::kHotel),
                       ::testing::Values(ShapeKind::kTwoPeak, ShapeKind::kFlat),
                       ::testing::Values(1, 7)));

// ---- Traffic generator invariants over shapes and resolutions ----

class TrafficShapeSweep
    : public ::testing::TestWithParam<std::tuple<ShapeKind, int>> {};

TEST_P(TrafficShapeSweep, ProfileNormalizedAndPositive) {
  const auto [shape, windows_per_day] = GetParam();
  const auto profile = ShapeProfile(shape, static_cast<size_t>(windows_per_day));
  ASSERT_EQ(profile.size(), static_cast<size_t>(windows_per_day));
  double mean = 0.0;
  for (double v : profile) {
    EXPECT_GT(v, 0.0);
    mean += v;
  }
  EXPECT_NEAR(mean / profile.size(), 1.0, 1e-9);
}

TEST_P(TrafficShapeSweep, GeneratedRatesNonNegativeAndScaleLinear) {
  const auto [shape, windows_per_day] = GetParam();
  TrafficSpec spec;
  spec.days = 2;
  spec.windows_per_day = static_cast<size_t>(windows_per_day);
  spec.shape = shape;
  spec.mix = {{"/a", 1.0}, {"/b", 2.0}};
  spec.day_jitter = 0.0;
  spec.window_jitter = 0.0;
  Rng rng_1(5);
  Rng rng_2(5);
  const TrafficSeries base = GenerateTraffic(spec, rng_1);
  spec.user_scale = 4.0;
  const TrafficSeries scaled = GenerateTraffic(spec, rng_2);
  for (size_t w = 0; w < base.windows(); ++w) {
    for (size_t a = 0; a < base.api_count(); ++a) {
      EXPECT_GE(base.rate(w, a), 0.0);
      EXPECT_NEAR(scaled.rate(w, a), 4.0 * base.rate(w, a), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesResolutions, TrafficShapeSweep,
    ::testing::Combine(::testing::Values(ShapeKind::kTwoPeak, ShapeKind::kFlat,
                                         ShapeKind::kSinglePeak),
                       ::testing::Values(12, 48, 96)));

}  // namespace
}  // namespace deeprest
