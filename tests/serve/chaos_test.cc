// Chaos tests: telemetry fault injection against the full serving stack.
//
// The hard requirement (DESIGN.md "Failure model"): with >=10% trace drop /
// duplication / corruption and 5% metric gaps plus a full collector outage,
// the serving stack must (a) not crash, (b) keep its bookkeeping exact,
// (c) raise ZERO false anomaly alarms on degraded-but-honest telemetry, and
// (d) keep the estimation error against a clean-telemetry run inside a
// documented bound (25% WAPE on expected consumption).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/sanity.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/sim/fault_injector.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

using testutil::IngestRange;
using testutil::MakeSetup;
using testutil::RandomTraffic;
using testutil::TinySetup;
using testutil::TrainModel;

// Mean absolute difference of the expected-consumption series, normalized by
// the clean run's magnitude, averaged over resources: the "how wrong did
// chaos make the estimates" number the error bound is stated against.
double EstimateDivergence(const EstimateMap& chaos, const EstimateMap& clean) {
  double sum = 0.0;
  size_t count = 0;
  for (const auto& [key, clean_estimate] : clean) {
    const auto it = chaos.find(key);
    if (it == chaos.end()) {
      continue;
    }
    const size_t n = std::min(clean_estimate.expected.size(), it->second.expected.size());
    double abs_err = 0.0;
    double abs_clean = 0.0;
    for (size_t t = 0; t < n; ++t) {
      abs_err += std::fabs(it->second.expected[t] - clean_estimate.expected[t]);
      abs_clean += std::fabs(clean_estimate.expected[t]);
    }
    sum += abs_err / std::max(abs_clean, 1e-9);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

TEST(FaultInjectorTest, DeterministicForFixedSeedAndSequence) {
  TinySetup s = MakeSetup();
  FaultInjectorConfig config;
  config.seed = 11;
  config.drop_prob = 0.2;
  config.duplicate_prob = 0.2;
  config.corrupt_prob = 0.1;
  config.truncate_prob = 0.1;
  config.delay_prob = 0.1;
  config.metric_gap_prob = 0.1;
  FaultInjector a(config);
  FaultInjector b(config);

  const auto keys = s.metrics.Keys();
  for (size_t w = 0; w < 8; ++w) {
    for (const Trace& trace : s.traces.TracesAt(w)) {
      const auto da = a.ProcessTrace(w, trace);
      const auto db = b.ProcessTrace(w, trace);
      ASSERT_EQ(da.size(), db.size());
      for (size_t i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da[i].window, db[i].window);
        EXPECT_EQ(da[i].trace.size(), db[i].trace.size());
      }
    }
    for (const MetricKey& key : keys) {
      EXPECT_EQ(a.ProcessMetric(key, w, 1.0), b.ProcessMetric(key, w, 1.0));
    }
  }
  const FaultCounters ca = a.counters();
  const FaultCounters cb = b.counters();
  EXPECT_EQ(ca.dropped, cb.dropped);
  EXPECT_EQ(ca.corrupted, cb.corrupted);
  EXPECT_EQ(ca.duplicated, cb.duplicated);
  EXPECT_EQ(ca.delayed, cb.delayed);
  EXPECT_EQ(ca.metric_gaps, cb.metric_gaps);
  // With these rates over hundreds of traces every fault class must fire.
  EXPECT_GT(ca.dropped, 0u);
  EXPECT_GT(ca.corrupted, 0u);
  EXPECT_GT(ca.duplicated, 0u);
  EXPECT_GT(ca.metric_gaps, 0u);
}

TEST(FaultInjectorTest, OutageWindowsLoseTheirEntireTraceStream) {
  TinySetup s = MakeSetup();
  FaultInjectorConfig config;
  config.seed = 5;
  config.outage_start = 2;
  config.outage_end = 4;
  FaultInjector injector(config);
  for (size_t w = 0; w < 6; ++w) {
    const auto& traces = s.traces.TracesAt(w);
    size_t delivered = 0;
    for (const Trace& trace : traces) {
      delivered += injector.ProcessTrace(w, trace).size();
    }
    if (w >= 2 && w < 4) {
      EXPECT_EQ(delivered, 0u) << "outage window " << w;
    } else {
      EXPECT_EQ(delivered, traces.size()) << "window " << w;
    }
  }
}

// A degraded window must deviate proportionally harder before it alarms: a
// deviation that fires at full quality is suppressed at half quality.
TEST(SanityQualityTest, LowQualityWindowsWidenTolerance) {
  const size_t n = 12;
  MetricKey key{"Frontend", ResourceKind::kCpu};
  ResourceEstimate estimate;
  estimate.expected.assign(n, 10.0);
  estimate.lower.assign(n, 9.0);
  estimate.upper.assign(n, 11.0);
  EstimateMap estimates;
  estimates[key] = estimate;

  MetricsStore metrics;
  for (size_t w = 0; w < n; ++w) {
    // Windows 4..6 sit moderately outside the interval (score ~1.5 with the
    // default normalization) — anomalous at full quality.
    metrics.Record(key, w, (w >= 4 && w < 7) ? 14.0 : 10.0);
  }

  SanityChecker checker;
  const auto raw = checker.Detect(estimates, metrics, 0, n);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw[0].start_window, 4u);

  // Same data, but those windows are known-degraded (quality 0.5): with the
  // default widen factor the score drops below threshold — no false alarm.
  std::vector<double> quality(n, 1.0);
  quality[4] = quality[5] = quality[6] = 0.5;
  const auto widened = checker.Detect(estimates, metrics, 0, n, quality);
  EXPECT_TRUE(widened.empty());

  // Full-quality windows are unaffected by the quality vector.
  const auto full = checker.Detect(estimates, metrics, 0, n, std::vector<double>(n, 1.0));
  ASSERT_EQ(full.size(), 1u);
  EXPECT_DOUBLE_EQ(full[0].peak_score, raw[0].peak_score);
}

// The headline chaos test: deterministic single-producer chaos stream so the
// assertions can be exact.
TEST(ChaosTest, ChaosIngestionBoundsErrorAndRaisesNoFalseAlarms) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const DeepRestEstimator* raw_model = model.get();

  // Clean reference: the same live phase with perfect telemetry.
  IngestPipeline clean(model->features(), {.shards = 1});
  IngestRange(clean, s, 0, s.total());
  clean.Fold(s.total());
  const EstimateMap clean_estimates =
      raw_model->EstimateFromFeatures(clean.FeatureSlice(s.learn_windows, s.total()));

  // Chaos stream: >=10% drop, >=10% duplication, 10% corruption, 5% metric
  // gaps, plus a two-window collector outage in the middle of the live phase.
  FaultInjectorConfig fault_config;
  fault_config.seed = 7;
  fault_config.drop_prob = 0.10;
  fault_config.duplicate_prob = 0.10;
  fault_config.corrupt_prob = 0.10;
  fault_config.metric_gap_prob = 0.05;
  fault_config.outage_start = s.learn_windows + 12;
  fault_config.outage_end = s.learn_windows + 14;
  FaultInjector injector(fault_config);

  IngestPipelineConfig pipeline_config;
  pipeline_config.shards = 2;
  pipeline_config.dedupe_traces = true;  // chaos duplicates; drop re-deliveries
  IngestPipeline chaos(model->features(), pipeline_config);

  // Learn phase arrives clean (the model was trained on it); the live phase
  // goes through the injector.
  IngestRange(chaos, s, 0, s.learn_windows);
  const auto keys = s.metrics.Keys();
  size_t live_traces_in = 0;
  for (size_t w = s.learn_windows; w < s.total(); ++w) {
    for (const Trace& trace : s.traces.TracesAt(w)) {
      ++live_traces_in;
      for (auto& delivery : injector.ProcessTrace(w, trace)) {
        chaos.IngestTrace(delivery.window, std::move(delivery.trace));
      }
    }
    for (const MetricKey& key : keys) {
      const double value = s.metrics.At(key, w);
      if (injector.ProcessMetric(key, w, value)) {
        chaos.IngestMetric(key, w, value);
      }
    }
  }
  chaos.Fold(s.total());

  // (a) every fault class fired, and (b) the bookkeeping is exact: every
  // delivered live event was accepted, rejected at the door, or deduplicated.
  const FaultCounters faults = injector.counters();
  EXPECT_GT(faults.dropped, 0u);
  EXPECT_GT(faults.corrupted, 0u);
  EXPECT_GT(faults.duplicated, 0u);
  EXPECT_GT(faults.metric_gaps, 0u);
  EXPECT_EQ(faults.traces_in, live_traces_in);
  size_t learn_traces = 0;
  for (size_t w = 0; w < s.learn_windows; ++w) {
    learn_traces += s.traces.TracesAt(w).size();
  }
  EXPECT_EQ(chaos.total_traces() + chaos.rejected_traces() + chaos.duplicate_traces(),
            learn_traces + faults.delivered);

  // Degraded-mode repair kicked in and was recorded honestly.
  EXPECT_GE(chaos.imputed_windows(), 2u);  // both outage windows
  EXPECT_GT(chaos.imputed_metrics(), 0u);
  const auto quality = chaos.QualitySlice(s.learn_windows, s.total());
  EXPECT_LT(MinQuality(quality), 1.0);
  size_t degraded = 0;
  for (const DataQuality& q : quality) {
    degraded += q.degraded() ? 1 : 0;
  }
  EXPECT_GT(degraded, 0u);

  // (c) zero false anomalies: the traffic is honest, only the telemetry is
  // degraded — the quality-aware sanity check must stay silent.
  ModelRegistry registry;
  registry.Publish(std::move(model));
  EstimationService service(registry, chaos);
  const auto sanity = service.SubmitSanityCheck(s.learn_windows, s.total()).get();
  EXPECT_EQ(sanity.status, RequestStatus::kOk);
  EXPECT_LT(sanity.min_quality, 1.0);
  EXPECT_TRUE(sanity.events.empty())
      << "false anomaly on degraded-but-honest telemetry, peak score "
      << sanity.events.front().peak_score;

  // (d) documented error bound: estimates from the chaos-ingested features
  // stay within 25% (normalized absolute divergence) of the clean run.
  const EstimateMap chaos_estimates =
      raw_model->EstimateFromFeatures(chaos.FeatureSlice(s.learn_windows, s.total()));
  const double divergence = EstimateDivergence(chaos_estimates, clean_estimates);
  EXPECT_GT(divergence, 0.0);  // chaos did perturb the features
  EXPECT_LT(divergence, 0.25) << "chaos-run estimates diverged past the documented bound";
}

// Multi-threaded chaos: concurrent producers through one injector, clients
// hammering the service, and the continual learner hot-swapping models — the
// TSan target. Interleaving is nondeterministic, so this asserts structural
// invariants, not exact counters.
TEST(ChaosTest, ConcurrentChaosServingIsStable) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  ModelRegistry registry;
  IngestPipelineConfig pipeline_config;
  pipeline_config.shards = 4;
  pipeline_config.dedupe_traces = true;
  IngestPipeline pipeline(model->features(), pipeline_config);
  registry.Publish(std::move(model));

  ContinualLearnerConfig learner_config;
  learner_config.min_new_windows = 16;
  learner_config.epochs = 1;
  learner_config.poll_interval = std::chrono::milliseconds(1);
  ContinualLearner learner(registry, pipeline, s.learn_windows, learner_config);
  learner.Start();

  EstimationServiceConfig service_config;
  service_config.workers = 2;
  service_config.max_batch = 4;
  service_config.max_queue = 64;
  EstimationService service(registry, pipeline, service_config);

  FaultInjectorConfig fault_config;
  fault_config.seed = 13;
  fault_config.drop_prob = 0.10;
  fault_config.duplicate_prob = 0.10;
  fault_config.corrupt_prob = 0.05;
  fault_config.delay_prob = 0.05;
  fault_config.metric_gap_prob = 0.05;
  FaultInjector injector(fault_config);

  std::atomic<bool> producing{true};
  std::vector<std::thread> producers;
  const size_t kProducers = 3;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto keys = s.metrics.Keys();
      for (size_t w = s.learn_windows + p; w < s.total(); w += kProducers) {
        for (const Trace& trace : s.traces.TracesAt(w)) {
          for (auto& delivery : injector.ProcessTrace(w, trace)) {
            pipeline.IngestTrace(delivery.window, std::move(delivery.trace));
          }
        }
        for (const MetricKey& key : keys) {
          const double value = s.metrics.At(key, w);
          if (injector.ProcessMetric(key, w, value)) {
            pipeline.IngestMetric(key, w, value);
          }
        }
      }
    });
  }

  std::atomic<size_t> responses{0};
  std::thread client([&] {
    Rng rng(99);
    size_t round = 0;
    while (producing.load(std::memory_order_acquire)) {
      if (++round % 3 == 0 && pipeline.featured_windows() > s.learn_windows + 4) {
        const auto result =
            service.SubmitSanityCheck(s.learn_windows, pipeline.featured_windows()).get();
        ASSERT_TRUE(result.status == RequestStatus::kOk || result.status == RequestStatus::kShed);
        responses.fetch_add(1, std::memory_order_relaxed);
      } else {
        const auto result =
            service.SubmitTraffic(RandomTraffic(4, rng.NextU64()), rng.NextU64()).get();
        ASSERT_TRUE(result.status == RequestStatus::kOk || result.status == RequestStatus::kShed);
        responses.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (auto& producer : producers) {
    producer.join();
  }
  producing.store(false, std::memory_order_release);
  client.join();
  learner.Stop();
  pipeline.Fold(pipeline.WindowFrontier());

  service.Stop();
  // Submit-after-Stop under concurrent teardown resolves, never hangs.
  const auto rejected = service.SubmitSanityCheck(s.learn_windows, s.total()).get();
  EXPECT_EQ(rejected.status, RequestStatus::kRejectedStopped);

  // Bookkeeping invariants despite nondeterministic interleaving.
  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.requests_submitted, counters.requests_served + counters.requests_shed +
                                             counters.requests_expired +
                                             counters.requests_rejected);
  EXPECT_GT(responses.load(), 0u);
  const FaultCounters faults = injector.counters();
  EXPECT_EQ(pipeline.total_traces() + pipeline.rejected_traces() + pipeline.duplicate_traces(),
            faults.delivered);
}

}  // namespace
}  // namespace deeprest
