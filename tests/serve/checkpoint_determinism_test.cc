// Determinism properties of the serialization and checkpoint paths — the
// contracts the no-unordered-iteration lint rule exists to protect: the same
// model must produce the same bytes, every time, in the same process. If a
// hash-ordered container ever sneaks into the serializer, these tests fail
// before the lint rule is even consulted.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/serve/checkpoint.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

using testutil::MakeSetup;
using testutil::TinySetup;
using testutil::TrainModel;

std::string TempPath(const std::string& name) { return ::testing::TempDir() + name; }

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CheckpointDeterminismTest, SerializingTwiceIsByteIdentical) {
  TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);

  std::ostringstream first;
  std::ostringstream second;
  ASSERT_TRUE(model->SaveToStream(first));
  ASSERT_TRUE(model->SaveToStream(second));
  ASSERT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(CheckpointDeterminismTest, CheckpointingTwiceIsByteIdentical) {
  TinySetup s = MakeSetup();
  CheckpointData data;
  data.version = 7;
  data.trained_through = s.learn_windows;
  data.model = TrainModel(s);

  const std::string path_a = TempPath("det_ckpt_a.bin");
  const std::string path_b = TempPath("det_ckpt_b.bin");
  ASSERT_TRUE(WriteCheckpoint(path_a, data));
  ASSERT_TRUE(WriteCheckpoint(path_b, data));

  const std::string bytes_a = FileBytes(path_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, FileBytes(path_b));

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(CheckpointDeterminismTest, RetrainingFromSameSeedIsByteIdentical) {
  // The end-to-end determinism property: two full ingest+train runs from the
  // same seed must agree to the last bit. This is what makes chaos runs and
  // A/B retrains reproducible.
  TinySetup s1 = MakeSetup(11);
  TinySetup s2 = MakeSetup(11);
  std::unique_ptr<DeepRestEstimator> m1 = TrainModel(s1);
  std::unique_ptr<DeepRestEstimator> m2 = TrainModel(s2);

  std::ostringstream out1;
  std::ostringstream out2;
  ASSERT_TRUE(m1->SaveToStream(out1));
  ASSERT_TRUE(m2->SaveToStream(out2));
  EXPECT_EQ(out1.str(), out2.str());
}

}  // namespace
}  // namespace deeprest
