// Crash-safety tests for the atomic model checkpoint (src/serve/checkpoint.h)
// and startup recovery: torn writes fall back to the rotated previous
// snapshot bit-exactly, corruption is detected by checksum, and a restarted
// learner resumes from the recovered version instead of retraining.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/serve/checkpoint.h"
#include "src/serve/continual_learner.h"
#include "src/serve/model_registry.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

using testutil::IngestRange;
using testutil::MakeSetup;
using testutil::TinySetup;
using testutil::TrainModel;

std::string TempPath(const std::string& name) { return ::testing::TempDir() + name; }

std::string SerializedBytes(const DeepRestEstimator& model) {
  std::ostringstream out;
  EXPECT_TRUE(model.SaveToStream(out));
  return out.str();
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void TruncateFile(const std::string& path, size_t keep) {
  const std::string bytes = FileBytes(path);
  ASSERT_LT(keep, bytes.size());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(keep));
}

TEST(CheckpointTest, RoundTripIsBitExact) {
  TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);
  const std::string expected_bytes = SerializedBytes(*model);
  const std::string path = TempPath("ckpt_roundtrip.bin");

  CheckpointData data;
  data.version = 3;
  data.trained_through = 42;
  data.model = model;
  ASSERT_TRUE(WriteCheckpoint(path, data));

  CheckpointData recovered;
  EXPECT_EQ(RecoverCheckpoint(path, &recovered), RecoverySource::kPrimary);
  EXPECT_EQ(recovered.version, 3u);
  EXPECT_EQ(recovered.trained_through, 42u);
  ASSERT_NE(recovered.model, nullptr);
  EXPECT_EQ(SerializedBytes(*recovered.model), expected_bytes);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileRecoversNothing) {
  CheckpointData recovered;
  EXPECT_EQ(RecoverCheckpoint(TempPath("ckpt_never_written.bin"), &recovered),
            RecoverySource::kNone);
  EXPECT_FALSE(ReadCheckpoint(TempPath("ckpt_never_written.bin"), &recovered));
}

// The kill-mid-write scenario: the second checkpoint's primary file is torn
// (truncated partway through the payload, as a crash between write and fsync
// leaves it). Recovery must reject it and return the rotated previous
// snapshot, bit for bit.
TEST(CheckpointTest, TruncatedPrimaryFallsBackToPreviousBitExact) {
  TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> v1 = TrainModel(s);
  auto clone = v1->Clone();
  ASSERT_NE(clone, nullptr);
  clone->ContinueLearning(s.traces, s.metrics, s.learn_windows, s.total(), 1);
  std::shared_ptr<const DeepRestEstimator> v2 = std::move(clone);
  const std::string v1_bytes = SerializedBytes(*v1);
  const std::string path = TempPath("ckpt_torn.bin");

  CheckpointData first;
  first.version = 1;
  first.trained_through = s.learn_windows;
  first.model = v1;
  ASSERT_TRUE(WriteCheckpoint(path, first));
  CheckpointData second;
  second.version = 2;
  second.trained_through = s.total();
  second.model = v2;
  ASSERT_TRUE(WriteCheckpoint(path, second));  // rotates v1 to <path>.prev

  const size_t full = FileBytes(path).size();
  TruncateFile(path, full * 6 / 10);

  CheckpointData recovered;
  EXPECT_EQ(RecoverCheckpoint(path, &recovered), RecoverySource::kPrevious);
  EXPECT_EQ(recovered.version, 1u);
  EXPECT_EQ(recovered.trained_through, s.learn_windows);
  ASSERT_NE(recovered.model, nullptr);
  EXPECT_EQ(SerializedBytes(*recovered.model), v1_bytes);
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(CheckpointTest, CorruptedPayloadFailsChecksum) {
  TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);
  const std::string path = TempPath("ckpt_corrupt.bin");

  CheckpointData first;
  first.version = 1;
  first.model = model;
  ASSERT_TRUE(WriteCheckpoint(path, first));
  CheckpointData second;
  second.version = 2;
  second.model = model;
  ASSERT_TRUE(WriteCheckpoint(path, second));

  // Flip one payload byte in the primary: size still matches, checksum must
  // catch it and recovery must fall back.
  std::string bytes = FileBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  CheckpointData recovered;
  EXPECT_FALSE(ReadCheckpoint(path, &recovered));
  EXPECT_EQ(RecoverCheckpoint(path, &recovered), RecoverySource::kPrevious);
  EXPECT_EQ(recovered.version, 1u);
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(ModelRegistryTest, RestoreIsForwardOnly) {
  ModelRegistry registry;
  auto model = std::make_shared<const DeepRestEstimator>();
  EXPECT_FALSE(registry.Restore(nullptr, 7));
  EXPECT_FALSE(registry.Restore(model, 0));
  EXPECT_TRUE(registry.Restore(model, 5));
  EXPECT_EQ(registry.version(), 5u);
  // A stale checkpoint can never roll a live registry backwards.
  EXPECT_FALSE(registry.Restore(model, 5));
  EXPECT_FALSE(registry.Restore(model, 4));
  EXPECT_EQ(registry.version(), 5u);
  // Publishing continues from the restored version.
  EXPECT_EQ(registry.Publish(std::make_unique<DeepRestEstimator>()), 6u);
}

// End-to-end kill-and-restart: a learner checkpoints its publish, the process
// "dies" (registry and learner discarded), and a fresh registry restores the
// exact published model and version from disk.
TEST(CheckpointTest, KillAndRestartRecoversLastCheckpointedVersion) {
  TinySetup s = MakeSetup();
  const std::string path = TempPath("ckpt_restart.bin");
  std::string published_bytes;
  uint64_t published_version = 0;
  size_t trained_through = 0;
  {
    auto model = TrainModel(s);
    ModelRegistry registry;
    IngestPipeline pipeline(model->features(), {.shards = 2});
    registry.Publish(std::move(model));

    ContinualLearnerConfig config;
    config.min_new_windows = 16;
    config.epochs = 1;
    config.validation_regression_factor = 0.0;  // isolate checkpointing
    config.checkpoint_path = path;
    ContinualLearner learner(registry, pipeline, s.learn_windows, config);
    IngestRange(pipeline, s, s.learn_windows, s.total());
    const uint64_t version = learner.RefreshOnce();
    ASSERT_EQ(version, 2u);
    EXPECT_EQ(learner.checkpoints_written(), 1u);
    EXPECT_EQ(learner.checkpoint_failures(), 0u);
    published_bytes = SerializedBytes(*registry.Current().model);
    published_version = registry.version();
    trained_through = learner.trained_through();
  }  // crash: everything in memory is gone

  CheckpointData recovered;
  ASSERT_EQ(RecoverCheckpoint(path, &recovered), RecoverySource::kPrimary);
  ModelRegistry restarted;
  ASSERT_TRUE(restarted.Restore(recovered.model, recovered.version));
  EXPECT_EQ(restarted.version(), published_version);
  EXPECT_EQ(recovered.trained_through, trained_through);
  // The recovered model is bit-identical to what was serving before the
  // crash — estimates after restart reproduce pre-crash estimates exactly.
  EXPECT_EQ(SerializedBytes(*restarted.Current().model), published_bytes);
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());
}

TEST(ContinualLearnerTest, CircuitBreakerRejectsRegressingFineTune) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  // An absurdly strict factor: any measurable regression (and in practice
  // any nonzero validation delta) trips the breaker.
  ContinualLearnerConfig config;
  config.min_new_windows = 16;
  config.epochs = 1;
  config.validation_regression_factor = 1e-6;
  ContinualLearner learner(registry, pipeline, s.learn_windows, config);
  IngestRange(pipeline, s, s.learn_windows, s.total());

  const uint64_t version = learner.RefreshOnce();
  EXPECT_EQ(version, 0u);
  EXPECT_EQ(learner.models_rejected(), 1u);
  EXPECT_EQ(registry.version(), 1u);  // the old model keeps serving
  // Progress still advances: retraining deterministically on the same bad
  // stretch would loop forever.
  EXPECT_EQ(learner.trained_through(), s.total() - 1);
  EXPECT_EQ(learner.RefreshOnce(), 0u);
  EXPECT_EQ(learner.models_rejected(), 1u);  // skipped, not re-rejected
}

}  // namespace
}  // namespace deeprest
