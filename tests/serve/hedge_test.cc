// Hedged estimate requests: the RequestStatus surface (exhaustive name
// coverage, including the new kHedgedDuplicate), and first-result-wins
// semantics through a service whose primary worker is wedged — the hedge
// routes around the stall, exactly one copy resolves the caller's future,
// and the loser is discarded as a counted duplicate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>

#include "src/serve/estimation_service.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

using testutil::ExpectSameEstimates;
using testutil::MakeSetup;
using testutil::TinySetup;
using testutil::TrainModel;

// Satellite: every enumerator has a distinct, non-"unknown" name, and the
// count constant is in lockstep with the enum — adding a status without
// naming it (or without bumping kRequestStatusCount) fails here.
TEST(RequestStatusTest, NameIsExhaustiveAndDistinct) {
  std::set<std::string> names;
  for (size_t i = 0; i < kRequestStatusCount; ++i) {
    const std::string name = RequestStatusName(static_cast<RequestStatus>(i));
    EXPECT_NE(name, "unknown") << "enumerator " << i << " is unnamed";
    EXPECT_FALSE(name.empty()) << "enumerator " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate status name '" << name << "' at enumerator " << i;
  }
  // One past the end is the sentinel — if this is a real name, the count
  // constant lags the enum.
  EXPECT_STREQ(RequestStatusName(static_cast<RequestStatus>(kRequestStatusCount)),
               "unknown");
  EXPECT_EQ(names.count("hedged-duplicate"), 1u);
}

TEST(HedgeTest, HedgeRoutesAroundAWedgedWorkerFirstResultWins) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const EstimateMap oracle = model->EstimateFromFeatures(features);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  // Worker 0 wedges on its first sweep and stays wedged until released;
  // submissions round-robin from shard 0, so the primary copy lands behind
  // the wedge. Worker 1 is held back until the hedge has actually fired
  // (otherwise its steal sweep could rescue the primary first and the test
  // would race), then serves the duplicate from its own shard. The hedge
  // delay is the max_delay cold-start clamp — min_samples is never reached.
  std::atomic<bool> release{false};
  std::atomic<bool> hedge_fired{false};
  EstimationServiceConfig config;
  config.workers = 2;
  config.hedge.enabled = true;
  config.hedge.min_delay = std::chrono::microseconds(100);
  config.hedge.max_delay = std::chrono::microseconds(1000);
  config.hedge.min_samples = 1000000;  // force the cold-start clamp
  config.worker_fault_hook = [&release, &hedge_fired](size_t worker) {
    if (worker == 0) {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      while (!hedge_fired.load() && !release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return WorkerFault::kNone;
  };
  EstimationService service(registry, pipeline, config);

  auto future = service.SubmitFeatures(features);
  // Hold worker 1 until the monitor has actually launched the duplicate.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (service.Counters().hedges_launched == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hedge_fired.store(true);

  ASSERT_EQ(future.wait_for(std::chrono::seconds(30)), std::future_status::ready)
      << "hedge never rescued the wedged primary";
  const auto result = future.get();
  ASSERT_EQ(result.status, RequestStatus::kOk);
  ExpectSameEstimates(result.estimates, oracle);

  ServiceCounters counters = service.Counters();
  EXPECT_GE(counters.hedges_launched, 1u);
  EXPECT_GE(counters.hedges_won, 1u);

  // Release the wedge; the stale primary copy must resolve as a duplicate,
  // not double-set the shared promise or double-count a serve.
  release.store(true);
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.Counters().hedged_duplicates == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  service.Stop();
  counters = service.Counters();
  EXPECT_EQ(counters.hedged_duplicates, 1u);
  EXPECT_EQ(counters.requests_served, 1u);  // the pair serves exactly once
  // Accounting invariant: every submission (duplicates included) reaches
  // exactly one terminal state.
  EXPECT_EQ(counters.requests_submitted,
            counters.requests_served + counters.requests_shed +
                counters.requests_expired + counters.requests_rejected +
                counters.hedged_duplicates);
}

TEST(HedgeTest, FastPrimaryCancelsTheArmedHedge) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  EstimationServiceConfig config;
  config.workers = 2;
  config.hedge.enabled = true;
  // A generous delay: the healthy primary always wins, so every armed hedge
  // is cancelled instead of fired.
  config.hedge.min_delay = std::chrono::milliseconds(500);
  config.hedge.max_delay = std::chrono::milliseconds(500);
  config.hedge.min_samples = 1000000;
  EstimationService service(registry, pipeline, config);

  for (int i = 0; i < 8; ++i) {
    const auto result = service.SubmitFeatures(features).get();
    EXPECT_EQ(result.status, RequestStatus::kOk);
  }
  service.Stop();
  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.requests_served, 8u);
  EXPECT_EQ(counters.hedges_won, 0u);
  EXPECT_EQ(counters.hedged_duplicates, 0u);
  // Nothing fired: every hedge was cancelled (claimed primary or shutdown).
  EXPECT_EQ(counters.hedges_launched, 0u);
}

TEST(HedgeTest, HedgingDisabledLeavesCountersSilent) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  EstimationServiceConfig config;
  config.workers = 2;
  EstimationService service(registry, pipeline, config);
  const auto result = service.SubmitFeatures(features).get();
  EXPECT_EQ(result.status, RequestStatus::kOk);
  service.Stop();
  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.hedges_launched, 0u);
  EXPECT_EQ(counters.hedges_won, 0u);
  EXPECT_EQ(counters.hedged_duplicates, 0u);
}

}  // namespace
}  // namespace deeprest
