#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/core/sanity.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"
#include "src/sim/simulator.h"
#include "src/trace/span.h"

namespace deeprest {
namespace {

// Same three-component application as the estimator tests: small enough that
// training a model (and fine-tuning its clones) takes milliseconds.
Application TinyApp() {
  Application app("tiny");
  ComponentSpec frontend;
  frontend.name = "Frontend";
  frontend.cpu_baseline = 2.0;
  app.AddComponent(frontend);
  ComponentSpec worker;
  worker.name = "Worker";
  worker.cpu_baseline = 1.0;
  app.AddComponent(worker);
  ComponentSpec db;
  db.name = "DB";
  db.stateful = true;
  db.cpu_baseline = 1.5;
  db.initial_disk_mb = 100.0;
  db.write_noise_ops = 0.2;
  db.write_noise_kb = 2.0;
  app.AddComponent(db);

  CostTerm cpu_small;
  cpu_small.base = 0.05;
  CostTerm cpu_mid;
  cpu_mid.base = 0.12;
  CostTerm db_read_cpu;
  db_read_cpu.base = 0.10;
  CostTerm db_write_cpu;
  db_write_cpu.base = 0.08;
  CostTerm iops;
  iops.resource = ResourceKind::kWriteIops;
  iops.base = 1.0;
  CostTerm thr;
  thr.resource = ResourceKind::kWriteThroughput;
  thr.base = 1.5;

  ApiEndpoint read;
  read.name = "/read";
  OpNode read_db{"DB", "find", 1.0, "", {db_read_cpu}, {}};
  OpNode read_worker{"Worker", "get", 1.0, "", {cpu_mid}, {read_db}};
  read.root = OpNode{"Frontend", "read", 1.0, "", {cpu_small}, {read_worker}};
  app.AddApi(read);

  ApiEndpoint write;
  write.name = "/write";
  OpNode write_db{"DB", "insert", 1.0, "", {db_write_cpu, iops, thr}, {}};
  OpNode write_worker{"Worker", "put", 1.0, "", {cpu_mid}, {write_db}};
  write.root = OpNode{"Frontend", "write", 1.0, "", {cpu_small}, {write_worker}};
  app.AddApi(write);
  return app;
}

TrafficSeries RandomTraffic(size_t windows, uint64_t seed) {
  TrafficSeries series({"/read", "/write"}, windows);
  Rng rng(seed);
  for (size_t w = 0; w < windows; ++w) {
    series.set_rate(w, 0, rng.Uniform(10.0, 120.0));
    series.set_rate(w, 1, rng.Uniform(5.0, 60.0));
  }
  return series;
}

struct TinySetup {
  Application app = TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  size_t learn_windows = 96;
  size_t query_windows = 32;
  size_t total() const { return learn_windows + query_windows; }
};

TinySetup MakeSetup(uint64_t seed = 1) {
  TinySetup s;
  Simulator sim(s.app, {.seed = seed});
  sim.Run(RandomTraffic(s.learn_windows, seed), 0, &s.traces, &s.metrics);
  sim.Run(RandomTraffic(s.query_windows, seed + 100), s.learn_windows, &s.traces, &s.metrics);
  return s;
}

EstimatorConfig FastConfig() {
  EstimatorConfig config;
  config.hidden_dim = 8;
  config.epochs = 12;
  config.bptt_chunk = 24;
  config.seed = 3;
  return config;
}

std::unique_ptr<DeepRestEstimator> TrainModel(const TinySetup& s) {
  auto model = std::make_unique<DeepRestEstimator>(FastConfig());
  model->Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  return model;
}

// Streams every trace and metric sample of [from, to) into the pipeline.
void IngestRange(IngestPipeline& pipeline, const TinySetup& s, size_t from, size_t to) {
  const auto keys = s.metrics.Keys();
  for (size_t w = from; w < to; ++w) {
    for (const Trace& trace : s.traces.TracesAt(w)) {
      pipeline.IngestTrace(w, trace);
    }
    for (const MetricKey& key : keys) {
      pipeline.IngestMetric(key, w, s.metrics.At(key, w));
    }
  }
}

// Bitwise equality: both sides must come from the same deterministic forward
// pass over the same weights, so every double matches exactly.
void ExpectSameEstimates(const EstimateMap& a, const EstimateMap& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, estimate] : a) {
    ASSERT_TRUE(b.count(key)) << key.ToString();
    const auto& other = b.at(key);
    EXPECT_EQ(estimate.expected, other.expected) << key.ToString();
    EXPECT_EQ(estimate.lower, other.lower) << key.ToString();
    EXPECT_EQ(estimate.upper, other.upper) << key.ToString();
  }
}

TEST(ModelRegistryTest, EmptyRegistryHasNoSnapshot) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.Current().valid());
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(registry.publish_count(), 0u);
}

TEST(ModelRegistryTest, PublishVersionsMonotonically) {
  ModelRegistry registry;
  auto first = std::make_shared<const DeepRestEstimator>();
  EXPECT_EQ(registry.Publish(first), 1u);
  const ModelSnapshot v1 = registry.Current();
  EXPECT_TRUE(v1.valid());
  EXPECT_EQ(v1.version, 1u);
  EXPECT_EQ(v1.model.get(), first.get());

  EXPECT_EQ(registry.Publish(std::make_unique<DeepRestEstimator>()), 2u);
  EXPECT_EQ(registry.version(), 2u);
  EXPECT_EQ(registry.Current().version, 2u);
  // The old snapshot's reader still holds version 1, untouched.
  EXPECT_EQ(v1.model.get(), first.get());
}

TEST(IngestPipelineTest, FoldReconstructsFeaturesAndMetricsExactly) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);

  IngestPipeline pipeline(fx, {.shards = 4});
  // Concurrent producers, interleaved windows.
  std::vector<std::thread> producers;
  const size_t kProducers = 3;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto keys = s.metrics.Keys();
      for (size_t w = p; w < s.total(); w += kProducers) {
        for (const Trace& trace : s.traces.TracesAt(w)) {
          pipeline.IngestTrace(w, trace);
        }
        for (const MetricKey& key : keys) {
          pipeline.IngestMetric(key, w, s.metrics.At(key, w));
        }
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  EXPECT_EQ(pipeline.WindowFrontier(), s.total());
  EXPECT_EQ(pipeline.total_traces(), s.traces.total_traces());

  EXPECT_EQ(pipeline.Fold(s.total()), s.total());
  EXPECT_EQ(pipeline.featured_windows(), s.total());
  EXPECT_EQ(pipeline.IngestLag(), 0u);

  // The incrementally maintained feature series must equal a from-scratch
  // extraction over the original collector.
  const auto expected = fx.ExtractSeries(s.traces, 0, s.total());
  const auto actual = pipeline.FeatureSlice(0, s.total());
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t w = 0; w < expected.size(); ++w) {
    EXPECT_EQ(actual[w], expected[w]) << "window " << w;
  }

  const MetricsStore folded = pipeline.MetricsCopy();
  for (const MetricKey& key : s.metrics.Keys()) {
    for (size_t w = 0; w < s.total(); ++w) {
      EXPECT_DOUBLE_EQ(folded.At(key, w), s.metrics.At(key, w)) << key.ToString();
    }
  }
}

TEST(IngestPipelineTest, IncrementalFoldsMatchOneShotFold) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);

  IngestPipeline incremental(fx, {.shards = 2});
  for (size_t w = 0; w < s.total(); ++w) {
    IngestRange(incremental, s, w, w + 1);
    incremental.Fold(w + 1);
  }
  IngestPipeline one_shot(fx, {.shards = 2});
  IngestRange(one_shot, s, 0, s.total());
  one_shot.Fold(s.total());

  const auto a = incremental.FeatureSlice(0, s.total());
  const auto b = one_shot.FeatureSlice(0, s.total());
  ASSERT_EQ(a.size(), b.size());
  for (size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w], b[w]) << "window " << w;
  }
}

TEST(IngestPipelineTest, LateEventsFoldIntoTruthButNotFeatures) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);

  IngestPipeline pipeline(fx, {.shards = 2});
  IngestRange(pipeline, s, 0, 8);
  pipeline.Fold(8);  // seals windows [0, 8)
  const auto sealed = pipeline.FeatureSlice(0, 8);

  // A straggler trace for already-sealed window 2.
  pipeline.IngestTrace(2, s.traces.TracesAt(2).front());
  pipeline.Fold(8);
  EXPECT_EQ(pipeline.late_events(), 1u);
  // Ground truth grew by the late trace...
  size_t original = 0;
  for (size_t w = 0; w < 8; ++w) {
    original += s.traces.TracesAt(w).size();
  }
  EXPECT_EQ(pipeline.TracesCopy(0, 8).total_traces(), original + 1);
  // ...but the sealed features did not move.
  const auto after = pipeline.FeatureSlice(0, 8);
  for (size_t w = 0; w < 8; ++w) {
    EXPECT_EQ(after[w], sealed[w]) << "window " << w;
  }
}

// Satellite: the const inference surface is multi-thread safe. Eight threads
// hammering EstimateFromFeatures must each reproduce the single-threaded
// result bit for bit.
TEST(ConcurrentInferenceTest, EightThreadsMatchSingleThreaded) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const EstimateMap reference = model->EstimateFromFeatures(features);

  constexpr size_t kThreads = 8;
  std::vector<EstimateMap> results(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = model->EstimateFromFeatures(features); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    ExpectSameEstimates(results[t], reference);
  }
}

TEST(EstimationServiceTest, ConcurrentRequestsNeverMixModelVersions) {
  TinySetup s = MakeSetup();
  auto v1_model = TrainModel(s);
  const auto features = v1_model->features().ExtractSeries(s.traces, s.learn_windows, s.total());

  // v2 = fine-tuned clone; compute both single-threaded references up front.
  std::unique_ptr<DeepRestEstimator> v2_model = v1_model->Clone();
  ASSERT_NE(v2_model, nullptr);
  v2_model->ContinueLearning(s.traces, s.metrics, s.learn_windows, s.total(), 2);
  const EstimateMap ref_v1 = v1_model->EstimateFromFeatures(features);
  const EstimateMap ref_v2 = v2_model->EstimateFromFeatures(features);

  ModelRegistry registry;
  IngestPipeline pipeline(v1_model->features(), {.shards = 2});
  registry.Publish(std::move(v1_model));

  EstimationServiceConfig config;
  config.workers = 4;
  config.max_batch = 4;
  EstimationService service(registry, pipeline, config);

  // Clients submit while the main thread hot-swaps v2 mid-run.
  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 8;
  std::vector<std::future<EstimationService::EstimateResult>> futures(kClients * kPerClient);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        futures[c * kPerClient + i] = service.SubmitFeatures(features);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  registry.Publish(std::move(v2_model));
  for (auto& client : clients) {
    client.join();
  }

  size_t v1_served = 0;
  size_t v2_served = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    // Every result must be bit-identical to exactly one version's reference:
    // a batch serves all of its requests from one snapshot, so no request
    // can observe weights from two versions.
    if (result.model_version == 1) {
      ++v1_served;
      ExpectSameEstimates(result.estimates, ref_v1);
    } else {
      ASSERT_EQ(result.model_version, 2u);
      ++v2_served;
      ExpectSameEstimates(result.estimates, ref_v2);
    }
  }
  EXPECT_EQ(v1_served + v2_served, kClients * kPerClient);

  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.requests_served, kClients * kPerClient);
  EXPECT_EQ(counters.model_version, 2u);
}

TEST(EstimationServiceTest, MicroBatchingCoalescesBackedUpQueue) {
  TinySetup s = MakeSetup();
  ModelRegistry registry;
  auto model = TrainModel(s);
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  EstimationServiceConfig config;
  config.workers = 1;  // one worker: submissions outpace serving
  config.max_batch = 8;
  EstimationService service(registry, pipeline, config);

  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(64);
  for (size_t i = 0; i < 64; ++i) {
    futures.push_back(service.SubmitFeatures(features));
  }
  for (auto& future : futures) {
    (void)future.get();
  }
  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.requests_served, 64u);
  EXPECT_GE(counters.max_batch_size, 2u);
  EXPECT_LE(counters.max_batch_size, config.max_batch);
  EXPECT_LT(counters.batches_dispatched, 64u);
}

TEST(EstimationServiceTest, SanityCheckMatchesDirectChecker) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  IngestRange(pipeline, s, 0, s.total());
  pipeline.Fold(s.total());
  const DeepRestEstimator* raw_model = model.get();
  registry.Publish(std::move(model));

  EstimationService service(registry, pipeline);
  const auto result = service.SubmitSanityCheck(s.learn_windows, s.total()).get();
  EXPECT_EQ(result.model_version, 1u);
  EXPECT_EQ(result.from, s.learn_windows);
  EXPECT_EQ(result.to, s.total());

  const EstimateMap expected =
      raw_model->EstimateFromFeatures(pipeline.FeatureSlice(s.learn_windows, s.total()));
  const auto direct =
      SanityChecker().Detect(expected, pipeline.MetricsCopy(), s.learn_windows, s.total());
  ASSERT_EQ(result.events.size(), direct.size());
  for (size_t e = 0; e < direct.size(); ++e) {
    EXPECT_EQ(result.events[e].start_window, direct[e].start_window);
    EXPECT_EQ(result.events[e].end_window, direct[e].end_window);
    EXPECT_DOUBLE_EQ(result.events[e].peak_score, direct[e].peak_score);
  }
}

TEST(EstimationServiceTest, SanityCheckClampsToFeaturedWindows) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  IngestRange(pipeline, s, 0, s.learn_windows + 8);
  pipeline.Fold(s.learn_windows + 8);
  registry.Publish(std::move(model));

  EstimationService service(registry, pipeline);
  // Asks beyond the featured prefix; the service clamps instead of reading
  // unsealed windows.
  const auto result = service.SubmitSanityCheck(s.learn_windows, s.total()).get();
  EXPECT_EQ(result.to, s.learn_windows + 8);
}

TEST(EstimationServiceTest, UnpublishedRegistryYieldsVersionZero) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);
  ModelRegistry registry;
  IngestPipeline pipeline(fx, {.shards = 2});
  EstimationService service(registry, pipeline);
  const auto result = service.SubmitFeatures({{1.0f, 2.0f}}).get();
  EXPECT_EQ(result.model_version, 0u);
  EXPECT_TRUE(result.estimates.empty());
}

TEST(ContinualLearnerTest, RefreshOncePublishesFineTunedClone) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);

  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  const DeepRestEstimator* base = model.get();
  registry.Publish(std::move(model));

  ContinualLearnerConfig config;
  config.min_new_windows = 16;
  config.epochs = 2;
  ContinualLearner learner(registry, pipeline, s.learn_windows, config);

  // Nothing ingested yet: refresh must skip.
  EXPECT_EQ(learner.RefreshOnce(), 0u);
  EXPECT_EQ(registry.version(), 1u);

  IngestRange(pipeline, s, s.learn_windows, s.total());
  const uint64_t version = learner.RefreshOnce();
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(registry.version(), 2u);
  // Live watermark: the frontier window itself may still be receiving data.
  EXPECT_EQ(learner.trained_through(), s.total() - 1);

  const ModelSnapshot current = registry.Current();
  ASSERT_TRUE(current.valid());
  EXPECT_TRUE(current.model->trained());
  // The published refresh is a fine-tuned clone, not the base model: a clone
  // starts with a fresh loss history, so after the refresh it holds exactly
  // the fine-tuning epochs.
  EXPECT_NE(current.model.get(), base);
  EXPECT_EQ(current.model->epoch_losses().size(), config.epochs);

  // Not enough new windows since the last refresh: skip again.
  EXPECT_EQ(learner.RefreshOnce(), 0u);
  EXPECT_EQ(learner.refreshes_published(), 1u);
}

TEST(ContinualLearnerTest, BackgroundThreadPublishesWhileServing) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  registry.Publish(std::move(model));

  ContinualLearnerConfig learner_config;
  learner_config.min_new_windows = 8;
  learner_config.epochs = 1;
  learner_config.poll_interval = std::chrono::milliseconds(1);
  ContinualLearner learner(registry, pipeline, s.learn_windows, learner_config);

  EstimationServiceConfig service_config;
  service_config.workers = 2;
  EstimationService service(registry, pipeline, service_config);

  learner.Start();
  IngestRange(pipeline, s, s.learn_windows, s.total());
  // Keep requests in flight while the learner retrains and swaps.
  uint64_t last_version = 0;
  for (int spin = 0; spin < 2000 && registry.version() < 2; ++spin) {
    const auto result = service.SubmitFeatures(features).get();
    last_version = result.model_version;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  learner.Stop();
  EXPECT_GE(registry.version(), 2u);
  EXPECT_GE(learner.refreshes_published(), 1u);
  EXPECT_GE(last_version, 1u);
}

// --- Robustness: admission control and degraded-mode ingestion ---

TEST(IngestPipelineTest, RejectsBrokenTracesAtTheDoor) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);
  IngestPipeline pipeline(fx, {.shards = 2});

  Trace empty(1001, "/read");
  ASSERT_EQ(ValidateTrace(empty), TraceDefect::kEmpty);

  Trace negative(1002, "/read");
  negative.AddSpan("Frontend", "read", kNoParent);
  negative.SetSpanTiming(0, 1000, 400);  // ends before it starts
  ASSERT_EQ(ValidateTrace(negative), TraceDefect::kNegativeDuration);

  Trace backwards(1003, "/read");
  const SpanIndex root = backwards.AddSpan("Frontend", "read", kNoParent);
  const SpanIndex child = backwards.AddSpan("Worker", "get", root);
  backwards.SetSpanTiming(root, 500, 1500);
  backwards.SetSpanTiming(child, 100, 800);  // child starts before its parent
  ASSERT_EQ(ValidateTrace(backwards), TraceDefect::kNonMonotonicStart);

  EXPECT_FALSE(pipeline.IngestTrace(0, empty));
  EXPECT_FALSE(pipeline.IngestTrace(0, negative));
  EXPECT_FALSE(pipeline.IngestTrace(0, backwards));
  EXPECT_TRUE(pipeline.IngestTrace(0, s.traces.TracesAt(0).front()));
  // Rejected traces still advance the frontier: an all-garbage window must
  // seal (degraded), not stall the fold.
  EXPECT_EQ(pipeline.WindowFrontier(), 1u);
  EXPECT_EQ(pipeline.rejected_traces(), 3u);
  EXPECT_EQ(pipeline.total_traces(), 1u);

  pipeline.Fold(1);
  const auto quality = pipeline.QualitySlice(0, 1);
  ASSERT_EQ(quality.size(), 1u);
  // One of four observed arrivals survived admission control.
  EXPECT_DOUBLE_EQ(quality[0].trace_coverage, 0.25);
  EXPECT_TRUE(quality[0].degraded());
  // None of the rejected traces leaked into the ground-truth collector.
  EXPECT_EQ(pipeline.TracesCopy(0, 1).total_traces(), 1u);
}

TEST(IngestPipelineTest, DedupeDropsRedeliveredTraces) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);
  IngestPipelineConfig config;
  config.shards = 4;
  config.dedupe_traces = true;
  IngestPipeline pipeline(fx, config);

  const Trace& trace = s.traces.TracesAt(0).front();
  ASSERT_NE(trace.trace_id(), 0u);
  EXPECT_TRUE(pipeline.IngestTrace(0, trace));
  EXPECT_FALSE(pipeline.IngestTrace(0, trace));  // at-least-once re-delivery
  EXPECT_EQ(pipeline.total_traces(), 1u);
  EXPECT_EQ(pipeline.duplicate_traces(), 1u);
  EXPECT_EQ(pipeline.rejected_traces(), 0u);

  // With dedupe off (the default) the same re-delivery is accepted — offline
  // replay paths depend on that.
  IngestPipeline replay(fx, {.shards = 4});
  EXPECT_TRUE(replay.IngestTrace(0, trace));
  EXPECT_TRUE(replay.IngestTrace(0, trace));
  EXPECT_EQ(replay.total_traces(), 2u);
  EXPECT_EQ(replay.duplicate_traces(), 0u);
}

TEST(IngestPipelineTest, EmptyWindowImputesFeaturesAndDropsQuality) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);
  IngestPipeline pipeline(fx, {.shards = 2});

  const auto keys = s.metrics.Keys();
  for (size_t w = 0; w < 10; ++w) {
    if (w != 8) {  // window 8: collector outage, traces vanish entirely
      for (const Trace& trace : s.traces.TracesAt(w)) {
        pipeline.IngestTrace(w, trace);
      }
    }
    for (const MetricKey& key : keys) {
      pipeline.IngestMetric(key, w, s.metrics.At(key, w));
    }
  }
  pipeline.Fold(10);

  const auto features = pipeline.FeatureSlice(0, 10);
  const auto quality = pipeline.QualitySlice(0, 10);
  ASSERT_EQ(features.size(), 10u);
  // The empty window's features were carried forward from window 7, and the
  // window is flagged as untrustworthy rather than read as "zero traffic".
  EXPECT_EQ(features[8], features[7]);
  EXPECT_TRUE(quality[8].imputed);
  EXPECT_DOUBLE_EQ(quality[8].trace_coverage, 0.0);
  EXPECT_DOUBLE_EQ(quality[8].score, 0.0);
  EXPECT_EQ(pipeline.imputed_windows(), 1u);
  // Neighbors sealed at full quality.
  EXPECT_FALSE(quality[7].degraded());
  EXPECT_FALSE(quality[9].degraded());
}

TEST(IngestPipelineTest, MetricGapsAreCarriedForwardNotZero) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);
  IngestPipeline pipeline(fx, {.shards = 2});

  const auto keys = s.metrics.Keys();
  ASSERT_FALSE(keys.empty());
  const MetricKey gapped = keys.front();
  for (size_t w = 0; w < 4; ++w) {
    for (const Trace& trace : s.traces.TracesAt(w)) {
      pipeline.IngestTrace(w, trace);
    }
    for (const MetricKey& key : keys) {
      if (w == 2 && key == gapped) {
        continue;  // lost scrape
      }
      pipeline.IngestMetric(key, w, s.metrics.At(key, w));
    }
  }
  pipeline.Fold(4);

  // The missing scrape folded to the previous window's value, not a literal
  // zero the sanity checker would read as a crash.
  MetricsStore folded = pipeline.MetricsCopy();
  EXPECT_DOUBLE_EQ(folded.At(gapped, 2), s.metrics.At(gapped, 1));
  EXPECT_EQ(pipeline.imputed_metrics(), 1u);
  const auto quality = pipeline.QualitySlice(0, 4);
  EXPECT_LT(quality[2].metric_coverage, 1.0);
  EXPECT_GT(quality[2].metric_coverage, 0.0);
  EXPECT_FALSE(quality[1].degraded());

  // A late-arriving real sample replaces the imputation.
  pipeline.IngestMetric(gapped, 2, s.metrics.At(gapped, 2));
  pipeline.Fold(4);
  folded = pipeline.MetricsCopy();
  EXPECT_DOUBLE_EQ(folded.At(gapped, 2), s.metrics.At(gapped, 2));
}

TEST(IngestPipelineTest, RenormalizationRescalesPartialWindows) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);
  IngestPipelineConfig config;
  config.shards = 1;
  config.renorm_threshold = 0.5;
  IngestPipeline pipeline(fx, config);

  // Mirror of the pipeline's expected-volume tracking: renormalized windows
  // do not update the EWMA (a degraded stretch must not drag it down).
  const auto keys = s.metrics.Keys();
  double ewma = 0.0;
  size_t warmup_renormed = 0;
  for (size_t w = 0; w < 8; ++w) {
    for (const Trace& trace : s.traces.TracesAt(w)) {
      pipeline.IngestTrace(w, trace);
    }
    for (const MetricKey& key : keys) {
      pipeline.IngestMetric(key, w, s.metrics.At(key, w));
    }
    const double count = static_cast<double>(s.traces.TracesAt(w).size());
    ASSERT_GT(count, 0.0);
    if (ewma >= 1.0 && count < config.renorm_threshold * ewma) {
      ++warmup_renormed;  // natural traffic dip below threshold
    } else {
      ewma = ewma <= 0.0 ? count : config.ewma_alpha * count + (1.0 - config.ewma_alpha) * ewma;
    }
  }
  // Window 8: only one trace survives — far below the expected volume.
  ASSERT_GT(ewma * config.renorm_threshold, 1.0);
  pipeline.IngestTrace(8, s.traces.TracesAt(8).front());
  for (const MetricKey& key : keys) {
    pipeline.IngestMetric(key, 8, s.metrics.At(key, 8));
  }
  pipeline.Fold(9);

  const auto quality = pipeline.QualitySlice(0, 9);
  EXPECT_TRUE(quality[8].renormalized);
  EXPECT_LT(quality[8].trace_coverage, 1.0);
  EXPECT_EQ(pipeline.renormalized_windows(), warmup_renormed + 1);

  // The sealed features are exactly the observed partial mix rescaled to the
  // expected volume.
  TraceCollector partial;
  partial.Collect(8, s.traces.TracesAt(8).front());
  std::vector<float> expected = fx.ExtractWindow(partial, 8);
  const float scale = static_cast<float>(ewma / 1.0);
  for (float& f : expected) {
    f *= scale;
  }
  EXPECT_EQ(pipeline.FeatureSlice(8, 9).front(), expected);
}

// --- Robustness: overload protection and lifecycle ---

TEST(EstimationServiceTest, SubmitAfterStopReturnsRejected) {
  TinySetup s = MakeSetup();
  FeatureExtractor fx;
  fx.LearnRange(s.traces, 0, s.learn_windows);
  ModelRegistry registry;
  IngestPipeline pipeline(fx, {.shards = 2});
  EstimationService service(registry, pipeline);
  service.Stop();

  const auto estimate = service.SubmitFeatures({{1.0f, 2.0f}}).get();
  EXPECT_EQ(estimate.status, RequestStatus::kRejectedStopped);
  EXPECT_TRUE(estimate.estimates.empty());
  const auto sanity = service.SubmitSanityCheck(0, 8).get();
  EXPECT_EQ(sanity.status, RequestStatus::kRejectedStopped);
  EXPECT_TRUE(sanity.events.empty());

  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.requests_submitted, 2u);
  EXPECT_EQ(counters.requests_rejected, 2u);
  EXPECT_EQ(counters.requests_served, 0u);
}

TEST(EstimationServiceTest, BoundedQueueShedsUnderOverload) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const EstimateMap reference = model->EstimateFromFeatures(features);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  for (const ShedPolicy policy : {ShedPolicy::kRejectNew, ShedPolicy::kDropOldest}) {
    EstimationServiceConfig config;
    config.workers = 1;  // submissions far outpace serving
    config.max_batch = 1;
    config.batch_wait = std::chrono::microseconds(0);
    config.max_queue = 2;
    config.shed_policy = policy;
    EstimationService service(registry, pipeline, config);

    constexpr size_t kRequests = 48;
    std::vector<std::future<EstimationService::EstimateResult>> futures;
    futures.reserve(kRequests);
    for (size_t i = 0; i < kRequests; ++i) {
      futures.push_back(service.SubmitFeatures(features));
    }
    size_t ok = 0;
    size_t shed = 0;
    for (auto& future : futures) {
      const auto result = future.get();
      if (result.status == RequestStatus::kOk) {
        ++ok;
        // Shedding must not perturb accepted results: bit-exact vs. the
        // single-threaded reference.
        ExpectSameEstimates(result.estimates, reference);
      } else {
        ASSERT_EQ(result.status, RequestStatus::kShed);
        ++shed;
      }
    }
    // The queue stayed bounded: some requests were shed, none were lost, and
    // every future resolved.
    EXPECT_GT(shed, 0u) << RequestStatusName(RequestStatus::kShed);
    EXPECT_GT(ok, 0u);
    EXPECT_EQ(ok + shed, kRequests);
    const ServiceCounters counters = service.Counters();
    EXPECT_EQ(counters.requests_submitted, kRequests);
    EXPECT_EQ(counters.requests_served, ok);
    EXPECT_EQ(counters.requests_shed, shed);
    EXPECT_EQ(counters.queue_depth, 0u);
  }
}

TEST(EstimationServiceTest, DeadlineExpiresQueuedRequests) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  EstimationServiceConfig config;
  config.workers = 1;
  config.max_batch = 1;
  config.batch_wait = std::chrono::microseconds(0);
  EstimationService service(registry, pipeline, config);

  // Head-of-line blocker: a very long series with no deadline keeps the
  // single worker busy well past the queued requests' budgets.
  std::vector<std::vector<float>> huge;
  huge.reserve(features.size() * 200);
  for (size_t repeat = 0; repeat < 200; ++repeat) {
    huge.insert(huge.end(), features.begin(), features.end());
  }
  auto head = service.SubmitFeatures(std::move(huge));

  constexpr size_t kQueued = 8;
  std::vector<std::future<EstimationService::EstimateResult>> futures;
  futures.reserve(kQueued);
  for (size_t i = 0; i < kQueued; ++i) {
    futures.push_back(service.SubmitFeatures(features, std::chrono::milliseconds(1)));
  }

  EXPECT_EQ(head.get().status, RequestStatus::kOk);
  size_t expired = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (result.status == RequestStatus::kExpired) {
      ++expired;
      EXPECT_TRUE(result.estimates.empty());  // no forward pass was spent
    } else {
      EXPECT_EQ(result.status, RequestStatus::kOk);
    }
  }
  EXPECT_GT(expired, 0u);
  const ServiceCounters counters = service.Counters();
  EXPECT_EQ(counters.requests_expired, expired);
  EXPECT_EQ(counters.requests_submitted, kQueued + 1);
}

}  // namespace
}  // namespace deeprest
