// Sharded-queue semantics under concurrency (run under TSan via the
// chaos-tsan preset): the per-worker shards with round-robin submission and
// work stealing must preserve the PR-2 service contract exactly — bounded
// capacity with both shed policies, per-request deadlines, kRejectedStopped
// after Stop, drain-on-Stop — and must never lose a request: every submitted
// future resolves with a terminal status and the counters balance.
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/estimation_service.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

using testutil::MakeSetup;
using testutil::TinySetup;
using testutil::TrainModel;

struct Tally {
  size_t ok = 0;
  size_t shed = 0;
  size_t expired = 0;
  size_t rejected = 0;
  size_t total() const { return ok + shed + expired + rejected; }
};

Tally Resolve(std::vector<std::future<EstimationService::EstimateResult>>& futures) {
  Tally tally;
  for (auto& future : futures) {
    switch (future.get().status) {
      case RequestStatus::kOk:
        ++tally.ok;
        break;
      case RequestStatus::kShed:
        ++tally.shed;
        break;
      case RequestStatus::kExpired:
        ++tally.expired;
        break;
      case RequestStatus::kRejectedStopped:
        ++tally.rejected;
        break;
      case RequestStatus::kHedgedDuplicate:
        // Hedged duplicates are folded into the primary's result upstream;
        // a future never resolves with this status, but the tally must stay
        // exhaustive so new statuses can't silently vanish.
        break;
    }
  }
  return tally;
}

void ExpectBalanced(const ServiceCounters& counters) {
  EXPECT_EQ(counters.requests_submitted, counters.requests_served + counters.requests_shed +
                                             counters.requests_expired +
                                             counters.requests_rejected);
}

TEST(ShardedQueueTest, ConcurrentSubmitAndHotSwapLosesNothing) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(model);
  EstimationServiceConfig config;
  config.workers = 4;
  config.max_batch = 4;
  EstimationService service(registry, pipeline, config);

  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows,
                                                        s.learn_windows + 4);
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 24;
  std::vector<std::vector<std::future<EstimationService::EstimateResult>>> futures(kThreads);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(service.SubmitFeatures(features));
      }
    });
  }
  // Hot swaps race the submissions: shard pickup must keep one snapshot per
  // batch regardless of which shard a request landed on.
  std::thread swapper([&] {
    for (int i = 0; i < 3; ++i) {
      registry.Publish(model->Clone());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& submitter : submitters) {
    submitter.join();
  }
  swapper.join();

  Tally tally;
  for (auto& per_thread : futures) {
    const Tally t = Resolve(per_thread);
    tally.ok += t.ok;
    tally.shed += t.shed;
    tally.expired += t.expired;
    tally.rejected += t.rejected;
  }
  EXPECT_EQ(tally.total(), kThreads * kPerThread);
  EXPECT_EQ(tally.ok, kThreads * kPerThread);  // no bound, no deadline: all served
  service.Stop();
  ExpectBalanced(service.Counters());
  EXPECT_EQ(service.Counters().queue_depth, 0u);
}

TEST(ShardedQueueTest, BoundedQueueShedsUnderConcurrentBurst) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows,
                                                        s.learn_windows + 4);
  for (const ShedPolicy policy : {ShedPolicy::kRejectNew, ShedPolicy::kDropOldest}) {
    SCOPED_TRACE(policy == ShedPolicy::kRejectNew ? "kRejectNew" : "kDropOldest");
    ModelRegistry registry;
    IngestPipeline pipeline(model->features(), {.shards = 2});
    registry.Publish(model);
    EstimationServiceConfig config;
    config.workers = 2;
    config.max_batch = 2;
    config.max_queue = 4;
    config.shed_policy = policy;
    EstimationService service(registry, pipeline, config);

    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 32;
    std::vector<std::vector<std::future<EstimationService::EstimateResult>>> futures(kThreads);
    std::vector<std::thread> submitters;
    // The bound is exact (slot reservation before any push), so a sampler
    // racing the burst must never observe depth above max_queue.
    std::atomic<bool> sampling{true};
    size_t max_depth_seen = 0;
    std::thread sampler([&] {
      while (sampling.load()) {
        max_depth_seen = std::max(max_depth_seen, service.Counters().queue_depth);
        std::this_thread::yield();
      }
    });
    for (size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = 0; i < kPerThread; ++i) {
          // Every third request carries a tight deadline so expiry interleaves
          // with shedding on the sharded queues.
          const auto deadline = i % 3 == 2 ? std::chrono::milliseconds(1)
                                           : std::chrono::milliseconds(0);
          futures[t].push_back(service.SubmitFeatures(features, deadline));
        }
      });
    }
    for (auto& submitter : submitters) {
      submitter.join();
    }
    sampling.store(false);
    sampler.join();
    EXPECT_LE(max_depth_seen, config.max_queue);
    Tally tally;
    for (auto& per_thread : futures) {
      const Tally t = Resolve(per_thread);
      tally.ok += t.ok;
      tally.shed += t.shed;
      tally.expired += t.expired;
      tally.rejected += t.rejected;
    }
    // Every request resolved with a terminal status; the burst far exceeds
    // the bound, so some were shed; nothing was rejected (no Stop yet).
    EXPECT_EQ(tally.total(), kThreads * kPerThread);
    EXPECT_GT(tally.ok, 0u);
    EXPECT_GT(tally.shed, 0u);
    EXPECT_EQ(tally.rejected, 0u);
    service.Stop();
    ExpectBalanced(service.Counters());
    EXPECT_EQ(service.Counters().queue_depth, 0u);
  }
}

TEST(ShardedQueueTest, StopRacingSubmitsResolvesEveryFuture) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(model);
  EstimationServiceConfig config;
  config.workers = 3;
  config.max_batch = 4;
  EstimationService service(registry, pipeline, config);

  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows,
                                                        s.learn_windows + 2);
  constexpr size_t kThreads = 3;
  constexpr size_t kPerThread = 16;
  std::vector<std::vector<std::future<EstimationService::EstimateResult>>> futures(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load()) {
        std::this_thread::yield();
      }
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(service.SubmitFeatures(features));
      }
    });
  }
  go.store(true);
  // Stop lands mid-burst: everything accepted before the flag flips is
  // drained and served, everything after resolves kRejectedStopped.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.Stop();
  for (auto& submitter : submitters) {
    submitter.join();
  }
  Tally tally;
  for (auto& per_thread : futures) {
    const Tally t = Resolve(per_thread);
    tally.ok += t.ok;
    tally.shed += t.shed;
    tally.expired += t.expired;
    tally.rejected += t.rejected;
  }
  EXPECT_EQ(tally.total(), kThreads * kPerThread);
  EXPECT_EQ(tally.shed, 0u);  // unbounded queue: shedding impossible
  ExpectBalanced(service.Counters());
  EXPECT_EQ(service.Counters().queue_depth, 0u);

  // Submit-after-Stop stays well-defined on the sharded queues.
  EXPECT_EQ(service.SubmitFeatures(features).get().status, RequestStatus::kRejectedStopped);
}

// Regression for a shutdown race: a worker's exit decision used to read the
// stop flag *after* checking its own shard, so a push that raced the flag
// could land in an already-swept shard and strand its future forever. Many
// short-lived services with Stop landing immediately behind the submissions
// maximize the chance of hitting that window; every future must still reach
// a terminal status (a hang here, not a failed expectation, is the bug).
TEST(ShardedQueueTest, ImmediateStopUnderFireStrandsNothing) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows,
                                                        s.learn_windows + 2);
  constexpr int kRounds = 40;
  constexpr size_t kThreads = 3;
  constexpr size_t kPerThread = 6;
  for (int round = 0; round < kRounds; ++round) {
    ModelRegistry registry;
    IngestPipeline pipeline(model->features(), {.shards = 2});
    registry.Publish(model);
    EstimationServiceConfig config;
    config.workers = 3;
    config.max_batch = 2;
    config.batch_wait = std::chrono::microseconds(0);
    EstimationService service(registry, pipeline, config);

    std::vector<std::vector<std::future<EstimationService::EstimateResult>>> futures(kThreads);
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        while (!go.load()) {
          std::this_thread::yield();
        }
        for (size_t i = 0; i < kPerThread; ++i) {
          futures[t].push_back(service.SubmitFeatures(features));
        }
      });
    }
    go.store(true);
    service.Stop();  // no grace period: lands right on top of the burst
    for (auto& submitter : submitters) {
      submitter.join();
    }
    size_t resolved = 0;
    for (auto& per_thread : futures) {
      for (auto& future : per_thread) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(20)), std::future_status::ready)
            << "stranded request in round " << round;
        const auto status = future.get().status;
        EXPECT_TRUE(status == RequestStatus::kOk || status == RequestStatus::kRejectedStopped)
            << RequestStatusName(status);
        ++resolved;
      }
    }
    EXPECT_EQ(resolved, kThreads * kPerThread);
    ExpectBalanced(service.Counters());
    EXPECT_EQ(service.Counters().queue_depth, 0u);
  }
}

TEST(ShardedQueueTest, BatchMajorOffMatchesOnBitExactly) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model = TrainModel(s);
  const auto features = model->features().ExtractSeries(s.traces, s.learn_windows,
                                                        s.learn_windows + 6);
  EstimateMap on_result;
  EstimateMap off_result;
  for (const bool batch_major : {true, false}) {
    ModelRegistry registry;
    IngestPipeline pipeline(model->features(), {.shards = 2});
    registry.Publish(model);
    EstimationServiceConfig config;
    config.workers = 2;
    config.max_batch = 4;
    config.batch_major = batch_major;
    EstimationService service(registry, pipeline, config);
    std::vector<std::future<EstimationService::EstimateResult>> futures;
    for (size_t i = 0; i < 8; ++i) {
      futures.push_back(service.SubmitFeatures(features));
    }
    for (auto& future : futures) {
      const auto result = future.get();
      ASSERT_EQ(result.status, RequestStatus::kOk);
      (batch_major ? on_result : off_result) = result.estimates;
    }
  }
  testutil::ExpectSameEstimates(on_result, off_result);
}

}  // namespace
}  // namespace deeprest
