// Soft-memory tiered state cache: budget gauge, CLOCK eviction, cold-tier
// round trips, pin/lease semantics, and the eviction-storm stress test the
// ci.sh ASan leg runs with DEEPREST_STATECACHE_STRESS=1.
#include "src/serve/state_cache.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/quant.h"

namespace deeprest {
namespace {

// Deterministic per-key payload so any tier round trip is checkable.
std::vector<float> PayloadFor(uint64_t key, size_t floats = 32) {
  std::vector<float> hidden(floats);
  for (size_t i = 0; i < floats; ++i) {
    hidden[i] = 0.25f * static_cast<float>(key % 97) + 0.001f * static_cast<float>(i) -
                0.5f * static_cast<float>((key + i) % 3);
  }
  return hidden;
}

void FillState(StateCache& cache, uint64_t key, size_t floats = 32) {
  StateCache::Lease lease = cache.AcquireOrCreate(key);
  ASSERT_TRUE(lease.valid());
  lease.state().hidden = PayloadFor(key, floats);
  lease.state().steps = key;
  lease.state().model_version = 1;
}

TEST(MemoryBudgetTest, GaugeTracksChargeAndRelease) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.budget(), 1000u);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.overage(), 0u);
  // deeprest-lint: allow(resource-pairing) — unbalanced by design: clamp test
  budget.Charge(600);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.overage(), 0u);
  budget.Charge(600);
  EXPECT_EQ(budget.overage(), 200u);
  budget.Release(600);
  EXPECT_EQ(budget.used(), 600u);
  EXPECT_EQ(budget.overage(), 0u);
}

TEST(MemoryBudgetTest, UnlimitedBudgetNeverReportsOverage) {
  MemoryBudget budget(0);
  budget.Charge(size_t{1} << 30);
  EXPECT_EQ(budget.overage(), 0u);
  budget.Release(size_t{1} << 30);
}

TEST(MemoryBudgetTest, ReserveRunsPressureCallbacksUntilUnderBudget) {
  MemoryBudget budget(1000);
  size_t calls = 0;
  const size_t id = budget.RegisterPressure([&](size_t bytes_to_free) {
    ++calls;
    const size_t freed = std::min<size_t>(bytes_to_free, 400);
    budget.Release(freed);
    return freed;
  });
  budget.Reserve(1600);  // 600 over: two 400-byte shrinks get back under
  EXPECT_GE(calls, 2u);
  EXPECT_EQ(budget.overage(), 0u);
  EXPECT_GE(budget.pressure_events(), 1u);
  budget.UnregisterPressure(id);
  budget.Release(budget.used());
}

TEST(MemoryBudgetTest, PressurePassThatFreesNothingStops) {
  MemoryBudget budget(100);
  size_t calls = 0;
  const size_t id = budget.RegisterPressure([&](size_t) {
    ++calls;
    return size_t{0};  // everything "pinned": soft overshoot allowed
  });
  budget.Reserve(500);
  EXPECT_GE(calls, 1u);
  EXPECT_LE(calls, 8u);  // bounded passes, no spin
  EXPECT_EQ(budget.overage(), 400u);
  budget.UnregisterPressure(id);
  budget.Release(budget.used());
}

TEST(ColdTierTest, NamesRoundTrip) {
  ColdTier tier = ColdTier::kFp16;
  EXPECT_TRUE(ParseColdTier("disk", &tier));
  EXPECT_EQ(tier, ColdTier::kDisk);
  EXPECT_TRUE(ParseColdTier("fp16", &tier));
  EXPECT_EQ(tier, ColdTier::kFp16);
  EXPECT_TRUE(ParseColdTier("recompute", &tier));
  EXPECT_EQ(tier, ColdTier::kRecompute);
  EXPECT_FALSE(ParseColdTier("ram", &tier));
  EXPECT_STREQ(ColdTierName(ColdTier::kDisk), "disk");
}

TEST(StateCacheTest, FreshEntryIsMissThenHotHit) {
  StateCacheConfig config;
  config.hot_bytes = 1 << 20;
  StateCache cache(config);
  {
    StateCache::Lease lease = cache.AcquireOrCreate(7);
    ASSERT_TRUE(lease.valid());
    EXPECT_EQ(lease.key(), 7u);
    EXPECT_TRUE(lease.state().hidden.empty());  // fresh = warm-start marker
    lease.state().hidden = PayloadFor(7);
    lease.state().steps = 5;
  }
  {
    StateCache::Lease lease = cache.AcquireOrCreate(7);
    ASSERT_TRUE(lease.valid());
    EXPECT_EQ(lease.state().hidden, PayloadFor(7));
    EXPECT_EQ(lease.state().steps, 5u);
  }
  const StateCacheCounters counters = cache.Counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hot_hits, 1u);
  EXPECT_EQ(counters.hot_entries, 1u);
}

TEST(StateCacheTest, AcquireWithoutCreateMissesCleanly) {
  StateCache cache(StateCacheConfig{});
  StateCache::Lease lease = cache.Acquire(42);
  EXPECT_FALSE(lease.valid());
  EXPECT_EQ(cache.Counters().misses, 1u);
  EXPECT_EQ(cache.Counters().hot_entries, 0u);
}

TEST(StateCacheTest, HotCapEvictsInClockOrderToFp16) {
  StateCacheConfig config;
  // 32 floats + overhead is ~240 bytes per entry: cap at ~6 entries.
  config.hot_bytes = 1500;
  config.cold_tier = ColdTier::kFp16;
  config.cold_bytes = 1 << 20;
  StateCache cache(config);
  for (uint64_t key = 1; key <= 20; ++key) {
    FillState(cache, key);
  }
  const StateCacheCounters counters = cache.Counters();
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_EQ(counters.compressions, counters.evictions);
  EXPECT_LE(counters.hot_resident_bytes, config.hot_bytes);
  EXPECT_GT(counters.cold_entries, 0u);
}

TEST(StateCacheTest, Fp16PromotionIsWithinHalfPrecision) {
  StateCacheConfig config;
  config.hot_bytes = 600;  // ~2 entries: the first insert gets demoted fast
  config.cold_tier = ColdTier::kFp16;
  StateCache cache(config);
  FillState(cache, 1);
  for (uint64_t key = 2; key <= 8; ++key) {
    FillState(cache, key);  // push key 1 out of the hot tier
  }
  ASSERT_GT(cache.Counters().compressions, 0u);
  StateCache::Lease lease = cache.AcquireOrCreate(1);
  ASSERT_TRUE(lease.valid());
  const std::vector<float> expected = PayloadFor(1);
  ASSERT_EQ(lease.state().hidden.size(), expected.size());
  EXPECT_EQ(lease.state().steps, 1u);
  for (size_t i = 0; i < expected.size(); ++i) {
    // Round-to-nearest-even binary16: relative error bounded by 2^-11.
    const float bound = std::abs(expected[i]) * (1.0f / 2048.0f) + 1e-6f;
    EXPECT_NEAR(lease.state().hidden[i], expected[i], bound) << "index " << i;
    // And exactly the value the quantizer produces, not merely close.
    EXPECT_EQ(lease.state().hidden[i], HalfToFloat(FloatToHalf(expected[i])));
  }
  EXPECT_GT(cache.Counters().cold_hits, 0u);
}

TEST(StateCacheTest, DiskSpillRoundTripsBitExact) {
  StateCacheConfig config;
  config.hot_bytes = 600;
  config.cold_tier = ColdTier::kDisk;
  config.slab_path = ::testing::TempDir() + "state_cache_slab_roundtrip.bin";
  config.slab_slot_payload_bytes = 256;
  config.slab_slots = 64;
  StateCache cache(config);
  ASSERT_TRUE(cache.disk_ok());
  FillState(cache, 1);
  for (uint64_t key = 2; key <= 8; ++key) {
    FillState(cache, key);
  }
  ASSERT_GT(cache.Counters().spills, 0u);
  StateCache::Lease lease = cache.AcquireOrCreate(1);
  ASSERT_TRUE(lease.valid());
  const std::vector<float> expected = PayloadFor(1);
  ASSERT_EQ(lease.state().hidden.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // Raw float bits through the slab: bitwise equality, not tolerance.
    EXPECT_EQ(lease.state().hidden[i], expected[i]) << "index " << i;
  }
  EXPECT_EQ(lease.state().steps, 1u);
  EXPECT_EQ(lease.state().model_version, 1u);
  std::remove(config.slab_path.c_str());
}

TEST(StateCacheTest, TornSlabSlotFailsClosedAsMiss) {
  StateCacheConfig config;
  config.hot_bytes = 600;
  config.cold_tier = ColdTier::kDisk;
  config.slab_path = ::testing::TempDir() + "state_cache_slab_torn.bin";
  config.slab_slots = 64;
  StateCache cache(config);
  ASSERT_TRUE(cache.disk_ok());
  FillState(cache, 1);
  for (uint64_t key = 2; key <= 8; ++key) {
    FillState(cache, key);
  }
  ASSERT_GT(cache.Counters().spills, 0u);
  // Corrupt every slot payload byte region: whichever slot key 1 landed in,
  // its checksum no longer matches.
  {
    FILE* file = std::fopen(config.slab_path.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 4096, SEEK_SET);  // past the superblock
    std::vector<char> junk(64 * (32 + 256), '\x5a');
    std::fwrite(junk.data(), 1, junk.size(), file);
    std::fclose(file);
  }
  const uint64_t drops_before = cache.Counters().drops;
  StateCache::Lease lease = cache.AcquireOrCreate(1);
  ASSERT_TRUE(lease.valid());
  // The torn slot reads as a miss: a fresh warm-start entry, never garbage.
  EXPECT_TRUE(lease.state().hidden.empty());
  EXPECT_GT(cache.Counters().drops, drops_before);
  std::remove(config.slab_path.c_str());
}

TEST(StateCacheTest, RecomputeRebuildsDroppedEntries) {
  StateCacheConfig config;
  config.hot_bytes = 600;
  config.cold_tier = ColdTier::kRecompute;
  StateCache cache(config);
  std::atomic<uint64_t> recompute_calls{0};
  cache.SetRecompute([&](uint64_t key, StreamState* out) {
    recompute_calls.fetch_add(1);
    out->hidden = PayloadFor(key);
    out->steps = key;
    out->model_version = 1;
    return true;
  });
  StateCache::Lease first = cache.AcquireOrCreate(1);
  ASSERT_TRUE(first.valid());
  EXPECT_EQ(first.state().hidden, PayloadFor(1));  // miss -> recompute
  first.Release();
  for (uint64_t key = 2; key <= 8; ++key) {
    StateCache::Lease lease = cache.AcquireOrCreate(key);
  }
  ASSERT_GT(cache.Counters().drops, 0u);  // kRecompute demotions drop
  StateCache::Lease again = cache.AcquireOrCreate(1);
  ASSERT_TRUE(again.valid());
  EXPECT_EQ(again.state().hidden, PayloadFor(1));
  EXPECT_EQ(again.state().steps, 1u);
  EXPECT_GE(recompute_calls.load(), 2u);
  EXPECT_GE(cache.Counters().recomputes, 2u);
}

TEST(StateCacheTest, PinnedEntriesAreNeverEvicted) {
  StateCacheConfig config;
  config.hot_bytes = 600;
  config.cold_tier = ColdTier::kFp16;
  StateCache cache(config);
  StateCache::Lease pinned = cache.AcquireOrCreate(1);
  pinned.state().hidden = PayloadFor(1);
  for (uint64_t key = 2; key <= 30; ++key) {
    FillState(cache, key);  // storm around the pinned entry
  }
  // Still bitwise intact and still hot: the lease pointer stayed valid the
  // whole time (this test running under ASan is the use-after-free proof).
  EXPECT_EQ(pinned.state().hidden, PayloadFor(1));
  pinned.Release();
  StateCache::Lease back = cache.AcquireOrCreate(1);
  EXPECT_EQ(back.state().hidden, PayloadFor(1));
}

TEST(StateCacheTest, ShrinkHotOnAllPinnedFreesNothing) {
  StateCacheConfig config;
  config.hot_bytes = 1 << 20;
  StateCache cache(config);
  StateCache::Lease lease = cache.AcquireOrCreate(1);
  lease.state().hidden = PayloadFor(1);
  EXPECT_EQ(cache.ShrinkHot(1 << 20), 0u);
  EXPECT_EQ(cache.Counters().hot_entries, 1u);
}

TEST(StateCacheTest, ClearDropsUnpinnedButKeepsLeased) {
  StateCacheConfig config;
  config.hot_bytes = 1 << 20;
  StateCache cache(config);
  for (uint64_t key = 1; key <= 10; ++key) {
    FillState(cache, key);
  }
  StateCache::Lease held = cache.AcquireOrCreate(3);
  cache.Clear();
  EXPECT_EQ(cache.Counters().hot_entries, 1u);
  EXPECT_EQ(held.state().hidden, PayloadFor(3));
  held.Release();
  EXPECT_EQ(cache.Counters().cold_entries, 0u);
}

TEST(StateCacheTest, LeaseIsExclusiveAndBlocksSecondAcquirer) {
  StateCacheConfig config;
  config.hot_bytes = 1 << 20;
  StateCache cache(config);
  StateCache::Lease first = cache.AcquireOrCreate(9);
  std::atomic<bool> second_got{false};
  std::thread blocked([&] {
    StateCache::Lease second = cache.AcquireOrCreate(9);
    // Must observe the first lease's mutation: exclusivity means the write
    // below happened before this acquire returned.
    EXPECT_EQ(second.state().steps, 77u);
    second_got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_got.load());  // still parked on the lease
  first.state().steps = 77;
  first.Release();
  blocked.join();
  EXPECT_TRUE(second_got.load());
}

TEST(StateCacheTest, BudgetPressureShrinksHotTier) {
  MemoryBudget budget(4096);
  StateCacheConfig config;
  config.hot_bytes = 1 << 20;  // local cap far above the global budget
  config.cold_tier = ColdTier::kRecompute;
  config.budget = &budget;
  StateCache cache(config);
  for (uint64_t key = 1; key <= 64; ++key) {
    FillState(cache, key);
  }
  const StateCacheCounters counters = cache.Counters();
  EXPECT_GT(counters.pressure_shrinks, 0u);
  EXPECT_GT(counters.evictions, 0u);
  // The gauge settled under budget (nothing is pinned between fills).
  EXPECT_EQ(budget.overage(), 0u);
  EXPECT_EQ(budget.used(), counters.hot_resident_bytes + counters.cold_resident_bytes);
}

TEST(StateCacheTest, DestructorReturnsResidentBytesToGauge) {
  MemoryBudget budget(1 << 20);
  {
    StateCacheConfig config;
    config.budget = &budget;
    StateCache cache(config);
    for (uint64_t key = 1; key <= 8; ++key) {
      FillState(cache, key);
    }
    EXPECT_GT(budget.used(), 0u);
  }
  EXPECT_EQ(budget.used(), 0u);
}

// The ci.sh ASan leg runs this with DEEPREST_STATECACHE_STRESS=1 and a
// deliberately tiny budget: continuous eviction under concurrent leases is
// exactly where a use-after-free or double-account would surface.
TEST(StateCacheTest, EvictionStormUnderConcurrentLeases) {
  const bool stress = std::getenv("DEEPREST_STATECACHE_STRESS") != nullptr;
  const size_t threads = 4;
  const size_t iterations = stress ? 4000 : 400;
  const uint64_t key_space = 64;

  MemoryBudget budget(8192);  // tiny on purpose: constant pressure
  StateCacheConfig config;
  config.hot_bytes = 4096;
  config.cold_tier = ColdTier::kFp16;
  config.cold_bytes = 4096;
  config.budget = &budget;
  StateCache cache(config);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (size_t i = 0; i < iterations; ++i) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const uint64_t key = 1 + rng % key_space;
        StateCache::Lease lease = cache.AcquireOrCreate(key);
        ASSERT_TRUE(lease.valid());
        if (lease.state().hidden.empty()) {
          lease.state().hidden = PayloadFor(key, 16);
        } else {
          // Whatever tier the state came through, it is the key's payload —
          // possibly fp16-rounded, so compare through the quantizer.
          ASSERT_EQ(lease.state().hidden.size(), 16u);
          const std::vector<float> expected = PayloadFor(key, 16);
          for (size_t j = 0; j < expected.size(); ++j) {
            const float exact = expected[j];
            const float rounded = HalfToFloat(FloatToHalf(exact));
            ASSERT_TRUE(lease.state().hidden[j] == exact ||
                        lease.state().hidden[j] == rounded)
                << "key " << key << " index " << j;
          }
        }
        lease.state().steps += 1;
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const StateCacheCounters counters = cache.Counters();
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_LE(counters.hot_resident_bytes, config.hot_bytes);
  // Accounting stayed consistent through the storm.
  EXPECT_EQ(budget.used(), counters.hot_resident_bytes + counters.cold_resident_bytes);
}

TEST(InMemorySnapshotStoreTest, PutGetEraseAndFifoDrop) {
  MemoryBudget budget(1 << 20);
  InMemorySnapshotStore store(/*max_bytes=*/100, &budget);
  EXPECT_TRUE(store.Put(1, std::string(40, 'a')));
  EXPECT_TRUE(store.Put(2, std::string(40, 'b')));
  EXPECT_EQ(store.resident_bytes(), 80u);
  EXPECT_EQ(budget.used(), 80u);
  // A third blob overflows max_bytes: version 1 (oldest) drops.
  EXPECT_TRUE(store.Put(3, std::string(40, 'c')));
  std::string bytes;
  EXPECT_FALSE(store.Get(1, &bytes));
  ASSERT_TRUE(store.Get(2, &bytes));
  EXPECT_EQ(bytes, std::string(40, 'b'));
  EXPECT_EQ(store.dropped(), 1u);
  store.Erase(2);
  EXPECT_FALSE(store.Get(2, &bytes));
  store.Clear();
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_EQ(budget.used(), 0u);
}

TEST(InMemorySnapshotStoreTest, OversizedBlobIsRefused) {
  InMemorySnapshotStore store(/*max_bytes=*/10);
  EXPECT_FALSE(store.Put(1, std::string(11, 'x')));
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(DiskSnapshotStoreTest, RoundTripAndTornFileFailsClosed) {
  const std::string dir = ::testing::TempDir();
  DiskSnapshotStore store(dir);
  const std::string payload = "serialized-model-bytes";
  ASSERT_TRUE(store.Put(5, payload));
  std::string bytes;
  ASSERT_TRUE(store.Get(5, &bytes));
  EXPECT_EQ(bytes, payload);
  EXPECT_GT(store.resident_bytes(), payload.size());
  // Tear the file: flip a payload byte. The checksum must fail it closed.
  {
    const std::string path = dir + "/clone-5.bin";
    FILE* file = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(file, nullptr);
    std::fseek(file, -1, SEEK_END);
    std::fputc('!', file);
    std::fclose(file);
  }
  EXPECT_FALSE(store.Get(5, &bytes));
  store.Erase(5);
  EXPECT_FALSE(store.Get(5, &bytes));
}

}  // namespace
}  // namespace deeprest
