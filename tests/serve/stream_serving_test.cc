// Streamful serving through the tiered state cache, and the ModelRegistry
// retained-clone tier: split-vs-unsplit bit-exactness (including states that
// round-trip through the disk slab between requests), model-version warm
// restarts, and the Restore-vs-retention purge invariants.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/estimation_service.h"
#include "src/serve/model_registry.h"
#include "src/serve/state_cache.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

using testutil::ExpectSameEstimates;
using testutil::MakeSetup;
using testutil::TinySetup;
using testutil::TrainModel;

std::vector<std::vector<std::vector<float>>> SplitSeries(
    const std::vector<std::vector<float>>& series, size_t chunks) {
  std::vector<std::vector<std::vector<float>>> out(chunks);
  const size_t per = (series.size() + chunks - 1) / chunks;
  for (size_t i = 0; i < series.size(); ++i) {
    out[std::min(i / per, chunks - 1)].push_back(series[i]);
  }
  return out;
}

TEST(RegistryRetentionTest, DisplacedClonesAreRetainedAndRematerialized) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> m1(TrainModel(s).release());
  std::shared_ptr<const DeepRestEstimator> m2(TrainModel(s).release());
  std::shared_ptr<const DeepRestEstimator> m3(TrainModel(s).release());

  InMemorySnapshotStore store;
  ModelRegistry registry;
  registry.SetRetention(&store, /*max_retained=*/2);
  EXPECT_EQ(registry.Publish(m1), 1u);  // nothing displaced yet
  EXPECT_EQ(registry.Publish(m2), 2u);  // retains v1
  EXPECT_EQ(registry.Publish(m3), 3u);  // retains v2
  const auto counters = registry.retention_counters();
  EXPECT_EQ(counters.retained, 2u);
  EXPECT_GT(counters.retained_bytes, 0u);

  // A retained clone rematerializes to the same estimates, bit for bit
  // (fp32 serialization round trip).
  const ModelSnapshot old_snapshot = registry.Snapshot(1);
  ASSERT_TRUE(old_snapshot.valid());
  EXPECT_EQ(old_snapshot.version, 1u);
  const auto features =
      m1->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  ExpectSameEstimates(m1->EstimateFromFeatures(features),
                      old_snapshot.model->EstimateFromFeatures(features));
  EXPECT_EQ(registry.retention_counters().retain_hits, 1u);

  // Snapshot(current) is the live model, no store involved.
  EXPECT_EQ(registry.Snapshot(3).model.get(), m3.get());
  // An unretained version is a counted miss, never wrong data.
  EXPECT_FALSE(registry.Snapshot(99).valid());
  EXPECT_EQ(registry.retention_counters().retain_misses, 1u);
}

TEST(RegistryRetentionTest, MaxRetainedEvictsOldestVersion) {
  const TinySetup s = MakeSetup();
  InMemorySnapshotStore store;
  ModelRegistry registry;
  registry.SetRetention(&store, /*max_retained=*/1);
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  const auto counters = registry.retention_counters();
  EXPECT_EQ(counters.retained, 1u);
  EXPECT_EQ(counters.retain_evictions, 1u);
  EXPECT_FALSE(registry.Snapshot(1).valid());
  EXPECT_TRUE(registry.Snapshot(2).valid());
}

// Satellite invariant: a checkpoint Restore while clones sit in the cold
// tier must purge them (no stale-expert resurrection) and release the
// store's budget charge exactly once (no double count).
TEST(RegistryRetentionTest, RestorePurgesColdTieredClonesWithoutDoubleCount) {
  const TinySetup s = MakeSetup();
  MemoryBudget budget(size_t{64} << 20);
  InMemorySnapshotStore store(size_t{64} << 20, &budget);
  ModelRegistry registry;
  registry.SetRetention(&store, /*max_retained=*/4);
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  ASSERT_EQ(registry.retention_counters().retained, 2u);
  ASSERT_GT(budget.used(), 0u);

  // Restore a newer checkpointed model: every pre-restore clone is purged.
  std::shared_ptr<const DeepRestEstimator> restored(TrainModel(s).release());
  ASSERT_TRUE(registry.Restore(restored, /*version=*/10));
  EXPECT_EQ(registry.retention_counters().retained, 0u);
  EXPECT_EQ(store.resident_bytes(), 0u);
  EXPECT_EQ(budget.used(), 0u);  // released exactly once, not twice
  EXPECT_FALSE(registry.Snapshot(1).valid());  // stale experts stay dead
  EXPECT_FALSE(registry.Snapshot(2).valid());

  // Retention keeps working after the restore: the next publish retains the
  // restored model under its own (restored) version.
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  EXPECT_EQ(registry.version(), 11u);
  EXPECT_TRUE(registry.Snapshot(10).valid());
  EXPECT_EQ(registry.retention_counters().retained, 1u);
}

TEST(RegistryRetentionTest, RestoreBelowCurrentVersionStillFails) {
  const TinySetup s = MakeSetup();
  InMemorySnapshotStore store;
  ModelRegistry registry;
  registry.SetRetention(&store, 4);
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  registry.Publish(std::shared_ptr<const DeepRestEstimator>(TrainModel(s).release()));
  std::shared_ptr<const DeepRestEstimator> stale(TrainModel(s).release());
  EXPECT_FALSE(registry.Restore(stale, 1));
  EXPECT_EQ(registry.retention_counters().retained, 1u);  // untouched
}

// A series split across N stream requests must produce, chunk by chunk,
// exactly what direct EstimateFromFeaturesBatchResume calls produce on a
// private cursor — even with a hot tier too small to hold the stream, so the
// state round-trips through the disk slab between requests (bit-exact).
TEST(StreamServingTest, SplitSeriesMatchesDirectResumeThroughDiskTier) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model(TrainModel(s).release());
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const auto chunks = SplitSeries(features, 4);

  ModelRegistry registry;
  registry.Publish(model);
  IngestPipeline pipeline(model->features(), {.shards = 2});

  StateCacheConfig cache_config;
  cache_config.hot_bytes = 64;  // smaller than one entry: evict on release
  cache_config.cold_tier = ColdTier::kDisk;
  cache_config.slab_path = ::testing::TempDir() + "stream_serving_slab.bin";
  cache_config.slab_slot_payload_bytes = 1 << 14;
  cache_config.slab_slots = 256;
  StateCache cache(cache_config);
  ASSERT_TRUE(cache.disk_ok());

  EstimationServiceConfig config;
  config.workers = 1;  // deterministic request order
  config.stream_states = &cache;
  EstimationService service(registry, pipeline, config);

  DeepRestEstimator::StreamCursor direct_cursor;
  for (const auto& chunk : chunks) {
    const std::vector<const std::vector<std::vector<float>>*> batch = {&chunk};
    const std::vector<DeepRestEstimator::StreamCursor*> cursors = {&direct_cursor};
    const EstimateMap direct = model->EstimateFromFeaturesBatchResume(batch, cursors)[0];
    auto result = service.SubmitStreamFeatures(1, chunk).get();
    ASSERT_EQ(result.status, RequestStatus::kOk);
    ExpectSameEstimates(direct, result.estimates);
  }
  const ServiceCounters counters = service.Counters();
  EXPECT_TRUE(counters.state_cache_attached);
  // The tiny hot tier forced the stream through the slab between requests.
  EXPECT_GT(counters.state_spills, 0u);
  EXPECT_GT(counters.state_cold_hits, 0u);
  service.Stop();
  std::remove(cache_config.slab_path.c_str());
}

// Two interleaved streams, each bit-exact against its own private cursor:
// leases keep the per-stream states isolated even through shared batches.
TEST(StreamServingTest, InterleavedStreamsStayIsolated) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model(TrainModel(s).release());
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const auto chunks = SplitSeries(features, 4);

  ModelRegistry registry;
  registry.Publish(model);
  IngestPipeline pipeline(model->features(), {.shards = 2});
  StateCacheConfig cache_config;
  cache_config.hot_bytes = 1 << 20;
  StateCache cache(cache_config);
  EstimationServiceConfig config;
  config.workers = 1;
  config.stream_states = &cache;
  EstimationService service(registry, pipeline, config);

  // Stream A consumes chunks 0..3; stream B consumes the same series with
  // the chunk payloads reversed, so the two states diverge immediately.
  DeepRestEstimator::StreamCursor cursor_a;
  DeepRestEstimator::StreamCursor cursor_b;
  for (size_t i = 0; i < chunks.size(); ++i) {
    const auto& chunk_a = chunks[i];
    const auto& chunk_b = chunks[chunks.size() - 1 - i];
    const EstimateMap direct_a = model->EstimateFromFeaturesBatchResume(
        {&chunk_a}, {&cursor_a})[0];
    const EstimateMap direct_b = model->EstimateFromFeaturesBatchResume(
        {&chunk_b}, {&cursor_b})[0];
    auto future_a = service.SubmitStreamFeatures(100, chunk_a);
    auto future_b = service.SubmitStreamFeatures(200, chunk_b);
    const auto result_a = future_a.get();
    const auto result_b = future_b.get();
    ASSERT_EQ(result_a.status, RequestStatus::kOk);
    ASSERT_EQ(result_b.status, RequestStatus::kOk);
    ExpectSameEstimates(direct_a, result_a.estimates);
    ExpectSameEstimates(direct_b, result_b.estimates);
  }
  service.Stop();
}

// Duplicate-stream requests coalesced into ONE batch must still advance the
// stream sequentially (the rounds path), matching back-to-back direct calls.
TEST(StreamServingTest, DuplicateStreamRequestsInOneBatchRunSequentially) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model(TrainModel(s).release());
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const auto chunks = SplitSeries(features, 4);

  ModelRegistry registry;
  registry.Publish(model);
  IngestPipeline pipeline(model->features(), {.shards = 2});
  StateCacheConfig cache_config;
  cache_config.hot_bytes = 1 << 20;
  StateCache cache(cache_config);
  EstimationServiceConfig config;
  config.workers = 1;
  config.max_batch = 8;
  config.batch_wait = std::chrono::microseconds(20000);  // let them coalesce
  config.stream_states = &cache;
  EstimationService service(registry, pipeline, config);

  DeepRestEstimator::StreamCursor direct_cursor;
  std::vector<EstimateMap> direct;
  direct.reserve(chunks.size());
  for (const auto& chunk : chunks) {
    direct.push_back(
        model->EstimateFromFeaturesBatchResume({&chunk}, {&direct_cursor})[0]);
  }
  // Submit all four chunks without waiting: with one worker and a generous
  // batch_wait they coalesce, and the rounds logic must serialize them.
  std::vector<std::future<EstimationService::EstimateResult>> futures;
  for (const auto& chunk : chunks) {
    futures.push_back(service.SubmitStreamFeatures(7, chunk));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    ASSERT_EQ(result.status, RequestStatus::kOk);
    ExpectSameEstimates(direct[i], result.estimates);
  }
  service.Stop();
}

// A model hot-swap between stream requests warm-restarts the stream (the
// old hidden state is meaningless under new weights) and counts the reset.
TEST(StreamServingTest, ModelSwapWarmRestartsStream) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> v1(TrainModel(s).release());
  auto v2_mutable = TrainModel(s);
  v2_mutable->CompressParametersToFp16();  // make v2 observably different
  std::shared_ptr<const DeepRestEstimator> v2(v2_mutable.release());
  const auto features =
      v1->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const auto chunks = SplitSeries(features, 2);

  ModelRegistry registry;
  registry.Publish(v1);
  IngestPipeline pipeline(v1->features(), {.shards = 2});
  StateCacheConfig cache_config;
  cache_config.hot_bytes = 1 << 20;
  StateCache cache(cache_config);
  EstimationServiceConfig config;
  config.workers = 1;
  config.stream_states = &cache;
  EstimationService service(registry, pipeline, config);

  ASSERT_EQ(service.SubmitStreamFeatures(3, chunks[0]).get().status,
            RequestStatus::kOk);
  registry.Publish(v2);
  // The second chunk runs on v2 from a FRESH cursor, not v1's carried state.
  DeepRestEstimator::StreamCursor fresh;
  const EstimateMap expected =
      v2->EstimateFromFeaturesBatchResume({&chunks[1]}, {&fresh})[0];
  const auto result = service.SubmitStreamFeatures(3, chunks[1]).get();
  ASSERT_EQ(result.status, RequestStatus::kOk);
  EXPECT_EQ(result.model_version, 2u);
  ExpectSameEstimates(expected, result.estimates);
  EXPECT_EQ(service.Counters().state_resets, 1u);
  service.Stop();
}

// Stateless requests keep working unchanged next to stream requests, and a
// stream id without a wired cache degrades to the stateless path.
TEST(StreamServingTest, StatelessRequestsRideAlong) {
  const TinySetup s = MakeSetup();
  std::shared_ptr<const DeepRestEstimator> model(TrainModel(s).release());
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());

  ModelRegistry registry;
  registry.Publish(model);
  IngestPipeline pipeline(model->features(), {.shards = 2});
  StateCacheConfig cache_config;
  StateCache cache(cache_config);
  EstimationServiceConfig config;
  config.workers = 1;
  config.stream_states = &cache;
  EstimationService service(registry, pipeline, config);

  const EstimateMap direct = model->EstimateFromFeatures(features);
  // Plain stateless submission next to a stream request in the same service.
  auto stream_future = service.SubmitStreamFeatures(5, features);
  auto plain_future = service.SubmitFeatures(features);
  ExpectSameEstimates(direct, plain_future.get().estimates);
  ExpectSameEstimates(direct, stream_future.get().estimates);
  service.Stop();

  // No cache wired: the stream id is dropped at submission, stateless path.
  EstimationService bare(registry, pipeline, {});
  ExpectSameEstimates(direct, bare.SubmitStreamFeatures(5, features).get().estimates);
  EXPECT_FALSE(bare.Counters().state_cache_attached);
  bare.Stop();
}

}  // namespace
}  // namespace deeprest
