// Self-healing supervision layer: HealthRegistry staleness accounting, the
// reusable CircuitBreaker, Supervisor incident/backoff/budget/escalation
// state machine (driven deterministically with a ManualHealthClock), the
// Watchdog thread, and watchdog-led worker recovery through the real
// EstimationService — crash, restart, and bit-exact service afterwards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/circuit_breaker.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/serve/health.h"
#include "src/serve/supervisor.h"
#include "tests/serve/test_app.h"

namespace deeprest {
namespace {

using testutil::ExpectSameEstimates;
using testutil::MakeSetup;
using testutil::TinySetup;
using testutil::TrainModel;

// ---------------------------------------------------------------------------
// HealthRegistry
// ---------------------------------------------------------------------------

TEST(HealthRegistryTest, StalenessDrivesStatus) {
  ManualHealthClock clock(1000);
  HealthRegistry registry(&clock);
  HealthHandle handle = registry.Register("worker", 500);
  ASSERT_TRUE(handle.valid());

  // Freshly registered components are pre-stamped healthy.
  ComponentHealth health = registry.Health(handle.id());
  EXPECT_EQ(health.status, HealthStatus::kHealthy);
  EXPECT_EQ(health.last_heartbeat_us, 1000u);
  EXPECT_EQ(health.staleness_us, 0u);

  clock.Advance(400);
  EXPECT_EQ(registry.Health(handle.id()).status, HealthStatus::kHealthy);
  clock.Advance(200);  // staleness 600 > threshold 500
  health = registry.Health(handle.id());
  EXPECT_EQ(health.status, HealthStatus::kSuspect);
  EXPECT_EQ(health.staleness_us, 600u);

  handle.Heartbeat();
  health = registry.Health(handle.id());
  EXPECT_EQ(health.status, HealthStatus::kHealthy);
  EXPECT_EQ(health.staleness_us, 0u);
  EXPECT_EQ(health.heartbeats, 1u);
}

TEST(HealthRegistryTest, MarksAndStoppedExemption) {
  ManualHealthClock clock;
  HealthRegistry registry(&clock);
  HealthHandle handle = registry.Register("learner", 100);

  registry.MarkRestarting(handle.id());
  EXPECT_EQ(registry.Health(handle.id()).status, HealthStatus::kRestarting);
  // A heartbeat clears the mark: the restarted component is back under
  // coverage.
  handle.Heartbeat();
  EXPECT_EQ(registry.Health(handle.id()).status, HealthStatus::kHealthy);

  handle.MarkStopped();
  clock.Advance(1000000);  // arbitrarily stale, but deliberately stopped
  ComponentHealth health = registry.Health(handle.id());
  EXPECT_EQ(health.status, HealthStatus::kStopped);
  EXPECT_EQ(health.staleness_us, 0u);
}

TEST(HealthRegistryTest, RegisterIsIdempotentByName) {
  HealthRegistry registry;
  HealthHandle a = registry.Register("dup", 100);
  HealthHandle b = registry.Register("dup", 999);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(registry.size(), 1u);
  // Thresholds are not updated by re-registration.
  EXPECT_EQ(registry.Health(a.id()).stall_threshold_us, 100u);
}

TEST(HealthRegistryTest, SnapshotCoversEveryComponent) {
  HealthRegistry registry;
  registry.Register("a", 1);
  registry.Register("b", 2);
  const std::vector<ComponentHealth> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].name, "a");
  EXPECT_EQ(snapshot[1].name, "b");
}

TEST(HealthClockTest, SkewedClockShiftsAndClampsAtZero) {
  ManualHealthClock base(100);
  SkewedHealthClock skewed(base);
  EXPECT_EQ(skewed.NowMicros(), 100u);
  skewed.SetSkewMicros(250);
  EXPECT_EQ(skewed.NowMicros(), 350u);
  skewed.SetSkewMicros(-500);  // would go negative: clamps
  EXPECT_EQ(skewed.NowMicros(), 0u);
}

TEST(HealthStatusTest, NamesAreDistinctAndKnown) {
  const HealthStatus all[] = {HealthStatus::kHealthy, HealthStatus::kSuspect,
                              HealthStatus::kRestarting, HealthStatus::kStopped};
  std::vector<std::string> names;
  for (HealthStatus status : all) {
    const std::string name = HealthStatusName(status);
    EXPECT_NE(name, "unknown");
    for (const std::string& seen : names) {
      EXPECT_NE(name, seen);
    }
    names.push_back(name);
  }
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, GateOnlyModeNeverOpens) {
  CircuitBreaker breaker;  // trip_failures = 0
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.failures(), 50u);
  EXPECT_EQ(breaker.counters().trips, 0u);
}

TEST(CircuitBreakerTest, ConsecutiveFailuresTripAndProbeRecovers) {
  CircuitBreakerConfig config;
  config.trip_failures = 3;
  config.open_rejections = 2;
  CircuitBreaker breaker(config);

  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // resets the streak
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();  // third consecutive: trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().trips, 1u);

  // Two rejected attempts move open -> half-open.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // Exactly one probe; racing callers are rejected.
  EXPECT_TRUE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());

  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensForAFullRound) {
  CircuitBreakerConfig config;
  config.trip_failures = 1;
  config.open_rejections = 2;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();  // trips immediately
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());  // half-open probe
  breaker.RecordFailure();       // probe failed: re-open
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.counters().trips, 2u);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());  // next probe after another full round
}

TEST(CircuitBreakerTest, AbandonedProbeFreesTheSlot) {
  CircuitBreakerConfig config;
  config.trip_failures = 1;
  config.open_rejections = 1;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.Allow());  // -> half-open
  EXPECT_TRUE(breaker.Allow());   // probe slot taken
  EXPECT_FALSE(breaker.Allow());  // slot busy
  breaker.AbandonProbe();         // the probe never actually ran
  EXPECT_TRUE(breaker.Allow());   // slot available again — no wedge
}

TEST(CircuitBreakerTest, ValidationRegressedMatchesLegacyGate) {
  // The exact decision the learner's inline breaker used to make.
  EXPECT_FALSE(CircuitBreaker::ValidationRegressed(1.0, 1.0, 1.5));
  EXPECT_FALSE(CircuitBreaker::ValidationRegressed(1.0, 1.5, 1.5));  // at the line
  EXPECT_TRUE(CircuitBreaker::ValidationRegressed(1.0, 1.51, 1.5));
  EXPECT_FALSE(CircuitBreaker::ValidationRegressed(0.0, 0.0, 1.5));  // epsilon guard
  EXPECT_FALSE(CircuitBreaker::ValidationRegressed(1.0, 9.0, 0.0));  // disabled
}

// ---------------------------------------------------------------------------
// Supervisor (deterministic, ManualHealthClock-driven)
// ---------------------------------------------------------------------------

struct SupervisedHarness {
  ManualHealthClock clock{1000};
  HealthRegistry registry{&clock};
  SupervisorConfig config;
  std::unique_ptr<Supervisor> supervisor;
  HealthHandle handle;
  std::atomic<int> restarts{0};
  bool restart_result = true;

  explicit SupervisedHarness(size_t budget = 4, uint64_t threshold_us = 1000) {
    config.base_backoff = std::chrono::milliseconds(10);
    config.max_backoff = std::chrono::milliseconds(40);
    config.restart_budget = budget;
    supervisor = std::make_unique<Supervisor>(registry, config);
    handle = registry.Register("victim", threshold_us);
    supervisor->Watch(handle.id(), [this] {
      restarts.fetch_add(1);
      return restart_result;
    });
  }
};

TEST(SupervisorTest, HealthyComponentNeverTriggersAnything) {
  SupervisedHarness h;
  for (int i = 0; i < 5; ++i) {
    h.clock.Advance(500);
    h.handle.Heartbeat();
    EXPECT_EQ(h.supervisor->ScanOnce(), 0u);
  }
  EXPECT_EQ(h.restarts.load(), 0);
  EXPECT_EQ(h.supervisor->counters().incidents_opened, 0u);
  EXPECT_TRUE(h.supervisor->Incidents().empty());
}

TEST(SupervisorTest, StallOpensIncidentAndMttrClockStartsAtTheFault) {
  SupervisedHarness h;
  // Heartbeats stop at t=1000 (registration stamp). Staleness crosses the
  // 1000us threshold at t=2001.
  h.clock.Set(2500);
  EXPECT_EQ(h.supervisor->ScanOnce(), 1u);  // detection scan restarts immediately
  EXPECT_EQ(h.restarts.load(), 1);

  auto incidents = h.supervisor->Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].component, "victim");
  EXPECT_EQ(incidents[0].quiet_since_us, 1000u);  // the FAULT, not detection
  EXPECT_EQ(incidents[0].detected_at_us, 2500u);
  EXPECT_EQ(incidents[0].detect_us(), 1500u);
  EXPECT_FALSE(incidents[0].recovered());

  // Recovery: heartbeats resume, the next scan closes the incident.
  h.clock.Set(4000);
  h.handle.Heartbeat();
  EXPECT_EQ(h.supervisor->ScanOnce(), 0u);
  incidents = h.supervisor->Incidents();
  ASSERT_TRUE(incidents[0].recovered());
  EXPECT_EQ(incidents[0].recovered_at_us, 4000u);
  EXPECT_EQ(incidents[0].mttr_us(), 3000u);  // fault at 1000 -> recovered at 4000
  const SupervisorCounters counters = h.supervisor->counters();
  EXPECT_EQ(counters.incidents_opened, 1u);
  EXPECT_EQ(counters.incidents_recovered, 1u);
}

TEST(SupervisorTest, RestartsSpaceOutWithCappedExponentialBackoff) {
  SupervisedHarness h;
  h.clock.Set(3000);
  EXPECT_EQ(h.supervisor->ScanOnce(), 1u);  // attempt 1 at 3000
  // Backoff 10ms: scans before 13000us drive nothing.
  h.clock.Set(9000);
  EXPECT_EQ(h.supervisor->ScanOnce(), 0u);
  h.clock.Set(13000);
  EXPECT_EQ(h.supervisor->ScanOnce(), 1u);  // attempt 2
  // Backoff doubles to 20ms.
  h.clock.Set(25000);
  EXPECT_EQ(h.supervisor->ScanOnce(), 0u);
  h.clock.Set(33000);
  EXPECT_EQ(h.supervisor->ScanOnce(), 1u);  // attempt 3
  EXPECT_EQ(h.restarts.load(), 3);
  EXPECT_EQ(h.supervisor->counters().restarts_attempted, 3u);
  EXPECT_EQ(h.supervisor->counters().restarts_succeeded, 3u);
}

TEST(SupervisorTest, BudgetExhaustionEscalatesExactlyOnce) {
  SupervisedHarness h(/*budget=*/2);
  h.restart_result = false;  // a stall cannot be restarted
  std::vector<std::string> escalated;
  h.supervisor->SetEscalationHandler(
      [&escalated](const std::string& name) { escalated.push_back(name); });

  h.clock.Set(5000);
  h.supervisor->ScanOnce();  // attempt 1
  h.clock.Set(100000);
  h.supervisor->ScanOnce();  // attempt 2 — budget spent
  EXPECT_FALSE(h.supervisor->degraded());
  h.clock.Set(200000);
  h.supervisor->ScanOnce();  // out of budget: escalate
  EXPECT_TRUE(h.supervisor->degraded());
  ASSERT_EQ(escalated.size(), 1u);
  EXPECT_EQ(escalated[0], "victim");

  h.clock.Set(300000);
  h.supervisor->ScanOnce();  // still out of budget: no double escalation
  EXPECT_EQ(escalated.size(), 1u);
  const SupervisorCounters counters = h.supervisor->counters();
  EXPECT_EQ(counters.escalations, 1u);
  EXPECT_EQ(counters.restarts_attempted, 2u);
  EXPECT_EQ(counters.restarts_failed, 2u);

  // Degraded is sticky until the operator clears it.
  h.supervisor->ClearDegraded();
  EXPECT_FALSE(h.supervisor->degraded());

  // Recovery after escalation still closes the incident and restores budget.
  h.clock.Set(400000);
  h.handle.Heartbeat();
  h.supervisor->ScanOnce();
  auto incidents = h.supervisor->Incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_TRUE(incidents[0].recovered());
  EXPECT_TRUE(incidents[0].escalated);
}

TEST(SupervisorTest, StoppedComponentsAreExemptFromScans) {
  SupervisedHarness h;
  h.handle.MarkStopped();
  h.clock.Set(10000000);
  EXPECT_EQ(h.supervisor->ScanOnce(), 0u);
  EXPECT_EQ(h.supervisor->counters().incidents_opened, 0u);
}

TEST(SupervisorTest, RecoveryRestoresBudgetForTheNextIncident) {
  SupervisedHarness h(/*budget=*/1);
  h.clock.Set(3000);
  h.supervisor->ScanOnce();  // incident 1, attempt 1 (budget spent)
  h.clock.Set(4000);
  h.handle.Heartbeat();
  h.supervisor->ScanOnce();  // recovered
  // Second incident gets a fresh budget: attempt fires, no escalation.
  h.clock.Set(10000);
  EXPECT_EQ(h.supervisor->ScanOnce(), 1u);
  EXPECT_FALSE(h.supervisor->degraded());
  EXPECT_EQ(h.supervisor->counters().incidents_opened, 2u);
}

TEST(WatchdogTest, ThreadScansAndRecoversARealStall) {
  // Real steady clock: a component that stops heartbeating with a 2ms
  // threshold, a watchdog polling every 1ms, and a restart callback that
  // "revives" it by heartbeating on its behalf.
  HealthRegistry registry;
  Supervisor supervisor(registry, {.base_backoff = std::chrono::milliseconds(1),
                                   .max_backoff = std::chrono::milliseconds(4),
                                   .restart_budget = 100});
  HealthHandle handle = registry.Register("sleeper", 2000);
  supervisor.Watch(handle.id(), [&handle] {
    handle.Heartbeat();
    return true;
  });
  Watchdog watchdog(supervisor, registry, {.poll_interval = std::chrono::milliseconds(1)});
  watchdog.Start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (supervisor.counters().incidents_recovered == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  watchdog.Stop();
  EXPECT_GT(watchdog.scans(), 0u);
  const SupervisorCounters counters = supervisor.counters();
  EXPECT_GE(counters.incidents_opened, 1u);
  EXPECT_GE(counters.incidents_recovered, 1u);
  // The watchdog itself is a registered, heartbeating component.
  bool watchdog_registered = false;
  for (const ComponentHealth& health : registry.Snapshot()) {
    watchdog_registered |= health.name == "watchdog";
  }
  EXPECT_TRUE(watchdog_registered);
}

// ---------------------------------------------------------------------------
// EstimationService integration: crash, restart, degraded mode
// ---------------------------------------------------------------------------

TEST(ServiceSupervisionTest, CrashedWorkerRestartsAndServesBitExact) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const EstimateMap oracle = model->EstimateFromFeatures(features);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  HealthRegistry health;
  std::atomic<bool> crash_pending{true};
  EstimationServiceConfig config;
  config.workers = 2;
  config.health = &health;
  config.worker_fault_hook = [&crash_pending](size_t worker) {
    if (worker == 0 && crash_pending.exchange(false)) {
      return WorkerFault::kCrash;
    }
    return WorkerFault::kNone;
  };
  EstimationService service(registry, pipeline, config);

  // Both workers registered under supervision names.
  EXPECT_EQ(health.Register("estimation-worker-0", 1).id(),
            health.Register("estimation-worker-0", 1).id());
  ASSERT_GE(health.size(), 2u);

  // Wait for the crash to land.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!service.WorkerExited(0) && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.WorkerExited(0));
  EXPECT_EQ(service.Counters().worker_crashes, 1u);

  // The surviving worker keeps the service correct even before recovery
  // (work stealing covers the dead worker's shard).
  auto before = service.SubmitFeatures(features).get();
  ASSERT_EQ(before.status, RequestStatus::kOk);
  ExpectSameEstimates(before.estimates, oracle);

  // Restart: the worker comes back and the service stays bit-exact.
  EXPECT_TRUE(service.RestartWorker(0));
  EXPECT_FALSE(service.WorkerExited(0));
  EXPECT_FALSE(service.RestartWorker(0));  // running workers cannot restart
  EXPECT_EQ(service.Counters().worker_restarts, 1u);
  auto after = service.SubmitFeatures(features).get();
  ASSERT_EQ(after.status, RequestStatus::kOk);
  ExpectSameEstimates(after.estimates, oracle);
}

TEST(ServiceSupervisionTest, WatchdogAutoRestartsACrashedWorker) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  const EstimateMap oracle = model->EstimateFromFeatures(features);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 2});
  registry.Publish(std::move(model));

  HealthRegistry health;
  std::atomic<bool> crash_pending{true};
  EstimationServiceConfig config;
  config.workers = 2;
  config.health = &health;
  config.worker_stall_threshold_us = 100000;  // 100ms (> the 64ms idle sweep)
  config.worker_fault_hook = [&crash_pending](size_t worker) {
    if (worker == 0 && crash_pending.exchange(false)) {
      return WorkerFault::kCrash;
    }
    return WorkerFault::kNone;
  };
  EstimationService service(registry, pipeline, config);

  Supervisor supervisor(health, {.base_backoff = std::chrono::milliseconds(5),
                                 .max_backoff = std::chrono::milliseconds(50),
                                 .restart_budget = 50});
  const size_t worker0 = health.Register("estimation-worker-0", 1).id();
  supervisor.Watch(worker0, [&service] { return service.RestartWorker(0); });
  Watchdog watchdog(supervisor, health,
                    {.poll_interval = std::chrono::milliseconds(2)});
  watchdog.Start();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (supervisor.counters().incidents_recovered == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  watchdog.Stop();

  const SupervisorCounters counters = supervisor.counters();
  ASSERT_GE(counters.incidents_recovered, 1u) << "watchdog never recovered the worker";
  EXPECT_GE(counters.restarts_succeeded, 1u);
  EXPECT_FALSE(service.WorkerExited(0));

  const auto incidents = supervisor.Incidents();
  ASSERT_FALSE(incidents.empty());
  EXPECT_TRUE(incidents[0].recovered());
  EXPECT_GT(incidents[0].mttr_us(), 0u);

  // Full service, bit-exact, after watchdog-led recovery.
  auto result = service.SubmitFeatures(features).get();
  ASSERT_EQ(result.status, RequestStatus::kOk);
  ExpectSameEstimates(result.estimates, oracle);
}

TEST(ServiceSupervisionTest, DegradedModeForcesRejectNewShedding) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  const auto features =
      model->features().ExtractSeries(s.traces, s.learn_windows, s.total());
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 1});
  registry.Publish(std::move(model));

  // One worker, permanently stalled by the chaos hook, so nothing drains.
  std::atomic<bool> release{false};
  EstimationServiceConfig config;
  config.workers = 1;
  config.max_queue = 1;
  config.shed_policy = ShedPolicy::kDropOldest;
  config.worker_fault_hook = [&release](size_t) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return WorkerFault::kNone;
  };
  EstimationService service(registry, pipeline, config);
  service.SetDegraded(true);
  EXPECT_TRUE(service.degraded());
  EXPECT_EQ(service.Counters().degraded_mode, 1u);

  auto first = service.SubmitFeatures(features);   // takes the only slot
  auto second = service.SubmitFeatures(features);  // queue full
  // Degraded overrides kDropOldest: the NEW arrival is shed immediately;
  // the queued request survives.
  ASSERT_EQ(second.wait_for(std::chrono::seconds(5)), std::future_status::ready);
  EXPECT_EQ(second.get().status, RequestStatus::kShed);
  EXPECT_EQ(first.wait_for(std::chrono::milliseconds(0)), std::future_status::timeout);

  release.store(true);
  EXPECT_EQ(first.get().status, RequestStatus::kOk);
  service.SetDegraded(false);
  EXPECT_EQ(service.Counters().degraded_mode, 0u);
}

// ---------------------------------------------------------------------------
// ContinualLearner: alloc-fail chaos + supervision wiring
// ---------------------------------------------------------------------------

TEST(LearnerSupervisionTest, AllocFailSkipsRefreshWithoutConsumingWindows) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 1});
  registry.Publish(std::move(model));
  testutil::IngestRange(pipeline, s, 0, s.total());

  std::atomic<bool> alloc_fail{true};
  HealthRegistry health;
  ContinualLearnerConfig config;
  config.min_new_windows = 8;
  config.epochs = 1;
  config.health = &health;
  config.alloc_fail_hook = [&alloc_fail] { return alloc_fail.load(); };
  ContinualLearner learner(registry, pipeline, s.learn_windows, config);

  EXPECT_EQ(learner.RefreshOnce(), 0u);
  EXPECT_EQ(learner.alloc_failures(), 1u);
  EXPECT_EQ(learner.trained_through(), s.learn_windows);  // windows NOT consumed

  // Allocation recovers: the same stretch now trains and publishes.
  alloc_fail.store(false);
  EXPECT_GT(learner.RefreshOnce(), 0u);
  EXPECT_EQ(learner.refreshes_published(), 1u);
  EXPECT_GT(learner.trained_through(), s.learn_windows);

  // Supervision wiring: the learner registered itself.
  bool registered = false;
  for (const ComponentHealth& h : health.Snapshot()) {
    registered |= h.name == "continual-learner";
  }
  EXPECT_TRUE(registered);
}

TEST(LearnerSupervisionTest, TrippedBreakerSuppressesTrainingUntilProbe) {
  TinySetup s = MakeSetup();
  auto model = TrainModel(s);
  ModelRegistry registry;
  IngestPipeline pipeline(model->features(), {.shards = 1});
  registry.Publish(std::move(model));
  // Two stretches: the first trains (and gets rejected), the second arrives
  // while the breaker is open, proving suppression skips training entirely.
  testutil::IngestRange(pipeline, s, 0, s.learn_windows + 16);

  ContinualLearnerConfig config;
  config.min_new_windows = 8;
  config.epochs = 1;
  // Impossible validation bar: ANY candidate error beyond ~0 regresses, so
  // every fine-tune is rejected and the breaker trips after one failure.
  config.validation_regression_factor = 1e-9;
  config.breaker.trip_failures = 1;
  config.breaker.open_rejections = 2;
  ContinualLearner learner(registry, pipeline, s.learn_windows, config);

  EXPECT_EQ(learner.RefreshOnce(), 0u);  // trains, fails validation, trips
  EXPECT_EQ(learner.models_rejected(), 1u);
  EXPECT_EQ(learner.validation_breaker().state(), BreakerState::kOpen);
  const size_t consumed = learner.trained_through();
  EXPECT_GT(consumed, s.learn_windows);  // rejected stretches ARE consumed

  // Open breaker: the fresh stretch is suppressed without touching training.
  testutil::IngestRange(pipeline, s, s.learn_windows + 16, s.total());
  EXPECT_EQ(learner.RefreshOnce(), 0u);
  EXPECT_EQ(learner.RefreshOnce(), 0u);
  EXPECT_EQ(learner.refreshes_suppressed(), 2u);
  EXPECT_EQ(learner.models_rejected(), 1u);  // no training happened
  EXPECT_EQ(learner.trained_through(), consumed);
}

}  // namespace
}  // namespace deeprest
