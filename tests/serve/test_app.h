// Shared fixture for the serve-layer robustness tests (chaos_test.cc,
// checkpoint_test.cc): the same tiny three-component application the serve
// tests train on, small enough that models train in milliseconds.
#ifndef TESTS_SERVE_TEST_APP_H_
#define TESTS_SERVE_TEST_APP_H_

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/serve/ingest_pipeline.h"
#include "src/sim/simulator.h"

namespace deeprest {
namespace testutil {

inline Application TinyApp() {
  Application app("tiny");
  ComponentSpec frontend;
  frontend.name = "Frontend";
  frontend.cpu_baseline = 2.0;
  app.AddComponent(frontend);
  ComponentSpec worker;
  worker.name = "Worker";
  worker.cpu_baseline = 1.0;
  app.AddComponent(worker);
  ComponentSpec db;
  db.name = "DB";
  db.stateful = true;
  db.cpu_baseline = 1.5;
  db.initial_disk_mb = 100.0;
  db.write_noise_ops = 0.2;
  db.write_noise_kb = 2.0;
  app.AddComponent(db);

  CostTerm cpu_small;
  cpu_small.base = 0.05;
  CostTerm cpu_mid;
  cpu_mid.base = 0.12;
  CostTerm db_read_cpu;
  db_read_cpu.base = 0.10;
  CostTerm db_write_cpu;
  db_write_cpu.base = 0.08;
  CostTerm iops;
  iops.resource = ResourceKind::kWriteIops;
  iops.base = 1.0;
  CostTerm thr;
  thr.resource = ResourceKind::kWriteThroughput;
  thr.base = 1.5;

  ApiEndpoint read;
  read.name = "/read";
  OpNode read_db{"DB", "find", 1.0, "", {db_read_cpu}, {}};
  OpNode read_worker{"Worker", "get", 1.0, "", {cpu_mid}, {read_db}};
  read.root = OpNode{"Frontend", "read", 1.0, "", {cpu_small}, {read_worker}};
  app.AddApi(read);

  ApiEndpoint write;
  write.name = "/write";
  OpNode write_db{"DB", "insert", 1.0, "", {db_write_cpu, iops, thr}, {}};
  OpNode write_worker{"Worker", "put", 1.0, "", {cpu_mid}, {write_db}};
  write.root = OpNode{"Frontend", "write", 1.0, "", {cpu_small}, {write_worker}};
  app.AddApi(write);
  return app;
}

inline TrafficSeries RandomTraffic(size_t windows, uint64_t seed) {
  TrafficSeries series({"/read", "/write"}, windows);
  Rng rng(seed);
  for (size_t w = 0; w < windows; ++w) {
    series.set_rate(w, 0, rng.Uniform(10.0, 120.0));
    series.set_rate(w, 1, rng.Uniform(5.0, 60.0));
  }
  return series;
}

struct TinySetup {
  Application app = TinyApp();
  TraceCollector traces;
  MetricsStore metrics;
  size_t learn_windows = 96;
  size_t query_windows = 32;
  size_t total() const { return learn_windows + query_windows; }
};

inline TinySetup MakeSetup(uint64_t seed = 1) {
  TinySetup s;
  Simulator sim(s.app, {.seed = seed});
  sim.Run(RandomTraffic(s.learn_windows, seed), 0, &s.traces, &s.metrics);
  sim.Run(RandomTraffic(s.query_windows, seed + 100), s.learn_windows, &s.traces, &s.metrics);
  return s;
}

inline EstimatorConfig FastConfig() {
  EstimatorConfig config;
  config.hidden_dim = 8;
  config.epochs = 12;
  config.bptt_chunk = 24;
  config.seed = 3;
  return config;
}

inline std::unique_ptr<DeepRestEstimator> TrainModel(const TinySetup& s) {
  auto model = std::make_unique<DeepRestEstimator>(FastConfig());
  model->Learn(s.traces, s.metrics, 0, s.learn_windows, s.app.MetricCatalog());
  return model;
}

// Streams every trace and metric sample of [from, to) into the pipeline.
inline void IngestRange(IngestPipeline& pipeline, const TinySetup& s, size_t from, size_t to) {
  const auto keys = s.metrics.Keys();
  for (size_t w = from; w < to; ++w) {
    for (const Trace& trace : s.traces.TracesAt(w)) {
      pipeline.IngestTrace(w, trace);
    }
    for (const MetricKey& key : keys) {
      pipeline.IngestMetric(key, w, s.metrics.At(key, w));
    }
  }
}

// Bitwise equality: both sides must come from the same deterministic forward
// pass over the same weights, so every double matches exactly.
inline void ExpectSameEstimates(const EstimateMap& a, const EstimateMap& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, estimate] : a) {
    ASSERT_TRUE(b.count(key)) << key.ToString();
    const auto& other = b.at(key);
    EXPECT_EQ(estimate.expected, other.expected) << key.ToString();
    EXPECT_EQ(estimate.lower, other.lower) << key.ToString();
    EXPECT_EQ(estimate.upper, other.upper) << key.ToString();
  }
}

}  // namespace testutil
}  // namespace deeprest

#endif  // TESTS_SERVE_TEST_APP_H_
