#include "src/sim/app.h"

#include <set>

#include <gtest/gtest.h>

namespace deeprest {
namespace {

TEST(ApplicationTest, AddAndFindComponents) {
  Application app("test");
  ComponentSpec spec;
  spec.name = "A";
  app.AddComponent(spec);
  EXPECT_NE(app.FindComponent("A"), nullptr);
  EXPECT_EQ(app.FindComponent("B"), nullptr);
}

TEST(ApplicationTest, MetricCatalogShape) {
  Application app("test");
  ComponentSpec stateless;
  stateless.name = "S";
  app.AddComponent(stateless);
  ComponentSpec stateful;
  stateful.name = "DB";
  stateful.stateful = true;
  app.AddComponent(stateful);
  const auto catalog = app.MetricCatalog();
  // 2 (cpu+mem) + 5 (cpu+mem+iops+thr+disk).
  EXPECT_EQ(catalog.size(), 7u);
}

TEST(ApplicationTest, ValidateCatchesUnknownComponent) {
  Application app("test");
  ComponentSpec spec;
  spec.name = "A";
  app.AddComponent(spec);
  ApiEndpoint api;
  api.name = "/x";
  api.root = OpNode{"Missing", "op", 1.0, "", {}, {}};
  app.AddApi(api);
  EXPECT_NE(app.Validate().find("unknown component"), std::string::npos);
}

TEST(ApplicationTest, ValidateCatchesBadProbability) {
  Application app("test");
  ComponentSpec spec;
  spec.name = "A";
  app.AddComponent(spec);
  ApiEndpoint api;
  api.name = "/x";
  api.root = OpNode{"A", "op", 1.5, "", {}, {}};
  app.AddApi(api);
  EXPECT_NE(app.Validate().find("probability"), std::string::npos);
}

TEST(ApplicationTest, ValidateCatchesStatefulCostOnStatelessComponent) {
  Application app("test");
  ComponentSpec spec;
  spec.name = "A";
  app.AddComponent(spec);
  ApiEndpoint api;
  api.name = "/x";
  CostTerm bad;
  bad.resource = ResourceKind::kWriteIops;
  bad.base = 1.0;
  api.root = OpNode{"A", "op", 1.0, "", {bad}, {}};
  app.AddApi(api);
  EXPECT_NE(app.Validate().find("stateless"), std::string::npos);
}

// ---- Social network application (paper Fig. 1) ----

TEST(SocialNetworkAppTest, ComponentInventoryMatchesPaper) {
  const Application app = BuildSocialNetworkApp();
  size_t stateless = 0;
  size_t stateful = 0;
  for (const auto& c : app.components()) {
    (c.stateful ? stateful : stateless)++;
  }
  EXPECT_EQ(stateless, 23u);
  EXPECT_EQ(stateful, 6u);
  EXPECT_EQ(app.components().size(), 29u);
}

TEST(SocialNetworkAppTest, ElevenApiEndpoints) {
  const Application app = BuildSocialNetworkApp();
  EXPECT_EQ(app.apis().size(), 11u);
  std::set<std::string> names;
  for (const auto& api : app.apis()) {
    names.insert(api.name);
  }
  EXPECT_EQ(names.size(), 11u);  // distinct
  EXPECT_TRUE(names.count("/composePost"));
  EXPECT_TRUE(names.count("/readTimeline"));
  EXPECT_TRUE(names.count("/uploadMedia"));
}

TEST(SocialNetworkAppTest, SeventySixResources) {
  // Paper section 5.1: 76 resources in 29 components.
  const Application app = BuildSocialNetworkApp();
  EXPECT_EQ(app.MetricCatalog().size(), 76u);
}

TEST(SocialNetworkAppTest, ValidatesCleanly) {
  const Application app = BuildSocialNetworkApp();
  EXPECT_EQ(app.Validate(), "");
}

TEST(SocialNetworkAppTest, ReadTimelineAvoidsComposePostService) {
  // The core causal fact behind paper Fig. 11.
  const Application app = BuildSocialNetworkApp();
  const ApiEndpoint* api = app.FindApi("/readTimeline");
  ASSERT_NE(api, nullptr);
  std::function<bool(const OpNode&)> touches = [&](const OpNode& node) {
    if (node.component == "ComposePostService") {
      return true;
    }
    for (const auto& child : node.children) {
      if (touches(child)) {
        return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(touches(api->root));
}

TEST(SocialNetworkAppTest, ReadTimelineNeverWritesPostStorage) {
  const Application app = BuildSocialNetworkApp();
  const ApiEndpoint* api = app.FindApi("/readTimeline");
  ASSERT_NE(api, nullptr);
  std::function<bool(const OpNode&)> writes = [&](const OpNode& node) {
    if (node.component == "PostStorageMongoDB") {
      for (const auto& cost : node.costs) {
        if (cost.resource == ResourceKind::kWriteIops ||
            cost.resource == ResourceKind::kWriteThroughput ||
            cost.resource == ResourceKind::kDiskUsage) {
          return true;
        }
      }
    }
    for (const auto& child : node.children) {
      if (writes(child)) {
        return true;
      }
    }
    return false;
  };
  EXPECT_FALSE(writes(api->root));
}

TEST(SocialNetworkAppTest, ComposePostWritesPostStorage) {
  const Application app = BuildSocialNetworkApp();
  const ApiEndpoint* api = app.FindApi("/composePost");
  ASSERT_NE(api, nullptr);
  std::function<bool(const OpNode&)> writes = [&](const OpNode& node) {
    if (node.component == "PostStorageMongoDB") {
      for (const auto& cost : node.costs) {
        if (cost.resource == ResourceKind::kWriteIops) {
          return true;
        }
      }
    }
    for (const auto& child : node.children) {
      if (writes(child)) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(writes(api->root));
}

TEST(SocialNetworkAppTest, DeterministicAttributeSamplers) {
  const Application app = BuildSocialNetworkApp(/*seed=*/42);
  const ApiEndpoint* api = app.FindApi("/composePost");
  ASSERT_NE(api, nullptr);
  Rng rng_a(1);
  Rng rng_b(1);
  for (const auto& [name, sampler] : api->attributes) {
    EXPECT_DOUBLE_EQ(sampler(rng_a), sampler(rng_b)) << name;
  }
}

// ---- Hotel reservation application (paper Fig. 7) ----

TEST(HotelAppTest, ComponentInventoryMatchesPaper) {
  const Application app = BuildHotelReservationApp();
  size_t stateless = 0;
  size_t stateful = 0;
  for (const auto& c : app.components()) {
    (c.stateful ? stateful : stateless)++;
  }
  EXPECT_EQ(stateless, 12u);
  EXPECT_EQ(stateful, 6u);
}

TEST(HotelAppTest, FourApiEndpoints) {
  const Application app = BuildHotelReservationApp();
  EXPECT_EQ(app.apis().size(), 4u);
  EXPECT_NE(app.FindApi("/searchHotels"), nullptr);
  EXPECT_NE(app.FindApi("/recommend"), nullptr);
  EXPECT_NE(app.FindApi("/reserve"), nullptr);
  EXPECT_NE(app.FindApi("/login"), nullptr);
}

TEST(HotelAppTest, FiftyFourResources) {
  // Paper section 5.1: 54 resources in 18 components.
  const Application app = BuildHotelReservationApp();
  EXPECT_EQ(app.MetricCatalog().size(), 54u);
}

TEST(HotelAppTest, ValidatesCleanly) {
  const Application app = BuildHotelReservationApp();
  EXPECT_EQ(app.Validate(), "");
}

TEST(HotelAppTest, AllApisEnterThroughFrontend) {
  const Application app = BuildHotelReservationApp();
  for (const auto& api : app.apis()) {
    EXPECT_EQ(api.root.component, "FrontendService") << api.name;
  }
}

TEST(HotelAppTest, OnlyReserveWritesReservationDb) {
  const Application app = BuildHotelReservationApp();
  std::function<bool(const OpNode&)> writes_reservation = [&](const OpNode& node) {
    if (node.component == "ReservationMongoDB") {
      for (const auto& cost : node.costs) {
        if (cost.resource == ResourceKind::kWriteIops) {
          return true;
        }
      }
    }
    for (const auto& child : node.children) {
      if (writes_reservation(child)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& api : app.apis()) {
    EXPECT_EQ(writes_reservation(api.root), api.name == "/reserve") << api.name;
  }
}

TEST(HotelAppTest, SearchTouchesGeoRateAndProfile) {
  const Application app = BuildHotelReservationApp();
  const ApiEndpoint* api = app.FindApi("/searchHotels");
  ASSERT_NE(api, nullptr);
  std::set<std::string> touched;
  std::function<void(const OpNode&)> walk = [&](const OpNode& node) {
    touched.insert(node.component);
    for (const auto& child : node.children) {
      walk(child);
    }
  };
  walk(api->root);
  EXPECT_TRUE(touched.count("GeoService"));
  EXPECT_TRUE(touched.count("RateService"));
  EXPECT_TRUE(touched.count("ProfileService"));
  EXPECT_FALSE(touched.count("ReservationService"));
  EXPECT_FALSE(touched.count("RecommendService"));
}

TEST(SocialNetworkAppTest, EveryComponentIsReachableFromSomeApi) {
  // No dead components: each declared component appears in at least one API
  // template (otherwise its metrics would be pure baseline noise).
  const Application app = BuildSocialNetworkApp();
  std::set<std::string> reachable;
  std::function<void(const OpNode&)> walk = [&](const OpNode& node) {
    reachable.insert(node.component);
    for (const auto& child : node.children) {
      walk(child);
    }
  };
  for (const auto& api : app.apis()) {
    walk(api.root);
  }
  for (const auto& component : app.components()) {
    EXPECT_TRUE(reachable.count(component.name)) << component.name << " is never invoked";
  }
}

TEST(HotelAppTest, EveryComponentIsReachableFromSomeApi) {
  const Application app = BuildHotelReservationApp();
  std::set<std::string> reachable;
  std::function<void(const OpNode&)> walk = [&](const OpNode& node) {
    reachable.insert(node.component);
    for (const auto& child : node.children) {
      walk(child);
    }
  };
  for (const auto& api : app.apis()) {
    walk(api.root);
  }
  for (const auto& component : app.components()) {
    EXPECT_TRUE(reachable.count(component.name)) << component.name << " is never invoked";
  }
}

}  // namespace
}  // namespace deeprest
