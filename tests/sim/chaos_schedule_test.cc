// Scripted chaos schedules: text-form parsing (round-trips, defaults, error
// reporting), window activity math, and the FaultInjector integration —
// window-scoped probability overrides for the stream faults and the
// deal-once/deal-per-sweep semantics of the process-fault queries — plus the
// FaultCounters Merge/Reset accounting the resilience scorecard aggregates
// with.
#include <gtest/gtest.h>

#include <string>

#include "src/sim/chaos_schedule.h"
#include "src/sim/fault_injector.h"
#include "src/trace/span.h"

namespace deeprest {
namespace {

Trace OneSpanTrace() {
  Trace trace(1, "/read");
  const SpanIndex root = trace.AddSpan("Frontend", "read", kNoParent);
  trace.SetSpanTiming(root, 10, 20);
  return trace;
}

TEST(ChaosScheduleTest, ParsesFullFormAndRoundTrips) {
  const std::string text =
      "worker_stall@10-14:0*50;worker_crash@20:1;metric_gap@5-30*0.2";
  ChaosSchedule schedule;
  std::string error;
  ASSERT_TRUE(ParseChaosSchedule(text, &schedule, &error)) << error;
  ASSERT_EQ(schedule.events.size(), 3u);

  const ChaosEvent& stall = schedule.events[0];
  EXPECT_EQ(stall.kind, ChaosFaultKind::kWorkerStall);
  EXPECT_EQ(stall.start_window, 10u);
  EXPECT_EQ(stall.end_window, 14u);
  EXPECT_EQ(stall.target, 0);
  EXPECT_DOUBLE_EQ(stall.magnitude, 50.0);

  const ChaosEvent& crash = schedule.events[1];
  EXPECT_EQ(crash.kind, ChaosFaultKind::kWorkerCrash);
  EXPECT_EQ(crash.start_window, 20u);
  EXPECT_EQ(crash.end_window, 21u);  // start-only = one window
  EXPECT_EQ(crash.target, 1);

  const ChaosEvent& gap = schedule.events[2];
  EXPECT_EQ(gap.kind, ChaosFaultKind::kMetricGap);
  EXPECT_EQ(gap.target, -1);  // omitted = all targets
  EXPECT_DOUBLE_EQ(gap.magnitude, 0.2);

  // Canonical text round-trips through the parser.
  const std::string formatted = FormatChaosSchedule(schedule);
  ChaosSchedule reparsed;
  ASSERT_TRUE(ParseChaosSchedule(formatted, &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.events.size(), schedule.events.size());
  for (size_t i = 0; i < schedule.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, schedule.events[i].kind);
    EXPECT_EQ(reparsed.events[i].start_window, schedule.events[i].start_window);
    EXPECT_EQ(reparsed.events[i].end_window, schedule.events[i].end_window);
    EXPECT_EQ(reparsed.events[i].target, schedule.events[i].target);
    EXPECT_DOUBLE_EQ(reparsed.events[i].magnitude, schedule.events[i].magnitude);
  }
}

TEST(ChaosScheduleTest, ToleratesWhitespaceAndEmptySegments) {
  ChaosSchedule schedule;
  ASSERT_TRUE(ParseChaosSchedule(" outage@3-5 ; ; clock_skew@7*250000;", &schedule));
  ASSERT_EQ(schedule.events.size(), 2u);
  EXPECT_EQ(schedule.events[0].kind, ChaosFaultKind::kOutage);
  EXPECT_EQ(schedule.events[1].kind, ChaosFaultKind::kClockSkew);
  EXPECT_EQ(schedule.end_window(), 8u);

  ChaosSchedule empty;
  ASSERT_TRUE(ParseChaosSchedule("", &empty));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.end_window(), 0u);
}

TEST(ChaosScheduleTest, RejectsMalformedSpecsWithReasons) {
  ChaosSchedule schedule;
  std::string error;
  EXPECT_FALSE(ParseChaosSchedule("worker_stall", &schedule, &error));
  EXPECT_NE(error.find("missing '@start'"), std::string::npos);
  EXPECT_FALSE(ParseChaosSchedule("goblin@3", &schedule, &error));
  EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
  EXPECT_FALSE(ParseChaosSchedule("outage@5-5", &schedule, &error));
  EXPECT_NE(error.find("empty window range"), std::string::npos);
  EXPECT_FALSE(ParseChaosSchedule("outage@x", &schedule, &error));
  EXPECT_FALSE(ParseChaosSchedule("metric_gap@1*bogus", &schedule, &error));
  EXPECT_FALSE(ParseChaosSchedule("worker_crash@1:abc", &schedule, &error));
}

TEST(ChaosScheduleTest, KindNamesAreDistinctAndRoundTrip) {
  for (size_t i = 0; i < kChaosFaultKindCount; ++i) {
    const ChaosFaultKind kind = static_cast<ChaosFaultKind>(i);
    const std::string name = ChaosFaultKindName(kind);
    EXPECT_NE(name, "unknown");
    ChaosFaultKind parsed;
    ASSERT_TRUE(ParseChaosFaultKind(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind);
  }
  ChaosFaultKind parsed;
  EXPECT_FALSE(ParseChaosFaultKind("unknown", &parsed));
}

TEST(ChaosScheduleTest, ActivityAndMagnitudeDefaults) {
  ChaosSchedule schedule;
  ASSERT_TRUE(ParseChaosSchedule("worker_stall@2-4;trace_drop@3-6", &schedule));
  EXPECT_EQ(schedule.ActiveAt(1).size(), 0u);
  EXPECT_EQ(schedule.ActiveAt(2).size(), 1u);
  EXPECT_EQ(schedule.ActiveAt(3).size(), 2u);
  EXPECT_EQ(schedule.ActiveAt(4).size(), 1u);
  EXPECT_EQ(schedule.ActiveAt(6).size(), 0u);
  // Kind defaults: 50ms stalls, certain stream faults.
  EXPECT_DOUBLE_EQ(schedule.events[0].EffectiveMagnitude(), 50.0);
  EXPECT_DOUBLE_EQ(schedule.events[1].EffectiveMagnitude(), 1.0);
}

TEST(ChaosScheduleInjectorTest, StreamEventsOverrideProbabilitiesByWindow) {
  ChaosSchedule schedule;
  ASSERT_TRUE(ParseChaosSchedule("trace_drop@2-4;metric_gap@1-2;outage@6-7", &schedule));
  FaultInjector injector({.seed = 5}, schedule);
  const Trace trace = OneSpanTrace();
  const MetricKey key{"Frontend", ResourceKind::kCpu};

  // Outside every event the base config is fault-free.
  EXPECT_EQ(injector.ProcessTrace(0, trace).size(), 1u);
  EXPECT_TRUE(injector.ProcessMetric(key, 0, 1.0));
  // trace_drop at certainty over [2,4).
  EXPECT_TRUE(injector.ProcessTrace(2, trace).empty());
  EXPECT_TRUE(injector.ProcessTrace(3, trace).empty());
  EXPECT_EQ(injector.ProcessTrace(4, trace).size(), 1u);
  // metric_gap at certainty over [1,2).
  EXPECT_FALSE(injector.ProcessMetric(key, 1, 1.0));
  EXPECT_TRUE(injector.ProcessMetric(key, 2, 1.0));
  // Scheduled outage behaves like the config outage range.
  EXPECT_TRUE(injector.ProcessTrace(6, trace).empty());
  EXPECT_EQ(injector.ProcessTrace(7, trace).size(), 1u);

  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.dropped, 3u);
  EXPECT_EQ(counters.metric_gaps, 1u);
  EXPECT_EQ(counters.traces_in, 6u);
  EXPECT_EQ(counters.delivered, 3u);
}

TEST(ChaosScheduleInjectorTest, ProcessFaultQueriesDealPerSchedule) {
  ChaosSchedule schedule;
  ASSERT_TRUE(ParseChaosSchedule(
      "worker_crash@3:1;worker_stall@2-4:0*25;clock_skew@5-7*300000;alloc_fail@8-9",
      &schedule));
  FaultInjector injector({.seed = 1}, schedule);

  // Crash: targeted and one-shot.
  EXPECT_FALSE(injector.TakeCrash(3, 0));  // wrong target
  EXPECT_FALSE(injector.TakeCrash(2, 1));  // not yet active
  EXPECT_TRUE(injector.TakeCrash(3, 1));
  EXPECT_FALSE(injector.TakeCrash(3, 1));  // fires exactly once

  // Stall: per-sweep while active, magnitude = stall ms.
  double stall_ms = 0.0;
  EXPECT_FALSE(injector.TakeStall(1, 0, &stall_ms));
  EXPECT_TRUE(injector.TakeStall(2, 0, &stall_ms));
  EXPECT_DOUBLE_EQ(stall_ms, 25.0);
  EXPECT_TRUE(injector.TakeStall(3, 0, &stall_ms));
  EXPECT_FALSE(injector.TakeStall(3, 1, &stall_ms));  // wrong target
  EXPECT_FALSE(injector.TakeStall(4, 0, &stall_ms));  // past the end

  // Clock skew: magnitude in microseconds while active.
  EXPECT_EQ(injector.ClockSkewUs(4), 0u);
  EXPECT_EQ(injector.ClockSkewUs(5), 300000u);
  EXPECT_EQ(injector.ClockSkewUs(6), 300000u);
  EXPECT_EQ(injector.ClockSkewUs(7), 0u);

  // Alloc fail: active range only.
  EXPECT_FALSE(injector.TakeAllocFail(7));
  EXPECT_TRUE(injector.TakeAllocFail(8));
  EXPECT_FALSE(injector.TakeAllocFail(9));

  const FaultCounters counters = injector.counters();
  EXPECT_EQ(counters.worker_crashes, 1u);
  EXPECT_EQ(counters.worker_stalls, 2u);
  EXPECT_EQ(counters.clock_skews, 1u);  // counted once per event, not per query
  EXPECT_EQ(counters.alloc_fails, 1u);
}

// Satellite: Merge/Reset back the per-schedule fault tallies the resilience
// bench emits (and tools/bench_diff compares).
TEST(FaultCountersTest, MergeAccumulatesAndResetZeros) {
  FaultCounters a;
  a.traces_in = 10;
  a.delivered = 8;
  a.dropped = 2;
  a.corrupted = 1;
  a.metric_gaps = 3;
  a.worker_stalls = 4;
  a.alloc_fails = 1;
  FaultCounters b;
  b.traces_in = 5;
  b.dropped = 5;
  b.truncated = 2;
  b.delayed = 1;
  b.duplicated = 1;
  b.metrics_in = 7;
  b.worker_crashes = 2;
  b.clock_skews = 1;

  FaultCounters sum;
  sum.Merge(a);
  sum.Merge(b);
  EXPECT_EQ(sum.traces_in, 15u);
  EXPECT_EQ(sum.delivered, 8u);
  EXPECT_EQ(sum.dropped, 7u);
  EXPECT_EQ(sum.corrupted, 1u);
  EXPECT_EQ(sum.truncated, 2u);
  EXPECT_EQ(sum.delayed, 1u);
  EXPECT_EQ(sum.duplicated, 1u);
  EXPECT_EQ(sum.metrics_in, 7u);
  EXPECT_EQ(sum.metric_gaps, 3u);
  EXPECT_EQ(sum.worker_stalls, 4u);
  EXPECT_EQ(sum.worker_crashes, 2u);
  EXPECT_EQ(sum.clock_skews, 1u);
  EXPECT_EQ(sum.alloc_fails, 1u);

  sum.Reset();
  EXPECT_EQ(sum.traces_in, 0u);
  EXPECT_EQ(sum.dropped, 0u);
  EXPECT_EQ(sum.worker_stalls, 0u);
  EXPECT_EQ(sum.alloc_fails, 0u);
}

}  // namespace
}  // namespace deeprest
