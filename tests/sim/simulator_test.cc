#include "src/sim/simulator.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

// Single-API traffic at a constant rate for `windows` windows.
TrafficSeries ConstantTraffic(const std::string& api, double rate, size_t windows) {
  TrafficSeries series({api}, windows);
  for (size_t w = 0; w < windows; ++w) {
    series.set_rate(w, 0, rate);
  }
  return series;
}

TEST(SimulatorTest, ProducesTracesAndMetrics) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 1});
  TraceCollector traces;
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/composePost", 20.0, 5), 0, &traces, &metrics);
  EXPECT_EQ(traces.window_count(), 5u);
  EXPECT_GT(traces.total_traces(), 50u);
  EXPECT_EQ(metrics.window_count(), 5u);
  // Every catalog resource has been recorded.
  for (const auto& key : app.MetricCatalog()) {
    EXPECT_TRUE(metrics.Has(key)) << key.ToString();
  }
}

TEST(SimulatorTest, DeterministicForSeed) {
  const Application app = BuildSocialNetworkApp();
  MetricsStore m1;
  MetricsStore m2;
  TraceCollector t1;
  TraceCollector t2;
  Simulator sim1(app, {.seed = 9});
  Simulator sim2(app, {.seed = 9});
  const TrafficSeries traffic = ConstantTraffic("/composePost", 15.0, 4);
  sim1.Run(traffic, 0, &t1, &m1);
  sim2.Run(traffic, 0, &t2, &m2);
  EXPECT_EQ(t1.total_traces(), t2.total_traces());
  for (const auto& key : app.MetricCatalog()) {
    for (size_t w = 0; w < 4; ++w) {
      EXPECT_DOUBLE_EQ(m1.At(key, w), m2.At(key, w)) << key.ToString();
    }
  }
}

TEST(SimulatorTest, TraceRootIsFrontend) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 2});
  TraceCollector traces;
  sim.Run(ConstantTraffic("/readTimeline", 10.0, 1), 0, &traces, nullptr);
  for (const Trace& t : traces.TracesAt(0)) {
    EXPECT_EQ(t.root().component, "FrontendNGINX");
    EXPECT_EQ(t.root().operation, "readTimeline");
    EXPECT_EQ(t.api_name(), "/readTimeline");
  }
}

TEST(SimulatorTest, ReadTimelineLeavesComposePostServiceIdle) {
  // Paper Fig. 11b: pure /readTimeline traffic must not move
  // ComposePostService CPU beyond its baseline.
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 3});
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/readTimeline", 120.0, 10), 0, nullptr, &metrics);
  const ComponentSpec* compose = app.FindComponent("ComposePostService");
  for (size_t w = 0; w < 10; ++w) {
    const double cpu = metrics.At({"ComposePostService", ResourceKind::kCpu}, w);
    EXPECT_LT(cpu, compose->cpu_baseline * 1.3);
  }
  // But the frontend is busy.
  EXPECT_GT(metrics.At({"FrontendNGINX", ResourceKind::kCpu}, 5), 6.0);
}

TEST(SimulatorTest, ReadTimelineIncursNoPostStorageWrites) {
  // Paper Fig. 11c: /readTimeline performs no writes on PostStorageMongoDB.
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 4});
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/readTimeline", 120.0, 10), 0, nullptr, &metrics);
  const ComponentSpec* db = app.FindComponent("PostStorageMongoDB");
  for (size_t w = 0; w < 10; ++w) {
    const double iops = metrics.At({"PostStorageMongoDB", ResourceKind::kWriteIops}, w);
    // Only background churn remains (write_noise_ops with 30% jitter).
    EXPECT_LT(iops, db->write_noise_ops * 3.0);
  }
  // While its CPU is clearly busy serving reads (cache misses).
  EXPECT_GT(metrics.At({"PostStorageMongoDB", ResourceKind::kCpu}, 8), 4.0);
}

TEST(SimulatorTest, ComposePostDrivesPostStorageWritePath) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 5});
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/composePost", 60.0, 10), 0, nullptr, &metrics);
  EXPECT_GT(metrics.At({"PostStorageMongoDB", ResourceKind::kWriteIops}, 5), 40.0);
  EXPECT_GT(metrics.At({"PostStorageMongoDB", ResourceKind::kWriteThroughput}, 5), 40.0);
  EXPECT_GT(metrics.At({"ComposePostService", ResourceKind::kCpu}, 5), 6.0);
}

TEST(SimulatorTest, DiskUsageIsMonotonic) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 6});
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/composePost", 40.0, 20), 0, nullptr, &metrics);
  double prev = 0.0;
  for (size_t w = 0; w < 20; ++w) {
    const double disk = metrics.At({"PostStorageMongoDB", ResourceKind::kDiskUsage}, w);
    EXPECT_GE(disk, prev);
    prev = disk;
  }
  // Starts from the initial dataset and actually grows.
  EXPECT_GT(prev, 900.0);
}

TEST(SimulatorTest, UploadMediaGrowsMediaDiskFasterThanOthers) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 7});
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/uploadMedia", 30.0, 10), 0, nullptr, &metrics);
  const double media_growth =
      metrics.At({"MediaMongoDB", ResourceKind::kDiskUsage}, 9) -
      metrics.At({"MediaMongoDB", ResourceKind::kDiskUsage}, 0);
  const double user_growth =
      metrics.At({"UserMongoDB", ResourceKind::kDiskUsage}, 9) -
      metrics.At({"UserMongoDB", ResourceKind::kDiskUsage}, 0);
  EXPECT_GT(media_growth, 20.0 * std::max(user_growth, 0.001));
}

TEST(SimulatorTest, CacheWarmthRisesUnderReadLoad) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 8});
  EXPECT_DOUBLE_EQ(sim.CacheWarmth("PostStorageMemcached"), 0.0);
  sim.Run(ConstantTraffic("/readTimeline", 100.0, 15), 0, nullptr, nullptr);
  EXPECT_GT(sim.CacheWarmth("PostStorageMemcached"), 0.4);
}

TEST(SimulatorTest, GatedBranchesAppearInSomeTracesOnly) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 9});
  TraceCollector traces;
  sim.Run(ConstantTraffic("/composePost", 80.0, 3), 0, &traces, nullptr);
  size_t with_media = 0;
  size_t total = 0;
  for (size_t w = 0; w < 3; ++w) {
    for (const Trace& t : traces.TracesAt(w)) {
      ++total;
      for (const Span& s : t.spans()) {
        if (s.component == "MediaService") {
          ++with_media;
          break;
        }
      }
    }
  }
  ASSERT_GT(total, 100u);
  const double frac = static_cast<double>(with_media) / static_cast<double>(total);
  EXPECT_GT(frac, 0.15);  // has_media ~ Bernoulli(0.25)
  EXPECT_LT(frac, 0.35);
}

TEST(SimulatorTest, CryptojackingRaisesCpuWithoutTraces) {
  const Application app = BuildSocialNetworkApp();
  Simulator clean_sim(app, {.seed = 10, .noise_frac = 0.0});
  Simulator attacked_sim(app, {.seed = 10, .noise_frac = 0.0});
  AttackSpec attack;
  attack.kind = AttackSpec::Kind::kCryptojacking;
  attack.component = "PostStorageMongoDB";
  attack.start_window = 5;
  attack.end_window = 10;
  attacked_sim.AddAttack(attack);

  const TrafficSeries traffic = ConstantTraffic("/readTimeline", 50.0, 10);
  MetricsStore clean;
  MetricsStore attacked;
  TraceCollector clean_traces;
  TraceCollector attacked_traces;
  clean_sim.Run(traffic, 0, &clean_traces, &clean);
  attacked_sim.Run(traffic, 0, &attacked_traces, &attacked);

  // Identical traces (same seed, attack adds none).
  EXPECT_EQ(clean_traces.total_traces(), attacked_traces.total_traces());
  // CPU identical before the attack, elevated by ~45 points during it.
  const MetricKey cpu{"PostStorageMongoDB", ResourceKind::kCpu};
  EXPECT_NEAR(attacked.At(cpu, 2), clean.At(cpu, 2), 1e-9);
  EXPECT_GT(attacked.At(cpu, 7), clean.At(cpu, 7) + 30.0);
}

TEST(SimulatorTest, RansomwareRaisesWriteThroughputAndIops) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 11, .noise_frac = 0.0});
  AttackSpec attack;
  attack.kind = AttackSpec::Kind::kRansomware;
  attack.component = "PostStorageMongoDB";
  attack.start_window = 3;
  attack.end_window = 6;
  sim.AddAttack(attack);
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/readTimeline", 50.0, 8), 0, nullptr, &metrics);
  const MetricKey thr{"PostStorageMongoDB", ResourceKind::kWriteThroughput};
  const MetricKey iops{"PostStorageMongoDB", ResourceKind::kWriteIops};
  EXPECT_GT(metrics.At(thr, 4), 50.0 * std::max(metrics.At(thr, 1), 1.0));
  EXPECT_GT(metrics.At(iops, 4), metrics.At(iops, 1) + 30.0);
}

TEST(SimulatorTest, OffsetPlacesWindowsCorrectly) {
  const Application app = BuildSocialNetworkApp();
  Simulator sim(app, {.seed = 12});
  TraceCollector traces;
  MetricsStore metrics;
  sim.Run(ConstantTraffic("/login", 5.0, 3), 10, &traces, &metrics);
  EXPECT_TRUE(traces.TracesAt(0).empty());
  EXPECT_FALSE(traces.TracesAt(11).empty());
  EXPECT_EQ(metrics.window_count(), 13u);
}

TEST(SimulatorTest, QueueingAmplifiesHighLoadSuperlinearly) {
  // Doubling already-heavy traffic more than doubles CPU-above-baseline on a
  // component past its queueing knee.
  Application app("queue_test");
  ComponentSpec spec;
  spec.name = "Svc";
  spec.cpu_baseline = 0.0;
  spec.queue_knee = 20.0;
  spec.queue_gain = 0.02;
  app.AddComponent(spec);
  ApiEndpoint api;
  api.name = "/x";
  CostTerm cost;
  cost.resource = ResourceKind::kCpu;
  cost.base = 0.2;
  api.root = OpNode{"Svc", "op", 1.0, "", {cost}, {}};
  app.AddApi(api);

  MetricsStore low;
  MetricsStore high;
  Simulator sim_low(app, {.seed = 13, .noise_frac = 0.0});
  Simulator sim_high(app, {.seed = 13, .noise_frac = 0.0});
  sim_low.Run(ConstantTraffic("/x", 100.0, 6), 0, nullptr, &low);   // ~20 pts
  sim_high.Run(ConstantTraffic("/x", 200.0, 6), 0, nullptr, &high);  // ~40 pts + queue
  double low_mean = 0.0;
  double high_mean = 0.0;
  for (size_t w = 0; w < 6; ++w) {
    low_mean += low.At({"Svc", ResourceKind::kCpu}, w);
    high_mean += high.At({"Svc", ResourceKind::kCpu}, w);
  }
  EXPECT_GT(high_mean, 2.2 * low_mean);
}

TEST(SimulatorTest, HotelAppRunsCleanly) {
  const Application app = BuildHotelReservationApp();
  Simulator sim(app, {.seed = 14});
  TraceCollector traces;
  MetricsStore metrics;
  TrafficSeries traffic({"/searchHotels", "/recommend", "/reserve", "/login"}, 4);
  for (size_t w = 0; w < 4; ++w) {
    traffic.set_rate(w, 0, 30.0);
    traffic.set_rate(w, 1, 10.0);
    traffic.set_rate(w, 2, 5.0);
    traffic.set_rate(w, 3, 8.0);
  }
  sim.Run(traffic, 0, &traces, &metrics);
  EXPECT_GT(traces.total_traces(), 100u);
  EXPECT_GT(metrics.At({"FrontendService", ResourceKind::kCpu}, 2), 4.0);
  EXPECT_GT(metrics.At({"ReservationMongoDB", ResourceKind::kWriteIops}, 2), 2.0);
}

}  // namespace
}  // namespace deeprest
