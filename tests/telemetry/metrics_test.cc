#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

TEST(ResourceKindTest, AllKindsListedOnce) {
  const auto& kinds = AllResourceKinds();
  EXPECT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds.front(), ResourceKind::kCpu);
  EXPECT_EQ(kinds.back(), ResourceKind::kDiskUsage);
}

TEST(ResourceKindTest, NamesAreDistinct) {
  const auto& kinds = AllResourceKinds();
  for (size_t i = 0; i < kinds.size(); ++i) {
    for (size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_NE(ResourceKindName(kinds[i]), ResourceKindName(kinds[j]));
    }
  }
}

TEST(ResourceKindTest, StatefulOnlyClassification) {
  EXPECT_FALSE(IsStatefulOnly(ResourceKind::kCpu));
  EXPECT_FALSE(IsStatefulOnly(ResourceKind::kMemory));
  EXPECT_TRUE(IsStatefulOnly(ResourceKind::kWriteIops));
  EXPECT_TRUE(IsStatefulOnly(ResourceKind::kWriteThroughput));
  EXPECT_TRUE(IsStatefulOnly(ResourceKind::kDiskUsage));
}

TEST(MetricKeyTest, OrderingAndEquality) {
  MetricKey a{"A", ResourceKind::kCpu};
  MetricKey b{"A", ResourceKind::kMemory};
  MetricKey c{"B", ResourceKind::kCpu};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == (MetricKey{"A", ResourceKind::kCpu}));
  EXPECT_FALSE(a == b);
}

TEST(MetricKeyTest, ToStringFormat) {
  MetricKey k{"PostStorageMongoDB", ResourceKind::kWriteIops};
  EXPECT_EQ(k.ToString(), "PostStorageMongoDB/write_iops");
}

TEST(MetricsStoreTest, RecordAndReadBack) {
  MetricsStore store;
  MetricKey key{"A", ResourceKind::kCpu};
  store.Record(key, 0, 10.0);
  store.Record(key, 2, 30.0);
  EXPECT_DOUBLE_EQ(store.At(key, 0), 10.0);
  EXPECT_DOUBLE_EQ(store.At(key, 1), 0.0);  // padded
  EXPECT_DOUBLE_EQ(store.At(key, 2), 30.0);
  EXPECT_EQ(store.window_count(), 3u);
}

TEST(MetricsStoreTest, AtOutOfRangeIsZero) {
  MetricsStore store;
  MetricKey key{"A", ResourceKind::kCpu};
  store.Record(key, 0, 10.0);
  EXPECT_DOUBLE_EQ(store.At(key, 50), 0.0);
  EXPECT_DOUBLE_EQ(store.At(MetricKey{"missing", ResourceKind::kCpu}, 0), 0.0);
}

TEST(MetricsStoreTest, AccumulateAddsUp) {
  MetricsStore store;
  MetricKey key{"A", ResourceKind::kWriteIops};
  store.Accumulate(key, 1, 5.0);
  store.Accumulate(key, 1, 2.5);
  EXPECT_DOUBLE_EQ(store.At(key, 1), 7.5);
}

TEST(MetricsStoreTest, SeriesClipsRange) {
  MetricsStore store;
  MetricKey key{"A", ResourceKind::kCpu};
  for (size_t w = 0; w < 5; ++w) {
    store.Record(key, w, static_cast<double>(w));
  }
  const auto series = store.Series(key, 1, 4);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[2], 3.0);
  // Beyond range padded with zeros.
  const auto beyond = store.Series(key, 3, 8);
  ASSERT_EQ(beyond.size(), 5u);
  EXPECT_DOUBLE_EQ(beyond[4], 0.0);
}

TEST(MetricsStoreTest, KeysSortedDeterministically) {
  MetricsStore store;
  store.Record(MetricKey{"B", ResourceKind::kCpu}, 0, 1.0);
  store.Record(MetricKey{"A", ResourceKind::kMemory}, 0, 1.0);
  store.Record(MetricKey{"A", ResourceKind::kCpu}, 0, 1.0);
  const auto keys = store.Keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].component, "A");
  EXPECT_EQ(keys[0].resource, ResourceKind::kCpu);
  EXPECT_EQ(keys[1].component, "A");
  EXPECT_EQ(keys[1].resource, ResourceKind::kMemory);
  EXPECT_EQ(keys[2].component, "B");
}

TEST(MetricsStoreTest, RegisterCreatesEmptySeries) {
  MetricsStore store;
  MetricKey key{"A", ResourceKind::kCpu};
  store.Register(key);
  EXPECT_TRUE(store.Has(key));
  EXPECT_FALSE(store.Has(MetricKey{"B", ResourceKind::kCpu}));
}

TEST(MetricsStoreTest, CsvContainsHeaderAndValues) {
  MetricsStore store;
  store.Record(MetricKey{"A", ResourceKind::kCpu}, 0, 42.0);
  const std::string csv = store.ToCsv();
  EXPECT_NE(csv.find("window,A/cpu"), std::string::npos);
  EXPECT_NE(csv.find("0,42"), std::string::npos);
}

}  // namespace
}  // namespace deeprest
