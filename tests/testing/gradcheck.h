// Numerical gradient checking utilities shared by the nn test suites.
#ifndef TESTS_TESTING_GRADCHECK_H_
#define TESTS_TESTING_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "src/nn/tensor.h"

namespace deeprest {

// Verifies d(loss)/d(param) for every entry of every parameter against a
// central finite difference of `loss_fn`. `loss_fn` must rebuild the graph
// from the current parameter values and return the scalar loss tensor.
inline void ExpectGradientsMatch(std::vector<Tensor> params,
                                 const std::function<Tensor()>& loss_fn, float epsilon = 1e-3f,
                                 float tolerance = 2e-2f) {
  // Analytic pass.
  for (auto& p : params) {
    p.node()->EnsureGrad();
    p.mutable_grad().Zero();
  }
  Tensor loss = loss_fn();
  loss.Backward();
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (const auto& p : params) {
    analytic.push_back(p.grad());
  }

  // Numerical pass, one coordinate at a time.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Matrix& value = params[pi].mutable_value();
    for (size_t i = 0; i < value.size(); ++i) {
      const float saved = value[i];
      value[i] = saved + epsilon;
      const float up = loss_fn().scalar();
      value[i] = saved - epsilon;
      const float down = loss_fn().scalar();
      value[i] = saved;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float exact = analytic[pi][i];
      const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(exact)});
      EXPECT_NEAR(exact, numeric, tolerance * scale)
          << "param " << pi << " entry " << i << " analytic=" << exact
          << " numeric=" << numeric;
    }
  }
}

}  // namespace deeprest

#endif  // TESTS_TESTING_GRADCHECK_H_
