#include "src/trace/collector.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

Trace SimpleTrace(uint64_t id) {
  Trace t(id, "/api");
  t.AddSpan("A", "op", kNoParent);
  return t;
}

TEST(TraceCollectorTest, StartsEmpty) {
  TraceCollector c;
  EXPECT_EQ(c.window_count(), 0u);
  EXPECT_EQ(c.total_traces(), 0u);
  EXPECT_TRUE(c.TracesAt(0).empty());
}

TEST(TraceCollectorTest, CollectGrowsWindows) {
  TraceCollector c;
  c.Collect(3, SimpleTrace(1));
  EXPECT_EQ(c.window_count(), 4u);
  EXPECT_TRUE(c.TracesAt(0).empty());
  EXPECT_EQ(c.TracesAt(3).size(), 1u);
}

TEST(TraceCollectorTest, MultipleTracesPerWindow) {
  TraceCollector c;
  c.Collect(0, SimpleTrace(1));
  c.Collect(0, SimpleTrace(2));
  EXPECT_EQ(c.TracesAt(0).size(), 2u);
  EXPECT_EQ(c.total_traces(), 2u);
}

TEST(TraceCollectorTest, OutOfOrderWindows) {
  TraceCollector c;
  c.Collect(5, SimpleTrace(1));
  c.Collect(2, SimpleTrace(2));
  EXPECT_EQ(c.window_count(), 6u);
  EXPECT_EQ(c.TracesAt(2).size(), 1u);
  EXPECT_EQ(c.TracesAt(5).size(), 1u);
}

TEST(TraceCollectorTest, RangeConcatenatesWindows) {
  TraceCollector c;
  c.Collect(0, SimpleTrace(1));
  c.Collect(1, SimpleTrace(2));
  c.Collect(1, SimpleTrace(3));
  c.Collect(2, SimpleTrace(4));
  const auto range = c.Range(0, 2);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0]->trace_id(), 1u);
  EXPECT_EQ(range[1]->trace_id(), 2u);
  EXPECT_EQ(range[2]->trace_id(), 3u);
}

TEST(TraceCollectorTest, RangeClipsToAvailableWindows) {
  TraceCollector c;
  c.Collect(0, SimpleTrace(1));
  EXPECT_EQ(c.Range(0, 100).size(), 1u);
  EXPECT_TRUE(c.Range(5, 10).empty());
}

TEST(TraceCollectorTest, ClearResets) {
  TraceCollector c;
  c.Collect(0, SimpleTrace(1));
  c.Clear();
  EXPECT_EQ(c.window_count(), 0u);
  EXPECT_EQ(c.total_traces(), 0u);
}

TEST(TraceCollectorTest, TracesBeyondRangeAreEmptyNotCrash) {
  TraceCollector c;
  c.Collect(0, SimpleTrace(1));
  EXPECT_TRUE(c.TracesAt(99).empty());
}

}  // namespace
}  // namespace deeprest
