#include "src/trace/json_export.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

Trace SampleTrace() {
  Trace t(42, "/readTimeline");
  const SpanIndex root = t.AddSpan("FrontendNGINX", "readTimeline", kNoParent);
  const SpanIndex svc = t.AddSpan("UserTimelineService", "readTimeline", root);
  t.AddSpan("UserTimelineMongoDB", "find", svc);
  return t;
}

TEST(TraceJsonTest, ExportContainsAllFields) {
  const std::string json = TraceToJson(SampleTrace());
  EXPECT_NE(json.find("\"traceID\":42"), std::string::npos);
  EXPECT_NE(json.find("\"api\":\"/readTimeline\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"UserTimelineMongoDB\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":-1"), std::string::npos);  // root sentinel
}

TEST(TraceJsonTest, RoundTripPreservesStructure) {
  const Trace original = SampleTrace();
  Trace restored;
  ASSERT_TRUE(TraceFromJson(TraceToJson(original), restored));
  EXPECT_EQ(restored.trace_id(), original.trace_id());
  EXPECT_EQ(restored.api_name(), original.api_name());
  ASSERT_EQ(restored.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.spans()[i].component, original.spans()[i].component);
    EXPECT_EQ(restored.spans()[i].operation, original.spans()[i].operation);
    EXPECT_EQ(restored.spans()[i].parent, original.spans()[i].parent);
  }
}

TEST(TraceJsonTest, EscapedCharactersSurvive) {
  Trace t(1, "/api\"with\\quotes");
  t.AddSpan("Comp\"onent", "op\nline", kNoParent);
  Trace restored;
  ASSERT_TRUE(TraceFromJson(TraceToJson(t), restored));
  EXPECT_EQ(restored.api_name(), "/api\"with\\quotes");
  EXPECT_EQ(restored.spans()[0].component, "Comp\"onent");
  EXPECT_EQ(restored.spans()[0].operation, "op\nline");
}

TEST(TraceJsonTest, RejectsMalformedInput) {
  Trace out;
  EXPECT_FALSE(TraceFromJson("", out));
  EXPECT_FALSE(TraceFromJson("{", out));
  EXPECT_FALSE(TraceFromJson("{\"traceID\":1}", out));
  EXPECT_FALSE(TraceFromJson("not json at all", out));
  EXPECT_FALSE(TraceFromJson(
      "{\"traceID\":1,\"api\":\"/x\",\"spans\":[{\"component\":\"A\"}]}", out));
}

TEST(TraceJsonTest, RejectsForwardParentReference) {
  // Span 0 referencing parent 5 is structurally invalid.
  const std::string json =
      "{\"traceID\":1,\"api\":\"/x\",\"spans\":["
      "{\"component\":\"A\",\"operation\":\"op\",\"parent\":5}]}";
  Trace out;
  EXPECT_FALSE(TraceFromJson(json, out));
}

TEST(CollectorJsonTest, RoundTripWithWindows) {
  TraceCollector collector;
  collector.Collect(2, SampleTrace());
  collector.Collect(5, SampleTrace());
  collector.Collect(5, SampleTrace());
  const std::string json = CollectorToJson(collector, 0, 6);

  TraceCollector restored;
  ASSERT_TRUE(CollectorFromJson(json, restored));
  EXPECT_EQ(restored.total_traces(), 3u);
  EXPECT_EQ(restored.TracesAt(2).size(), 1u);
  EXPECT_EQ(restored.TracesAt(5).size(), 2u);
  EXPECT_TRUE(restored.TracesAt(0).empty());
}

TEST(CollectorJsonTest, RangeClipsExport) {
  TraceCollector collector;
  collector.Collect(1, SampleTrace());
  collector.Collect(9, SampleTrace());
  TraceCollector restored;
  ASSERT_TRUE(CollectorFromJson(CollectorToJson(collector, 0, 5), restored));
  EXPECT_EQ(restored.total_traces(), 1u);
}

TEST(CollectorJsonTest, EmptyCollectorGivesEmptyArray) {
  TraceCollector collector;
  EXPECT_EQ(CollectorToJson(collector, 0, 10), "[]");
  TraceCollector restored;
  EXPECT_TRUE(CollectorFromJson("[]", restored));
  EXPECT_EQ(restored.total_traces(), 0u);
}

TEST(CollectorJsonTest, RejectsMalformedArray) {
  TraceCollector out;
  EXPECT_FALSE(CollectorFromJson("", out));
  EXPECT_FALSE(CollectorFromJson("[{", out));
  EXPECT_FALSE(CollectorFromJson("[}]", out));
}

}  // namespace
}  // namespace deeprest
