#include "src/trace/span.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

Trace MakeReadTimelineTrace() {
  // Mirrors paper Fig. 3.
  Trace t(1, "/readTimeline");
  const SpanIndex root = t.AddSpan("FrontendNGINX", "readTimeline", kNoParent);
  const SpanIndex uts = t.AddSpan("UserTimelineService", "readTimeline", root);
  t.AddSpan("UserTimelineMongoDB", "find", uts);
  const SpanIndex pss = t.AddSpan("PostStorageService", "getPosts", uts);
  t.AddSpan("PostStorageMongoDB", "find", pss);
  return t;
}

TEST(TraceTest, EmptyByDefault) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
}

TEST(TraceTest, AddSpanBuildsTree) {
  Trace t = MakeReadTimelineTrace();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.root().component, "FrontendNGINX");
  EXPECT_EQ(t.spans()[1].parent, 0u);
  EXPECT_EQ(t.spans()[2].parent, 1u);
  EXPECT_EQ(t.spans()[4].parent, 3u);
}

TEST(TraceTest, ApiNameAndIdPreserved) {
  Trace t = MakeReadTimelineTrace();
  EXPECT_EQ(t.trace_id(), 1u);
  EXPECT_EQ(t.api_name(), "/readTimeline");
}

TEST(TraceTest, ChildrenOfReturnsDirectChildren) {
  Trace t = MakeReadTimelineTrace();
  const auto root_children = t.ChildrenOf(0);
  ASSERT_EQ(root_children.size(), 1u);
  EXPECT_EQ(root_children[0], 1u);
  const auto uts_children = t.ChildrenOf(1);
  ASSERT_EQ(uts_children.size(), 2u);
  EXPECT_EQ(uts_children[0], 2u);
  EXPECT_EQ(uts_children[1], 3u);
  EXPECT_TRUE(t.ChildrenOf(4).empty());
}

TEST(HashNameTest, DeterministicAndSensitive) {
  EXPECT_EQ(HashName("PostStorageService"), HashName("PostStorageService"));
  EXPECT_NE(HashName("PostStorageService"), HashName("PostStorageServicE"));
  EXPECT_NE(HashName(""), HashName(" "));
}

TEST(HashNameTest, KnownFnvVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(HashName(""), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace deeprest
