#include "src/trace/topology.h"

#include <gtest/gtest.h>

namespace deeprest {
namespace {

Trace MakeComposeTrace() {
  Trace t(7, "/composePost");
  const SpanIndex root = t.AddSpan("FrontendNGINX", "composePost", kNoParent);
  const SpanIndex cps = t.AddSpan("ComposePostService", "composePost", root);
  t.AddSpan("PostStorageMongoDB", "insert", cps);
  t.AddSpan("UserTimelineService", "writeTimeline", cps);
  return t;
}

TEST(TopologyGraphTest, InternIsIdempotent) {
  TopologyGraph g;
  const TopologyNodeId a = g.Intern("A", "op");
  const TopologyNodeId b = g.Intern("A", "op");
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.node_count(), 1u);
}

TEST(TopologyGraphTest, DistinctPairsGetDistinctIds) {
  TopologyGraph g;
  const TopologyNodeId a = g.Intern("A", "op1");
  const TopologyNodeId b = g.Intern("A", "op2");
  const TopologyNodeId c = g.Intern("B", "op1");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(g.node_count(), 3u);
}

TEST(TopologyGraphTest, SeparatorPreventsAmbiguity) {
  TopologyGraph g;
  const TopologyNodeId a = g.Intern("ab", "c");
  const TopologyNodeId b = g.Intern("a", "bc");
  EXPECT_NE(a, b);
}

TEST(TopologyGraphTest, LookupFindsOnlyInterned) {
  TopologyGraph g;
  g.Intern("A", "op");
  TopologyNodeId id = 0;
  EXPECT_TRUE(g.Lookup("A", "op", id));
  EXPECT_FALSE(g.Lookup("A", "other", id));
}

TEST(TopologyGraphTest, ObserveRecordsEdges) {
  TopologyGraph g;
  Trace t = MakeComposeTrace();
  g.Observe(t);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  TopologyNodeId frontend = 0;
  TopologyNodeId compose = 0;
  TopologyNodeId mongo = 0;
  ASSERT_TRUE(g.Lookup("FrontendNGINX", "composePost", frontend));
  ASSERT_TRUE(g.Lookup("ComposePostService", "composePost", compose));
  ASSERT_TRUE(g.Lookup("PostStorageMongoDB", "insert", mongo));
  EXPECT_TRUE(g.HasEdge(frontend, compose));
  EXPECT_TRUE(g.HasEdge(compose, mongo));
  EXPECT_FALSE(g.HasEdge(frontend, mongo));
}

TEST(TopologyGraphTest, ObserveIsIdempotentOnEdges) {
  TopologyGraph g;
  Trace t = MakeComposeTrace();
  g.Observe(t);
  g.Observe(t);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(TopologyGraphTest, LabelIsHumanReadable) {
  TopologyGraph g;
  const TopologyNodeId id = g.Intern("PostStorageService", "findPosts");
  EXPECT_EQ(g.label(id), "PostStorageService:findPosts");
}

TEST(PathToSpanTest, RootPathIsSingleton) {
  TopologyGraph g;
  Trace t = MakeComposeTrace();
  const auto ids = g.NodeIdsFor(t);
  const InvocationPath path = PathToSpan(t, ids, 0);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], ids[0]);
}

TEST(PathToSpanTest, DeepPathRunsRootToLeaf) {
  TopologyGraph g;
  Trace t = MakeComposeTrace();
  const auto ids = g.NodeIdsFor(t);
  const InvocationPath path = PathToSpan(t, ids, 2);  // PostStorageMongoDB:insert
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], ids[0]);
  EXPECT_EQ(path[1], ids[1]);
  EXPECT_EQ(path[2], ids[2]);
}

TEST(PathToSpanTest, SiblingsShareParentPrefix) {
  TopologyGraph g;
  Trace t = MakeComposeTrace();
  const auto ids = g.NodeIdsFor(t);
  const InvocationPath p2 = PathToSpan(t, ids, 2);
  const InvocationPath p3 = PathToSpan(t, ids, 3);
  ASSERT_EQ(p2.size(), 3u);
  ASSERT_EQ(p3.size(), 3u);
  EXPECT_EQ(p2[0], p3[0]);
  EXPECT_EQ(p2[1], p3[1]);
  EXPECT_NE(p2[2], p3[2]);
}

}  // namespace
}  // namespace deeprest
