#include "src/workload/social_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace deeprest {
namespace {

TEST(SocialGraphTest, DegreesWithinBounds) {
  Rng rng(1);
  SocialGraph graph(500, 2.2, 100, rng);
  EXPECT_EQ(graph.user_count(), 500u);
  for (size_t u = 0; u < graph.user_count(); ++u) {
    EXPECT_GE(graph.FollowersOf(u), 1u);
    EXPECT_LE(graph.FollowersOf(u), 100u);
  }
}

TEST(SocialGraphTest, HeavyTailedDistribution) {
  Rng rng(2);
  SocialGraph graph(5000, 2.2, 1000, rng);
  size_t max_degree = 0;
  for (size_t u = 0; u < graph.user_count(); ++u) {
    max_degree = std::max(max_degree, graph.FollowersOf(u));
  }
  // Heavy tail: the most popular user dwarfs the mean.
  EXPECT_GT(static_cast<double>(max_degree), 10.0 * graph.mean_followers());
  // Most users have few followers.
  size_t small = 0;
  for (size_t u = 0; u < graph.user_count(); ++u) {
    if (graph.FollowersOf(u) <= 5) {
      ++small;
    }
  }
  EXPECT_GT(small, graph.user_count() / 2);
}

TEST(SocialGraphTest, DeterministicForSeed) {
  Rng rng_a(3);
  Rng rng_b(3);
  SocialGraph a(200, 2.0, 50, rng_a);
  SocialGraph b(200, 2.0, 50, rng_b);
  for (size_t u = 0; u < 200; ++u) {
    EXPECT_EQ(a.FollowersOf(u), b.FollowersOf(u));
  }
}

TEST(SocialGraphTest, SampleActiveUserInRange) {
  Rng rng(4);
  SocialGraph graph(100, 2.2, 100, rng);
  Rng sample_rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(graph.SampleActiveUser(sample_rng), 100u);
  }
}

TEST(SocialGraphTest, PopularUsersSampledMoreOften) {
  Rng rng(6);
  SocialGraph graph(1000, 2.2, 500, rng);
  Rng sample_rng(7);
  double sampled_mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sampled_mean += static_cast<double>(graph.SampleFollowerCount(sample_rng));
  }
  sampled_mean /= n;
  // Activity-weighted sampling is biased above the plain mean.
  EXPECT_GT(sampled_mean, graph.mean_followers());
}

TEST(MediaSamplerTest, PositiveWithLongTail) {
  Rng rng(8);
  double mean = 0.0;
  double max = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double kb = SampleMediaSizeKb(rng);
    EXPECT_GT(kb, 0.0);
    mean += kb;
    max = std::max(max, kb);
  }
  mean /= n;
  // Log-normal(5, 0.8): mean = exp(5 + 0.32) ~ 204 KiB.
  EXPECT_NEAR(mean, 204.0, 25.0);
  EXPECT_GT(max, 4.0 * mean);
}

TEST(PostLengthTest, ClampedToTweetRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const size_t len = SamplePostLength(rng);
    EXPECT_GE(len, 1u);
    EXPECT_LE(len, 280u);
  }
}

}  // namespace
}  // namespace deeprest
