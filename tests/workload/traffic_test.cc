#include "src/workload/traffic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace deeprest {
namespace {

TEST(ShapeProfileTest, NormalizedToMeanOne) {
  for (ShapeKind kind : {ShapeKind::kTwoPeak, ShapeKind::kFlat, ShapeKind::kSinglePeak}) {
    const auto profile = ShapeProfile(kind, 96);
    double mean = 0.0;
    for (double v : profile) {
      mean += v;
    }
    mean /= profile.size();
    EXPECT_NEAR(mean, 1.0, 1e-9) << ShapeKindName(kind);
  }
}

TEST(ShapeProfileTest, FlatIsConstant) {
  const auto profile = ShapeProfile(ShapeKind::kFlat, 48);
  for (double v : profile) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(ShapeProfileTest, TwoPeakHasTwoDistinctPeaks) {
  const auto profile = ShapeProfile(ShapeKind::kTwoPeak, 96);
  // Count strict local maxima.
  int peaks = 0;
  for (size_t i = 1; i + 1 < profile.size(); ++i) {
    if (profile[i] > profile[i - 1] && profile[i] > profile[i + 1]) {
      ++peaks;
    }
  }
  EXPECT_EQ(peaks, 2);
  // Peak-to-trough dynamic range is pronounced.
  const double max = *std::max_element(profile.begin(), profile.end());
  const double min = *std::min_element(profile.begin(), profile.end());
  EXPECT_GT(max / min, 3.0);
}

TEST(ShapeProfileTest, SinglePeakHasOnePeak) {
  const auto profile = ShapeProfile(ShapeKind::kSinglePeak, 96);
  int peaks = 0;
  for (size_t i = 1; i + 1 < profile.size(); ++i) {
    if (profile[i] > profile[i - 1] && profile[i] > profile[i + 1]) {
      ++peaks;
    }
  }
  EXPECT_EQ(peaks, 1);
}

TEST(ShapeProfileTest, NamesAreStable) {
  EXPECT_EQ(ShapeKindName(ShapeKind::kTwoPeak), "two_peak");
  EXPECT_EQ(ShapeKindName(ShapeKind::kFlat), "flat");
  EXPECT_EQ(ShapeKindName(ShapeKind::kSinglePeak), "single_peak");
}

TrafficSpec BasicSpec() {
  TrafficSpec spec;
  spec.days = 2;
  spec.windows_per_day = 24;
  spec.base_requests_per_window = 100.0;
  spec.mix = {{"/a", 3.0}, {"/b", 1.0}};
  return spec;
}

TEST(GenerateTrafficTest, Dimensions) {
  Rng rng(1);
  const TrafficSeries series = GenerateTraffic(BasicSpec(), rng);
  EXPECT_EQ(series.windows(), 48u);
  EXPECT_EQ(series.api_count(), 2u);
  EXPECT_EQ(series.apis()[0], "/a");
}

TEST(GenerateTrafficTest, DeterministicForSeed) {
  Rng rng_a(7);
  Rng rng_b(7);
  const TrafficSeries a = GenerateTraffic(BasicSpec(), rng_a);
  const TrafficSeries b = GenerateTraffic(BasicSpec(), rng_b);
  for (size_t w = 0; w < a.windows(); ++w) {
    for (size_t i = 0; i < a.api_count(); ++i) {
      EXPECT_DOUBLE_EQ(a.rate(w, i), b.rate(w, i));
    }
  }
}

TEST(GenerateTrafficTest, MixProportionsRoughlyRespected) {
  Rng rng(2);
  TrafficSpec spec = BasicSpec();
  spec.days = 12;  // enough days to average out the per-API daily drift
  const TrafficSeries series = GenerateTraffic(spec, rng);
  double total_a = 0.0;
  double total_b = 0.0;
  for (size_t w = 0; w < series.windows(); ++w) {
    total_a += series.rate(w, 0);
    total_b += series.rate(w, 1);
  }
  EXPECT_NEAR(total_a / (total_a + total_b), 0.75, 0.03);
}

TEST(GenerateTrafficTest, UserScaleMultipliesTotal) {
  TrafficSpec spec = BasicSpec();
  spec.day_jitter = 0.0;
  spec.window_jitter = 0.0;
  Rng rng_a(3);
  const double base_total = GenerateTraffic(spec, rng_a).GrandTotal();
  spec.user_scale = 3.0;
  Rng rng_b(3);
  const double scaled_total = GenerateTraffic(spec, rng_b).GrandTotal();
  EXPECT_NEAR(scaled_total / base_total, 3.0, 1e-6);
}

TEST(GenerateTrafficTest, GrandTotalMatchesBaseRate) {
  TrafficSpec spec = BasicSpec();
  spec.day_jitter = 0.0;
  spec.window_jitter = 0.0;
  Rng rng(4);
  const TrafficSeries series = GenerateTraffic(spec, rng);
  // mean requests/window == base rate when jitter is off.
  EXPECT_NEAR(series.GrandTotal() / series.windows(), 100.0, 1e-6);
}

TEST(GenerateTrafficTest, JitterProducesDayVariation) {
  TrafficSpec spec = BasicSpec();
  spec.shape = ShapeKind::kFlat;
  spec.day_jitter = 0.2;
  spec.window_jitter = 0.0;
  Rng rng(5);
  const TrafficSeries series = GenerateTraffic(spec, rng);
  double day0 = 0.0;
  double day1 = 0.0;
  for (size_t w = 0; w < 24; ++w) {
    day0 += series.TotalAt(w);
    day1 += series.TotalAt(24 + w);
  }
  EXPECT_NE(day0, day1);
}

TEST(TrafficSeriesTest, ApiIndexLookup) {
  TrafficSeries series({"/x", "/y"}, 4);
  size_t idx = 99;
  EXPECT_TRUE(series.ApiIndex("/y", idx));
  EXPECT_EQ(idx, 1u);
  EXPECT_FALSE(series.ApiIndex("/z", idx));
}

TEST(TrafficSeriesTest, AppendConcatenates) {
  TrafficSeries a({"/x"}, 2);
  a.set_rate(0, 0, 1.0);
  a.set_rate(1, 0, 2.0);
  TrafficSeries b({"/x"}, 1);
  b.set_rate(0, 0, 3.0);
  a.Append(b);
  EXPECT_EQ(a.windows(), 3u);
  EXPECT_DOUBLE_EQ(a.rate(2, 0), 3.0);
}

TEST(TrafficSeriesTest, TotalAtSumsApis) {
  TrafficSeries s({"/x", "/y"}, 1);
  s.set_rate(0, 0, 1.5);
  s.set_rate(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(s.TotalAt(0), 4.0);
}

}  // namespace
}  // namespace deeprest
