// deeprest_analyze — flow-aware project analyzer (the successor of the
// token-level deeprest_lint).
//
// Three layers, all dependency-free standalone C++:
//   * lexer.cc        — tokenizes C++ (comments/strings stripped, preprocessor
//                       lines collected, `deeprest-lint:` escape and
//                       `lock-level(...)` hierarchy comments recorded).
//   * index.cc        — per-file declaration/annotation facts: mutex members
//                       with their DEEPREST_ACQUIRED_AFTER / lock-level
//                       hierarchy annotations, and enum-class enumerator
//                       tables. Facts are cheap, serializable, and feed the
//                       cross-file passes.
//   * rules.cc/flow.cc/lockgraph.cc — the rule passes:
//       - the nine legacy token rules (ids unchanged, see rules.cc);
//       - lock-graph-{cycle,order,position}: global lock graph from the
//         annotations, cycle detection, intra-procedural acquisition-order
//         checking, hierarchy-position coverage, DOT export;
//       - resource-pairing: path-sensitive Charge/Reserve vs Release
//         matching along early-return paths, double-release, discarded
//         leases;
//       - blocking-under-lock: cv waits / slab I/O / MemoryBudget::Reserve
//         while a MutexLock scope is live (or under DEEPREST_REQUIRES);
//       - enum-switch: exhaustiveness for RequestStatus / ShedPolicy /
//         KernelMode / ColdTier switches;
//       - stale-escape: allow()/bounded() comments and allowlist entries
//         that no longer suppress anything.
//
// The engine (main.cc) adds machine-readable output (--format=sarif|github),
// a content-hash incremental cache (--cache FILE, cache.cc) and lock-graph
// DOT export (--dot FILE). Exit codes: 0 clean, 1 violations, 2 usage/IO.
#ifndef TOOLS_ANALYZE_ANALYZE_H_
#define TOOLS_ANALYZE_ANALYZE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace deeprest_analyze {

// Bump when rule semantics change: invalidates every incremental cache.
inline constexpr const char* kEngineVersion = "deeprest-analyze-v1";

// ---------------------------------------------------------------------------
// Lexing
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
};

// One allow-rule (or bounded-cap) escape-comment grant: suppresses
// `rule` on comment_line and comment_line + 1. Tracked individually so a
// grant that suppresses nothing can be reported stale.
struct AllowGrant {
  std::string rule;
  int comment_line = 0;
};

struct FileScan {
  std::vector<Token> tokens;          // identifiers, numbers, punctuation
  std::vector<std::string> pp_lines;  // preprocessor lines, lowercased
  std::vector<int> pp_line_numbers;
  // rule -> lines granted by allow()/bounded() comments (line and line + 1).
  std::map<std::string, std::set<int>> allowed_lines;
  std::vector<AllowGrant> grants;
  // `// deeprest-lint: lock-level(<spec>)` comments: line -> spec text
  // ("leaf", "root", "after X [Y...]", "before X [Y...]").
  std::map<int, std::string> lock_levels;
};

FileScan ScanFile(const std::string& text);
bool IsIdentChar(char c);

// ---------------------------------------------------------------------------
// Diagnostics and suppression
// ---------------------------------------------------------------------------

struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct AllowlistEntry {
  std::string rule;  // "*" matches every rule
  std::string path_substring;
  int line = 0;  // line in the allowlist file, for stale-escape reports
};

// Shared sink: Report() applies inline grants and the allowlist, and records
// which escapes actually suppressed something (stale-escape's input).
struct Sink {
  std::vector<AllowlistEntry> allowlist;
  std::vector<Diagnostic> diagnostics;
  std::set<size_t> used_allowlist;  // indices into allowlist
  // path -> rule -> lines whose grant suppressed something.
  std::map<std::string, std::map<std::string, std::set<int>>> used_inline;

  // Suppression for facts-only passes (no FileScan in hand): the caller
  // passes the rules inline-granted at `line` explicitly.
  bool Suppressed(const std::string& rule, const std::string& path, int line,
                  const std::set<int>* granted_lines);
  void Report(const std::string& rule, const std::string& path, int line,
              const std::string& message, const FileScan& scan);
  // Facts-level report: `inline_rules` are the rules granted at the fact's
  // declaration line (carried through the cache for cached files).
  void ReportFact(const std::string& rule, const std::string& path, int line,
                  const std::string& message, const std::set<std::string>& inline_rules);
};

// ---------------------------------------------------------------------------
// Cross-file facts (the indexer's output; serialized into the cache)
// ---------------------------------------------------------------------------

struct MutexFact {
  std::string owner;  // enclosing class chain, "Outer::Inner" ("" for free)
  std::string name;
  int line = 0;
  std::vector<std::string> acquired_after;   // raw DEEPREST_ACQUIRED_AFTER args
  std::vector<std::string> acquired_before;  // raw DEEPREST_ACQUIRED_BEFORE args
  std::string lock_level;                    // raw lock-level(...) spec, or ""
  std::set<std::string> inline_allows;      // rules allow()ed at the decl line
};

struct EnumFact {
  std::string name;
  int line = 0;
  std::vector<std::string> enumerators;
};

struct FileFacts {
  std::vector<MutexFact> mutexes;
  std::vector<EnumFact> enums;
};

// Extracts facts (mutex members + annotations, enum tables) from one scan.
FileFacts ExtractFacts(const std::string& path, const FileScan& scan);

// ---------------------------------------------------------------------------
// Lock graph
// ---------------------------------------------------------------------------

struct LockNode {
  std::string id;    // "Class::member" (or bare name for free references)
  std::string path;  // declaring file ("" for nodes only ever referenced)
  int line = 0;
  bool leaf = false;
  bool has_position = false;  // own annotation, referenced, or lock-level
  std::set<std::string> inline_allows;
};

struct LockGraph {
  std::map<std::string, LockNode> nodes;
  // edges[a] = set of b with "a acquired before b".
  std::map<std::string, std::set<std::string>> edges;

  // True when `from` must be acquired before `to` (path in the edge graph).
  bool OrderedBefore(const std::string& from, const std::string& to) const;
  // Resolves a lock name seen in `owner`'s scope to a node id: exact member
  // of the owner chain, then qualified suffix, then unique bare name.
  std::string Resolve(const std::string& name, const std::string& owner) const;
};

// Builds the global graph from every file's facts and runs the global rules
// (lock-graph-cycle, lock-graph-position) into `sink`.
LockGraph BuildLockGraph(const std::map<std::string, FileFacts>& facts, Sink& sink);

// DOT rendering of the graph (the DESIGN.md §7 generator).
std::string LockGraphDot(const LockGraph& graph);

// ---------------------------------------------------------------------------
// Rule passes
// ---------------------------------------------------------------------------

// The nine legacy token rules (ids unchanged from deeprest_lint).
void RunTokenRules(const std::string& path, const FileScan& scan, Sink& sink);

// enum-switch exhaustiveness. `global_enums` maps enum name -> enumerators;
// a file-local definition of the same name wins (fixtures are self-contained).
void CheckEnumSwitch(const std::string& path, const FileScan& scan,
                     const std::map<std::string, std::vector<std::string>>& global_enums,
                     Sink& sink);

// The intra-procedural flow rules: lock-graph-order, blocking-under-lock,
// resource-pairing. Walks every function body in the file.
void RunFlowRules(const std::string& path, const FileScan& scan,
                  const LockGraph& graph, Sink& sink);

// stale-escape for inline grants: every allow()/bounded() comment must have
// suppressed at least one diagnostic in this run of the file.
void CheckStaleInlineGrants(const std::string& path, const FileScan& scan, Sink& sink);

// ---------------------------------------------------------------------------
// Incremental cache (cache.cc)
// ---------------------------------------------------------------------------

struct CachedFile {
  std::string content_hash;
  FileFacts facts;
  std::vector<Diagnostic> diagnostics;  // per-file diags (path omitted on disk)
  std::set<size_t> used_allowlist;      // allowlist entries this file consumed
};

struct Cache {
  std::string global_key;   // engine version + allowlist bytes hash
  std::string facts_hash;   // cross-file facts fingerprint of the last run
  std::map<std::string, CachedFile> files;
};

std::string HashBytes(const std::string& bytes);  // FNV-1a, hex
bool LoadCache(const std::string& path, Cache& cache);
bool SaveCache(const std::string& path, const Cache& cache);
std::string SerializeFacts(const FileFacts& facts);  // also the facts-hash input

// ---------------------------------------------------------------------------
// Output (output.cc)
// ---------------------------------------------------------------------------

std::string RenderText(const std::vector<Diagnostic>& diagnostics);
std::string RenderSarif(const std::vector<Diagnostic>& diagnostics);
std::string RenderGithub(const std::vector<Diagnostic>& diagnostics);

}  // namespace deeprest_analyze

#endif  // TOOLS_ANALYZE_ANALYZE_H_
