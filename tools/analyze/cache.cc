// Content-hash incremental cache. One text file, tab-separated records:
//
//   deeprest-analyze-cache <global_key>
//   facts <facts_hash>
//   file <path> <content_hash>
//   mutex <owner> <name> <line> <level> <after,...> <before,...> <allows,...>
//   enumt <name> <line> <enum1,enum2,...>
//   diag <line> <rule> <escaped message>
//   usea <allowlist index>
//   end
//
// The global key folds in the engine version and the allowlist bytes: any
// rule-semantics or suppression change drops the whole cache. A file whose
// content hash matches reuses its facts, per-file diagnostics and allowlist
// usage without being re-lexed. The cross-file passes (lock graph, enum
// tables, stale allowlist entries) are recomputed from facts every run —
// they are cheap — and if the combined facts fingerprint shifts, the engine
// re-analyzes everything, because per-file flow diagnostics depend on the
// global graph.
#include <fstream>
#include <sstream>

#include "tools/analyze/analyze.h"

namespace deeprest_analyze {
namespace {

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 't' ? '\t' : s[i] == 'n' ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

std::string JoinCommas(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& part : parts) {
    out += out.empty() ? part : "," + part;
  }
  return out;
}

std::string JoinCommas(const std::set<std::string>& parts) {
  return JoinCommas(std::vector<std::string>(parts.begin(), parts.end()));
}

std::vector<std::string> SplitCommas(const std::string& joined) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start < joined.size()) {
    const size_t comma = joined.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(joined.substr(start));
      break;
    }
    if (comma > start) {
      parts.push_back(joined.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return parts;
}

}  // namespace

std::string HashBytes(const std::string& bytes) {
  // FNV-1a, 64-bit.
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  std::ostringstream out;
  out << std::hex << hash;
  return out.str();
}

std::string SerializeFacts(const FileFacts& facts) {
  std::ostringstream out;
  for (const MutexFact& m : facts.mutexes) {
    out << "mutex\t" << EscapeField(m.owner) << '\t' << EscapeField(m.name) << '\t'
        << m.line << '\t' << EscapeField(m.lock_level) << '\t'
        << JoinCommas(m.acquired_after) << '\t' << JoinCommas(m.acquired_before)
        << '\t' << JoinCommas(m.inline_allows) << '\n';
  }
  for (const EnumFact& e : facts.enums) {
    out << "enumt\t" << EscapeField(e.name) << '\t' << e.line << '\t'
        << JoinCommas(e.enumerators) << '\n';
  }
  return out.str();
}

bool LoadCache(const std::string& path, Cache& cache) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  if (!std::getline(in, line)) {
    return false;
  }
  {
    const std::vector<std::string> header = SplitTabs(line);
    if (header.size() != 2 || header[0] != "deeprest-analyze-cache") {
      return false;
    }
    cache.global_key = header[1];
  }
  CachedFile* current = nullptr;
  while (std::getline(in, line)) {
    const std::vector<std::string> f = SplitTabs(line);
    if (f.empty()) {
      continue;
    }
    if (f[0] == "facts" && f.size() == 2) {
      cache.facts_hash = f[1];
    } else if (f[0] == "file" && f.size() == 3) {
      current = &cache.files[UnescapeField(f[1])];
      current->content_hash = f[2];
    } else if (current == nullptr) {
      continue;
    } else if (f[0] == "mutex" && f.size() == 8) {
      MutexFact m;
      m.owner = UnescapeField(f[1]);
      m.name = UnescapeField(f[2]);
      m.line = std::atoi(f[3].c_str());
      m.lock_level = UnescapeField(f[4]);
      m.acquired_after = SplitCommas(f[5]);
      m.acquired_before = SplitCommas(f[6]);
      for (const std::string& rule : SplitCommas(f[7])) {
        m.inline_allows.insert(rule);
      }
      current->facts.mutexes.push_back(m);
    } else if (f[0] == "enumt" && f.size() == 4) {
      EnumFact e;
      e.name = UnescapeField(f[1]);
      e.line = std::atoi(f[2].c_str());
      e.enumerators = SplitCommas(f[3]);
      current->facts.enums.push_back(e);
    } else if (f[0] == "diag" && f.size() == 4) {
      Diagnostic d;
      d.line = std::atoi(f[1].c_str());
      d.rule = UnescapeField(f[2]);
      d.message = UnescapeField(f[3]);
      current->diagnostics.push_back(d);
    } else if (f[0] == "usea" && f.size() == 2) {
      current->used_allowlist.insert(static_cast<size_t>(std::atol(f[1].c_str())));
    }
  }
  return true;
}

bool SaveCache(const std::string& path, const Cache& cache) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  out << "deeprest-analyze-cache\t" << cache.global_key << '\n';
  out << "facts\t" << cache.facts_hash << '\n';
  for (const auto& [file_path, file] : cache.files) {
    out << "file\t" << EscapeField(file_path) << '\t' << file.content_hash << '\n';
    out << SerializeFacts(file.facts);
    for (const Diagnostic& d : file.diagnostics) {
      out << "diag\t" << d.line << '\t' << EscapeField(d.rule) << '\t'
          << EscapeField(d.message) << '\n';
    }
    for (size_t index : file.used_allowlist) {
      out << "usea\t" << index << '\n';
    }
    out << "end\n";
  }
  return out.good();
}

}  // namespace deeprest_analyze
