// Intra-procedural control-flow rules. Function bodies are located by
// signature shape (`) ... {` outside any other body, with ctor-init lists,
// qualifiers and DEEPREST_* attributes skipped), then each body gets:
//
//   * a linear lock-scope walk — RAII lock declarations (MutexLock,
//     lock_guard, unique_lock, scoped_lock) tracked by brace depth, plus
//     locks held via DEEPREST_REQUIRES on the signature:
//       - blocking-under-lock: cv waits (.wait/.wait_for/.wait_until —
//         MutexLock's capital Wait* wrappers release the lock and are
//         sanctioned), thread sleeps, SlabFile WriteSlot/ReadSlot disk I/O,
//         and MemoryBudget Reserve/CheckPressure while any lock is held;
//       - lock-graph-order: acquiring B while holding A when the global
//         graph orders B before A (or B == A, or A is lock-level(leaf)).
//
//   * a statement-tree parse (if/else branching; loops and switches inlined
//     once) enumerating early-return paths for resource-pairing:
//       - a Charge/Reserve with a matching Release on one path but a net
//         positive balance on another is a leak on that other path;
//       - two Releases of the same amount with no intervening Charge on one
//         path is a double-release;
//       - a discarded `x.Acquire*(...)` statement destroys its lease
//         immediately — the pin never existed.
//     `if (!x.Reserve(n))` guards are modeled path-sensitively: the charge
//     lands on the success arm only.
#include <string>

#include "tools/analyze/analyze.h"

namespace deeprest_analyze {
namespace {

bool TokenIs(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

bool IsIdent(const std::vector<Token>& t, size_t i) {
  return i < t.size() && IsIdentChar(t[i].text[0]);
}

// Index just past the `)` matching the `(` at `open`.
size_t SkipParens(const std::vector<Token>& t, size_t open, size_t end) {
  int parens = 0;
  for (size_t j = open; j < end; ++j) {
    if (t[j].text == "(") {
      ++parens;
    } else if (t[j].text == ")" && --parens == 0) {
      return j + 1;
    }
  }
  return end;
}

// The `member.chain` (idents joined by . -> ::) ENDING at token `last`
// inclusive; `first_out` receives the chain's first token index.
std::string ChainEndingAt(const std::vector<Token>& t, size_t last, size_t* first_out) {
  size_t first = last;
  while (first >= 2) {
    const std::string& prev = t[first - 1].text;
    if (prev == "." && IsIdent(t, first - 2)) {
      first -= 2;
    } else if (prev == ">" && first >= 3 && t[first - 2].text == "-" &&
               IsIdent(t, first - 3)) {
      first -= 3;
    } else if (prev == ":" && first >= 3 && t[first - 2].text == ":" &&
               IsIdent(t, first - 3)) {
      first -= 3;
    } else {
      break;
    }
  }
  std::string chain;
  for (size_t j = first; j <= last; ++j) {
    chain += t[j].text;
  }
  if (first_out != nullptr) {
    *first_out = first;
  }
  return chain;
}

// ---------------------------------------------------------------------------
// Lock-scope walk: blocking-under-lock + lock-graph-order
// ---------------------------------------------------------------------------

struct HeldLock {
  int depth = 0;         // brace depth of the declaration (0 = whole function)
  std::string var;       // RAII variable name ("" for REQUIRES)
  std::string node_id;   // resolved graph node, "" if unresolved
  std::string display;   // what diagnostics call it
  int line = 0;
  bool active = true;
};

const char* kLockTypes[] = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock"};

bool IsLockType(const std::string& s) {
  for (const char* type : kLockTypes) {
    if (s == type) {
      return true;
    }
  }
  return false;
}

void WalkLockScopes(const std::string& path, const FileScan& scan,
                    const LockGraph& graph, const std::string& owner,
                    const std::vector<std::string>& requires_args, size_t begin,
                    size_t end, Sink& sink) {
  const auto& t = scan.tokens;
  std::vector<HeldLock> held;
  for (const std::string& name : requires_args) {
    HeldLock lock;
    lock.depth = -1;  // outlives every scope in the body
    lock.node_id = graph.Resolve(name, owner);
    lock.display = lock.node_id.empty() ? name : lock.node_id;
    held.push_back(lock);
  }
  auto any_held = [&held] {
    for (const HeldLock& lock : held) {
      if (lock.active) {
        return true;
      }
    }
    return false;
  };
  auto innermost = [&held]() -> const HeldLock& {
    const HeldLock* best = &held.front();
    for (const HeldLock& lock : held) {
      if (lock.active) {
        best = &lock;
      }
    }
    return *best;
  };
  int depth = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& s = t[i].text;
    if (s == "{") {
      ++depth;
      continue;
    }
    if (s == "}") {
      while (!held.empty() && held.back().depth == depth) {
        held.pop_back();
      }
      --depth;
      continue;
    }
    // RAII lock declaration: `MutexLock var(expr...)` (template args allowed
    // on the std types).
    if (IsLockType(s)) {
      size_t j = i + 1;
      if (TokenIs(t, j, "<")) {
        int angles = 0;
        for (; j < end; ++j) {
          if (t[j].text == "<") {
            ++angles;
          } else if (t[j].text == ">" && --angles == 0) {
            ++j;
            break;
          }
        }
      }
      if (!IsIdent(t, j) || !TokenIs(t, j + 1, "(")) {
        continue;
      }
      HeldLock lock;
      lock.depth = depth;
      lock.var = t[j].text;
      lock.line = t[j].line;
      // First constructor argument: the mutex expression.
      size_t arg_last = j + 1;
      size_t k = j + 2;
      int parens = 1;
      for (; k < end && parens > 0; ++k) {
        const std::string& a = t[k].text;
        if (a == "(") {
          ++parens;
        } else if (a == ")") {
          --parens;
        } else if (a == "," && parens == 1) {
          break;
        }
        if (parens >= 1 && IsIdentChar(a[0])) {
          arg_last = k;
        }
      }
      if (IsIdent(t, arg_last)) {
        const std::string bare = t[arg_last].text;
        lock.node_id = graph.Resolve(bare, owner);
        lock.display = lock.node_id.empty() ? ChainEndingAt(t, arg_last, nullptr)
                                            : lock.node_id;
        // Order check against everything currently held.
        for (const HeldLock& prior : held) {
          if (!prior.active) {
            continue;
          }
          const LockNode* prior_node = nullptr;
          auto node_it = graph.nodes.find(prior.node_id);
          if (node_it != graph.nodes.end()) {
            prior_node = &node_it->second;
          }
          if (!lock.node_id.empty() && !prior.node_id.empty() &&
              graph.OrderedBefore(lock.node_id, prior.node_id)) {
            sink.Report("lock-graph-order", path, lock.line,
                        lock.node_id == prior.node_id
                            ? "re-acquiring `" + lock.node_id + "` already held "
                              "in this scope — self-deadlock"
                            : "acquiring `" + lock.node_id + "` while holding `" +
                              prior.node_id + "` inverts the declared order (" +
                              lock.node_id + " is annotated before " +
                              prior.node_id + "); see DESIGN.md §7",
                        scan);
          } else if (prior_node != nullptr && prior_node->leaf) {
            sink.Report("lock-graph-order", path, lock.line,
                        "acquiring `" + lock.display + "` while holding `" +
                        prior.display + "`, which is annotated "
                        "lock-level(leaf) — leaf locks must be terminal",
                        scan);
          }
        }
      }
      held.push_back(lock);
      i = j + 1;  // resume inside the constructor args (events already taken)
      continue;
    }
    // Early release: `var.Unlock()` (MutexLock) / `var.unlock()` (std).
    if ((s == "Unlock" || s == "unlock") && i >= 2 && t[i - 1].text == "." &&
        TokenIs(t, i + 1, "(")) {
      for (HeldLock& lock : held) {
        if (lock.active && lock.var == t[i - 2].text) {
          lock.active = false;
        }
      }
      continue;
    }
    if (!any_held()) {
      continue;
    }
    // Blocking calls while a lock scope is live.
    const bool member_call =
        i >= 1 && (t[i - 1].text == "." ||
                   (t[i - 1].text == ">" && i >= 2 && t[i - 2].text == "-"));
    std::string what;
    if ((s == "Reserve" || s == "CheckPressure") && member_call &&
        TokenIs(t, i + 1, "(")) {
      what = "MemoryBudget::" + s + "() takes the budget mutex and may run "
             "pressure callbacks";
    } else if ((s == "WriteSlot" || s == "ReadSlot") && member_call &&
               TokenIs(t, i + 1, "(")) {
      what = "SlabFile::" + s + "() is disk I/O";
    } else if ((s == "sleep_for" || s == "sleep_until") && TokenIs(t, i + 1, "(")) {
      what = "thread sleep";
    } else if ((s == "wait" || s == "wait_for" || s == "wait_until") &&
               member_call && TokenIs(t, i + 1, "(")) {
      what = "raw condition-variable " + s + "() (it does not release the "
             "MutexLock; use MutexLock::Wait*)";
    }
    if (!what.empty()) {
      sink.Report("blocking-under-lock", path, t[i].line,
                  what + " while holding `" + innermost().display + "` — "
                  "blocking under a lock stalls every waiter; move it outside "
                  "the critical section (see src/serve/state_cache.h)",
                  scan);
    }
  }
}

// ---------------------------------------------------------------------------
// Resource-pairing: statement tree + path enumeration
// ---------------------------------------------------------------------------

struct Event {
  enum Kind { kCharge, kRelease, kReturn } kind = kCharge;
  std::string recv;
  std::string arg;
  int line = 0;
};

struct Node {
  bool is_branch = false;
  std::vector<Event> events;           // linear node
  std::vector<Node> then_arm, else_arm;  // branch node
};

// Records Charge/Reserve/Release member calls in [b, e). Reserve events are
// diverted to `reserves` with their negation context when it is non-null
// (condition parsing); otherwise they count as plain charges.
void CollectEvents(const std::vector<Token>& t, size_t b, size_t e,
                   std::vector<Event>* events,
                   std::vector<std::pair<Event, bool>>* reserves) {
  for (size_t i = b; i < e; ++i) {
    const std::string& s = t[i].text;
    const bool member_call =
        i >= 1 && (t[i - 1].text == "." ||
                   (t[i - 1].text == ">" && i >= 2 && t[i - 2].text == "-"));
    if (!member_call || !TokenIs(t, i + 1, "(")) {
      continue;
    }
    if (s != "Charge" && s != "Release" && s != "Reserve") {
      continue;
    }
    Event event;
    event.kind = s == "Release" ? Event::kRelease : Event::kCharge;
    event.line = t[i].line;
    const size_t recv_last = t[i - 1].text == "." ? i - 2 : i - 3;
    size_t chain_first = recv_last;
    event.recv = ChainEndingAt(t, recv_last, &chain_first);
    for (size_t j = i + 2; j < e; ++j) {
      if (t[j].text == ")") {
        break;
      }
      event.arg += t[j].text;
    }
    if (s == "Reserve" && reserves != nullptr) {
      const bool negated = chain_first >= 1 && t[chain_first - 1].text == "!";
      reserves->push_back({event, negated});
    } else {
      events->push_back(event);
    }
  }
}

class TreeParser {
 public:
  TreeParser(const std::string& path, const std::vector<Token>& t,
             const FileScan& scan, Sink& sink)
      : path_(path), t_(t), scan_(scan), sink_(sink) {}

  std::vector<Node> ParseBlock(size_t b, size_t e) {
    std::vector<Node> nodes;
    size_t i = b;
    while (i < e) {
      const std::string& s = t_[i].text;
      if (s == ";" || s == "}") {
        ++i;
        continue;
      }
      if (s == "{") {
        const size_t close = MatchBrace(i, e);
        auto inner = ParseBlock(i + 1, close);
        nodes.insert(nodes.end(), inner.begin(), inner.end());
        i = close + 1;
        continue;
      }
      if (s == "if" && TokenIs(t_, i + 1, "(")) {
        const size_t cond_end = SkipParens(t_, i + 1, e);
        Node linear;
        std::vector<std::pair<Event, bool>> reserves;
        CollectEvents(t_, i + 1, cond_end, &linear.events, &reserves);
        if (!linear.events.empty()) {
          nodes.push_back(linear);  // unconditional side effects of the cond
        }
        Node branch;
        branch.is_branch = true;
        size_t next = ParseArm(cond_end, e, &branch.then_arm);
        if (next < e && TokenIs(t_, next, "else")) {
          next = ParseArm(next + 1, e, &branch.else_arm);
        }
        // `if (!x.Reserve(n))` charges only on the success (else/continuation)
        // arm; un-negated Reserve charges on the then arm.
        for (const auto& [event, negated] : reserves) {
          Node charge;
          charge.events.push_back(event);
          if (negated) {
            branch.else_arm.insert(branch.else_arm.begin(), charge);
          } else {
            branch.then_arm.insert(branch.then_arm.begin(), charge);
          }
        }
        nodes.push_back(branch);
        i = next;
        continue;
      }
      if ((s == "for" || s == "while" || s == "switch") && TokenIs(t_, i + 1, "(")) {
        const size_t cond_end = SkipParens(t_, i + 1, e);
        Node linear;
        CollectEvents(t_, i + 1, cond_end, &linear.events, nullptr);
        if (!linear.events.empty()) {
          nodes.push_back(linear);
        }
        // Loop/switch bodies are inlined once: enough for pairing, and a
        // 0-iteration leak report would be noise on every drain loop.
        std::vector<Node> body;
        i = ParseArm(cond_end, e, &body);
        nodes.insert(nodes.end(), body.begin(), body.end());
        continue;
      }
      if (s == "do") {
        std::vector<Node> body;
        i = ParseArm(i + 1, e, &body);
        nodes.insert(nodes.end(), body.begin(), body.end());
        continue;
      }
      if (s == "return") {
        size_t stmt_end = StatementEnd(i + 1, e);
        Node linear;
        CollectEvents(t_, i + 1, stmt_end, &linear.events, nullptr);
        Event ret;
        ret.kind = Event::kReturn;
        ret.line = t_[i].line;
        linear.events.push_back(ret);
        nodes.push_back(linear);
        i = stmt_end + 1;
        continue;
      }
      // Plain statement.
      const size_t stmt_end = StatementEnd(i, e);
      Node linear;
      CollectEvents(t_, i, stmt_end, &linear.events, nullptr);
      CheckDiscardedAcquire(i, stmt_end);
      if (!linear.events.empty()) {
        nodes.push_back(linear);
      }
      i = stmt_end + 1;
    }
    return nodes;
  }

 private:
  size_t MatchBrace(size_t open, size_t e) const {
    int braces = 0;
    for (size_t j = open; j < e; ++j) {
      if (t_[j].text == "{") {
        ++braces;
      } else if (t_[j].text == "}" && --braces == 0) {
        return j;
      }
    }
    return e;
  }

  // End (the `;`) of the statement starting at `b`, skipping nested parens
  // and braces (lambda bodies, brace-init).
  size_t StatementEnd(size_t b, size_t e) const {
    int parens = 0;
    int braces = 0;
    for (size_t j = b; j < e; ++j) {
      const std::string& s = t_[j].text;
      if (s == "(") {
        ++parens;
      } else if (s == ")") {
        --parens;
      } else if (s == "{") {
        ++braces;
      } else if (s == "}") {
        if (braces == 0) {
          return j;  // enclosing block closes: statement ends here
        }
        --braces;
      } else if (s == ";" && parens <= 0 && braces == 0) {
        return j;
      }
    }
    return e;
  }

  // Parses one arm: a braced block or a single statement (possibly a nested
  // `if`). Returns the index just past the arm.
  size_t ParseArm(size_t b, size_t e, std::vector<Node>* arm) {
    if (b >= e) {
      return e;
    }
    if (TokenIs(t_, b, "{")) {
      const size_t close = MatchBrace(b, e);
      *arm = ParseBlock(b + 1, close);
      return close + 1;
    }
    // Single statement — reuse the block parser on its token range.
    if (TokenIs(t_, b, "if") || TokenIs(t_, b, "for") || TokenIs(t_, b, "while") ||
        TokenIs(t_, b, "do") || TokenIs(t_, b, "switch")) {
      // Control statement as an arm: parse greedily from here; ParseBlock
      // handles the structure, StatementEnd below would not.
      std::vector<Node> sub = ParseBlock(b, ArmEnd(b, e));
      *arm = sub;
      return ArmEnd(b, e);
    }
    const size_t stmt_end = StatementEnd(b, e);
    *arm = ParseBlock(b, stmt_end + 1 > e ? e : stmt_end + 1);
    return stmt_end + 1 > e ? e : stmt_end + 1;
  }

  // End of a brace-less control-statement arm (`if (...) if (...) x;`):
  // the end of its first full statement after the control header chain.
  size_t ArmEnd(size_t b, size_t e) const {
    size_t j = b;
    while (j < e) {
      const std::string& s = t_[j].text;
      if (s == "if" || s == "for" || s == "while" || s == "switch") {
        j = SkipParens(t_, j + 1, e);
        continue;
      }
      if (s == "do" || s == "else") {
        ++j;
        continue;
      }
      if (s == "{") {
        return MatchBrace(j, e) + 1;
      }
      return StatementEnd(j, e) + 1;
    }
    return e;
  }

  // A statement whose top-level expression is a bare `x.Acquire*(...)` call
  // discards the returned lease immediately.
  void CheckDiscardedAcquire(size_t b, size_t stmt_end) {
    int parens = 0;
    for (size_t j = b; j < stmt_end; ++j) {
      const std::string& s = t_[j].text;
      if (s == "(") {
        ++parens;
        continue;
      }
      if (s == ")") {
        --parens;
        continue;
      }
      if (s == "=" && parens == 0) {
        return;  // the result is bound
      }
      if (parens == 0 && s.rfind("Acquire", 0) == 0 && j >= 1 &&
          (t_[j - 1].text == "." ||
           (t_[j - 1].text == ">" && j >= 2 && t_[j - 2].text == "-")) &&
          TokenIs(t_, j + 1, "(")) {
        sink_.Report("resource-pairing", path_, t_[j].line,
                     "`" + s + "(...)` result discarded — the returned lease "
                     "is destroyed before the statement ends, so the pin is "
                     "released immediately; bind it to a named local",
                     scan_);
        return;
      }
    }
  }

  const std::string& path_;
  const std::vector<Token>& t_;
  const FileScan& scan_;
  Sink& sink_;
};

// Enumerates early-return paths. `nodes[idx..]` continues an in-progress
// path; closed paths land in `out`. `budget` caps the path count.
void WalkPaths(const std::vector<Node>& nodes, size_t idx, std::vector<Event> current,
               std::vector<std::vector<Event>>* out, int* budget, bool* overflow) {
  if (*budget <= 0) {
    *overflow = true;
    return;
  }
  for (size_t k = idx; k < nodes.size(); ++k) {
    const Node& node = nodes[k];
    if (!node.is_branch) {
      for (const Event& event : node.events) {
        current.push_back(event);
        if (event.kind == Event::kReturn) {
          out->push_back(current);
          --*budget;
          return;
        }
      }
      continue;
    }
    for (const std::vector<Node>* arm : {&node.then_arm, &node.else_arm}) {
      std::vector<Node> joined = *arm;
      joined.insert(joined.end(), nodes.begin() + k + 1, nodes.end());
      WalkPaths(joined, 0, current, out, budget, overflow);
    }
    return;
  }
  out->push_back(current);
  --*budget;
}

void CheckResourcePairing(const std::string& path, const FileScan& scan,
                          size_t begin, size_t end, Sink& sink) {
  TreeParser parser(path, scan.tokens, scan, sink);
  const std::vector<Node> tree = parser.ParseBlock(begin, end);
  std::vector<std::vector<Event>> paths;
  int budget = 256;
  bool overflow = false;
  WalkPaths(tree, 0, {}, &paths, &budget, &overflow);
  if (overflow) {
    return;  // too many paths to reason about soundly — stay silent
  }
  // Receivers that ever get charged in this function.
  std::set<std::string> receivers;
  for (const auto& p : paths) {
    for (const Event& event : p) {
      if (event.kind == Event::kCharge) {
        receivers.insert(event.recv);
      }
    }
  }
  for (const std::string& recv : receivers) {
    // Anchor: some path both charges and later releases this receiver —
    // the function "owns" the pairing, so an unbalanced sibling path leaks.
    bool anchored = false;
    for (const auto& p : paths) {
      bool charged = false;
      for (const Event& event : p) {
        if (event.recv != recv) {
          continue;
        }
        if (event.kind == Event::kCharge) {
          charged = true;
        } else if (event.kind == Event::kRelease && charged) {
          anchored = true;
        }
      }
    }
    std::set<int> leak_lines;
    std::set<int> double_release_lines;
    for (const auto& p : paths) {
      std::vector<const Event*> open;  // unmatched charges, in order
      const Event* last_release = nullptr;
      for (const Event& event : p) {
        if (event.recv != recv) {
          continue;
        }
        if (event.kind == Event::kCharge) {
          open.push_back(&event);
          last_release = nullptr;
        } else if (event.kind == Event::kRelease) {
          if (!open.empty()) {
            open.pop_back();
          } else if (last_release != nullptr && !event.arg.empty() &&
                     last_release->arg == event.arg) {
            double_release_lines.insert(event.line);
          }
          last_release = &event;
        }
      }
      if (anchored) {
        for (const Event* unmatched : open) {
          leak_lines.insert(unmatched->line);
        }
      }
    }
    for (int line : leak_lines) {
      sink.Report("resource-pairing", path, line,
                  "`" + recv + "` is charged here but an early-return path "
                  "exits without the matching Release — the budget leaks on "
                  "that path",
                  scan);
    }
    for (int line : double_release_lines) {
      sink.Report("resource-pairing", path, line,
                  "`" + recv + "` released twice with the same amount and no "
                  "intervening charge on this path — double-release corrupts "
                  "the budget gauge",
                  scan);
    }
  }
}

// ---------------------------------------------------------------------------
// Function discovery
// ---------------------------------------------------------------------------

// Signature-suffix scan: from a top-level `)` forward to `{`, allowing
// cv-qualifiers, ref-qualifiers, noexcept, attributes, trailing return
// types, ctor-init lists and DEEPREST_* annotations. REQUIRES arguments are
// captured as held locks. Returns the body-open index, or 0 if this `)` does
// not end a function signature.
size_t FindBodyOpen(const std::vector<Token>& t, size_t close, size_t end,
                    std::vector<std::string>* requires_args) {
  size_t j = close + 1;
  const size_t limit = close + 200;
  while (j < end && j < limit) {
    const std::string& a = t[j].text;
    if (a == "{") {
      return j;
    }
    if (a == ";" || a == "=") {
      return 0;  // declaration, `= default/delete`, or an expression
    }
    if (a == "DEEPREST_REQUIRES" || a == "REQUIRES" || a == "requires_capability") {
      if (TokenIs(t, j + 1, "(")) {
        const size_t args_end = SkipParens(t, j + 1, end);
        std::string current;
        for (size_t k = j + 2; k + 1 < args_end; ++k) {
          if (t[k].text == ",") {
            if (!current.empty()) {
              requires_args->push_back(current);
            }
            current.clear();
          } else if (t[k].text == ":" || IsIdentChar(t[k].text[0])) {
            current += t[k].text;
          }
        }
        if (!current.empty()) {
          requires_args->push_back(current);
        }
        j = args_end;
        continue;
      }
    }
    if (a == "(") {
      j = SkipParens(t, j, end);
      continue;
    }
    ++j;
  }
  return 0;
}

}  // namespace

void RunFlowRules(const std::string& path, const FileScan& scan,
                  const LockGraph& graph, Sink& sink) {
  const auto& t = scan.tokens;
  // Class-body stack mirrors the indexer, so in-class method bodies resolve
  // member locks against the right owner.
  struct ClassBody {
    std::string name;
    int depth = 0;
  };
  std::vector<ClassBody> stack;
  int depth = 0;
  bool class_ahead = false;
  std::string class_name_ahead;
  size_t skip_function_scan_until = 0;  // inside an analyzed body
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "class" || s == "struct") {
      class_ahead = true;
      class_name_ahead.clear();
      if (IsIdent(t, i + 1)) {
        class_name_ahead = t[i + 1].text;
      }
      continue;
    }
    if (s == ";" && class_ahead) {
      class_ahead = false;
      continue;
    }
    if (s == "{") {
      ++depth;
      if (class_ahead) {
        stack.push_back({class_name_ahead, depth});
        class_ahead = false;
      }
      continue;
    }
    if (s == "}") {
      if (!stack.empty() && stack.back().depth == depth) {
        stack.pop_back();
      }
      --depth;
      continue;
    }
    if (s != ")" || i < skip_function_scan_until) {
      continue;
    }
    std::vector<std::string> requires_args;
    const size_t body_open = FindBodyOpen(t, i, t.size(), &requires_args);
    if (body_open == 0) {
      continue;
    }
    // Locate the signature's name and class qualifier: walk back to the `(`
    // matching this `)`, then over `Qual::Name`.
    size_t open = i;
    int parens = 0;
    while (open > 0) {
      if (t[open].text == ")") {
        ++parens;
      } else if (t[open].text == "(" && --parens == 0) {
        break;
      }
      --open;
    }
    std::string qualifier;
    if (open >= 1 && IsIdent(t, open - 1)) {
      size_t name_at = open - 1;
      std::string chain = ChainEndingAt(t, name_at, &name_at);
      const size_t sep = chain.rfind("::");
      if (sep != std::string::npos) {
        qualifier = chain.substr(0, sep);
        // Strip any leading namespace-ish segments conservatively: the graph
        // resolves suffix-qualified names, so the full chain is fine too.
      }
    }
    std::string owner;
    for (const ClassBody& body : stack) {
      if (!body.name.empty()) {
        owner += owner.empty() ? body.name : "::" + body.name;
      }
    }
    if (!qualifier.empty()) {
      owner = owner.empty() ? qualifier : owner + "::" + qualifier;
    }
    // Body range.
    int braces = 0;
    size_t body_close = body_open;
    for (; body_close < t.size(); ++body_close) {
      if (t[body_close].text == "{") {
        ++braces;
      } else if (t[body_close].text == "}" && --braces == 0) {
        break;
      }
    }
    WalkLockScopes(path, scan, graph, owner, requires_args, body_open + 1,
                   body_close, sink);
    CheckResourcePairing(path, scan, body_open + 1, body_close, sink);
    skip_function_scan_until = body_close;
  }
}

void CheckStaleInlineGrants(const std::string& path, const FileScan& scan, Sink& sink) {
  const auto by_path = sink.used_inline.find(path);
  for (const AllowGrant& grant : scan.grants) {
    if (by_path != sink.used_inline.end()) {
      const auto used = by_path->second.find(grant.rule);
      if (used != by_path->second.end() && used->second.count(grant.comment_line) > 0) {
        continue;
      }
    }
    sink.Report("stale-escape", path, grant.comment_line,
                "`" + grant.rule + "` escape here suppresses nothing — the "
                "violation it covered is gone; delete the comment so dead "
                "suppressions cannot hide new regressions",
                scan);
  }
}

}  // namespace deeprest_analyze
