// Cross-file declaration/annotation indexer. Walks a token scan once and
// extracts the facts the global passes need:
//   * mutex members (deeprest::Mutex and std::mutex variants) with their
//     enclosing class chain, DEEPREST_ACQUIRED_AFTER / ACQUIRED_BEFORE
//     annotation arguments, lock-level(...) hierarchy comments, and any
//     inline allow() grants active on the declaration line;
//   * enum tables (scoped and unscoped) with their enumerator lists.
// Facts are tiny and serializable (cache.cc), so cached files contribute to
// the lock graph and enum-switch checks without being re-lexed.
#include <cctype>

#include "tools/analyze/analyze.h"

namespace deeprest_analyze {
namespace {

bool TokenIs(const std::vector<Token>& t, size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}

bool PrecededByStd(const std::vector<Token>& t, size_t i) {
  return i >= 3 && t[i - 1].text == ":" && t[i - 2].text == ":" &&
         t[i - 3].text == "std";
}

// Collects comma-separated lock-name arguments (possibly `A::b` qualified)
// from the parenthesized list starting at the `(` token `open`. Returns the
// index of the matching `)`.
size_t CollectLockArgs(const std::vector<Token>& t, size_t open,
                       std::vector<std::string>* out) {
  int parens = 0;
  std::string current;
  size_t j = open;
  for (; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == "(") {
      ++parens;
      continue;
    }
    if (s == ")") {
      if (--parens == 0) {
        break;
      }
      continue;
    }
    if (s == ",") {
      if (!current.empty()) {
        out->push_back(current);
      }
      current.clear();
      continue;
    }
    if (s == ":" || IsIdentChar(s[0])) {
      current += s;
    }
  }
  if (!current.empty()) {
    out->push_back(current);
  }
  return j;
}

}  // namespace

FileFacts ExtractFacts(const std::string& path, const FileScan& scan) {
  (void)path;
  FileFacts facts;
  const auto& t = scan.tokens;

  struct ClassBody {
    std::string name;
    int depth = 0;
  };
  std::vector<ClassBody> stack;
  int depth = 0;
  bool class_ahead = false;
  bool class_base_clause = false;  // past the ':' of a base-specifier list
  int class_parens = 0;            // inside an attribute macro's argument list
  std::string class_name_ahead;

  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "enum") {
      // `enum [class|struct] Name [: underlying] { e1 [= v], e2, ... }`
      size_t j = i + 1;
      if (TokenIs(t, j, "class") || TokenIs(t, j, "struct")) {
        ++j;
      }
      std::string name;
      if (j < t.size() && IsIdentChar(t[j].text[0])) {
        name = t[j].text;
        ++j;
      }
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") {
        ++j;
      }
      if (j < t.size() && t[j].text == "{" && !name.empty()) {
        EnumFact fact;
        fact.name = name;
        fact.line = t[i].line;
        int braces = 0;
        bool expect_enumerator = true;
        for (; j < t.size(); ++j) {
          const std::string& e = t[j].text;
          if (e == "{") {
            ++braces;
            expect_enumerator = true;
            continue;
          }
          if (e == "}") {
            if (--braces == 0) {
              break;
            }
            continue;
          }
          if (braces == 1 && e == ",") {
            expect_enumerator = true;
            continue;
          }
          if (braces == 1 && expect_enumerator && IsIdentChar(e[0]) &&
              !std::isdigit(static_cast<unsigned char>(e[0]))) {
            fact.enumerators.push_back(e);
            expect_enumerator = false;
          }
        }
        if (!fact.enumerators.empty()) {
          facts.enums.push_back(fact);
        }
        i = j;  // resume after the enum body — `enum class` is not a ClassBody
      }
      continue;
    }
    if (s == "class" || s == "struct") {
      class_ahead = true;
      class_base_clause = false;
      class_parens = 0;
      class_name_ahead.clear();
      continue;
    }
    if (class_ahead && s != "{" && s != ";") {
      // The class name is the LAST plain identifier between the keyword and
      // the body — attribute macros (`class DEEPREST_CAPABILITY("x") Mutex`),
      // alignas(...), and `final` must not win, and nothing after the
      // base-clause ':' counts.
      if (s == "(") {
        ++class_parens;
      } else if (s == ")") {
        if (class_parens > 0) {
          --class_parens;
        }
      } else if (s == ":") {
        if (i + 1 < t.size() && t[i + 1].text == ":") {
          ++i;  // '::' qualifier: keep the chain (`struct ThreadPool::State`)
          class_name_ahead += "::";
        } else {
          class_base_clause = true;
        }
      } else if (!class_base_clause && class_parens == 0 && IsIdentChar(s[0]) &&
                 s != "final") {
        if (class_name_ahead.size() >= 2 &&
            class_name_ahead.compare(class_name_ahead.size() - 2, 2, "::") != 0) {
          class_name_ahead.clear();  // two bare names: the later one wins
        } else if (class_name_ahead.size() == 1) {
          class_name_ahead.clear();
        }
        class_name_ahead += s;
      }
      continue;
    }
    if (s == ";" && class_ahead) {
      class_ahead = false;  // forward declaration
      continue;
    }
    if (s == "{") {
      ++depth;
      if (class_ahead) {
        stack.push_back({class_name_ahead, depth});
        class_ahead = false;
      }
      continue;
    }
    if (s == "}") {
      if (!stack.empty() && stack.back().depth == depth) {
        stack.pop_back();
      }
      --depth;
      continue;
    }
    if (stack.empty() || stack.back().depth != depth) {
      continue;  // facts are class members; locals and globals are skipped
    }
    const bool mutex_type =
        (s == "Mutex" && !PrecededByStd(t, i)) ||
        ((s == "mutex" || s == "recursive_mutex" || s == "timed_mutex" ||
          s == "shared_mutex") &&
         PrecededByStd(t, i));
    if (!mutex_type || i + 1 >= t.size() || !IsIdentChar(t[i + 1].text[0])) {
      continue;
    }
    MutexFact fact;
    fact.name = t[i + 1].text;
    fact.line = t[i + 1].line;
    for (const ClassBody& body : stack) {
      if (!body.name.empty()) {
        fact.owner += fact.owner.empty() ? body.name : "::" + body.name;
      }
    }
    // Declaration suffix: annotations between the name and `;`/`=`.
    bool is_declaration = false;
    for (size_t j = i + 2; j < t.size(); ++j) {
      const std::string& a = t[j].text;
      if (a == ";" || a == "=" || a == "{") {
        is_declaration = a != "{";
        break;
      }
      if (a == "ACQUIRED_AFTER" || a == "DEEPREST_ACQUIRED_AFTER" ||
          a == "acquired_after") {
        if (TokenIs(t, j + 1, "(")) {
          j = CollectLockArgs(t, j + 1, &fact.acquired_after);
        }
        continue;
      }
      if (a == "ACQUIRED_BEFORE" || a == "DEEPREST_ACQUIRED_BEFORE" ||
          a == "acquired_before") {
        if (TokenIs(t, j + 1, "(")) {
          j = CollectLockArgs(t, j + 1, &fact.acquired_before);
        }
        continue;
      }
      if (a == "(" || a == ")" || a == ",") {
        // `Mutex name(...)` is a constructor call, and `Mutex name,`/`)` is
        // a parameter — not a member we can place in the hierarchy.
        is_declaration = false;
        break;
      }
    }
    if (!is_declaration) {
      continue;
    }
    // lock-level(...) comment on the declaration line or the line above.
    auto level = scan.lock_levels.find(fact.line);
    if (level == scan.lock_levels.end()) {
      level = scan.lock_levels.find(fact.line - 1);
    }
    if (level != scan.lock_levels.end()) {
      fact.lock_level = level->second;
    }
    for (const auto& [rule, lines] : scan.allowed_lines) {
      if (lines.count(fact.line) > 0) {
        fact.inline_allows.insert(rule);
      }
    }
    facts.mutexes.push_back(fact);
  }
  return facts;
}

}  // namespace deeprest_analyze
