// Tokenizer for deeprest_analyze. Direct descendant of the deeprest_lint
// scanner: skips comments and string/char/raw literals, collects preprocessor
// lines separately (lowercased, \-splices folded), splits everything else
// into identifier and single-character punctuation tokens. Escape comments
// (allow-rule and bounded-cap grants) and the new lock-level hierarchy
// comments are recorded with their lines. The tag spellings live only in
// string literals here — a doc comment quoting them verbatim would itself
// parse as a grant and trip stale-escape.
#include <algorithm>
#include <cctype>
#include <sstream>

#include "tools/analyze/analyze.h"

namespace deeprest_analyze {
namespace {

void RecordComment(const std::string& comment, int line, FileScan& scan) {
  const std::string tag = "deeprest-lint:";
  const size_t tag_at = comment.find(tag);
  if (tag_at == std::string::npos) {
    return;
  }
  // A bounded(<how>) comment is the positive annotation for the
  // bounded-containers-in-serve rule: it both documents the cap and grants
  // the member on this line or the next.
  if (comment.find("bounded(", tag_at + tag.size()) != std::string::npos) {
    scan.allowed_lines["bounded-containers-in-serve"].insert(line);
    scan.allowed_lines["bounded-containers-in-serve"].insert(line + 1);
    scan.grants.push_back({"bounded-containers-in-serve", line});
  }
  // `deeprest-lint: lock-level(<spec>)` places a mutex declared on this line
  // (or the next) in the global lock hierarchy. Spec grammar: "leaf", "root",
  // "after <lock> [<lock>...]", "before <lock> [<lock>...]".
  const size_t level_at = comment.find("lock-level(", tag_at + tag.size());
  if (level_at != std::string::npos) {
    const size_t open = comment.find('(', level_at);
    const size_t close = comment.find(')', open);
    if (open != std::string::npos && close != std::string::npos) {
      scan.lock_levels[line] = comment.substr(open + 1, close - open - 1);
    }
  }
  size_t at = comment.find("allow", tag_at + tag.size());
  if (at == std::string::npos) {
    return;
  }
  const size_t open = comment.find('(', at);
  const size_t close = comment.find(')', open == std::string::npos ? at : open);
  if (open == std::string::npos || close == std::string::npos) {
    return;
  }
  std::string rules = comment.substr(open + 1, close - open - 1);
  std::replace(rules.begin(), rules.end(), ',', ' ');
  std::istringstream stream(rules);
  std::string rule;
  while (stream >> rule) {
    scan.allowed_lines[rule].insert(line);
    scan.allowed_lines[rule].insert(line + 1);
    scan.grants.push_back({rule, line});
  }
}

}  // namespace

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

FileScan ScanFile(const std::string& text) {
  FileScan scan;
  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: consume to end of line (honoring \-splices).
      std::string pp;
      const int pp_line = line;
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          pp += ' ';
          i += 2;
          ++line;
          continue;
        }
        pp += static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
        ++i;
      }
      scan.pp_lines.push_back(pp);
      scan.pp_line_numbers.push_back(pp_line);
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t end = text.find('\n', i);
      const std::string comment =
          text.substr(i, (end == std::string::npos ? n : end) - i);
      RecordComment(comment, line, scan);
      i = end == std::string::npos ? n : end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const size_t end = text.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? n : end + 2;
      const std::string comment = text.substr(i, stop - i);
      RecordComment(comment, line, scan);
      for (size_t j = i; j < stop; ++j) {
        if (text[j] == '\n') {
          ++line;
        }
      }
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      // String/char literal: skip with escape handling. Raw strings get a
      // coarse but safe treatment (scan for the matching delimiter).
      if (c == '"' && i > 0 && (text[i - 1] == 'R')) {
        const size_t paren = text.find('(', i);
        if (paren != std::string::npos) {
          const std::string delim = ")" + text.substr(i + 1, paren - i - 1) + "\"";
          const size_t end = text.find(delim, paren);
          const size_t stop = end == std::string::npos ? n : end + delim.size();
          for (size_t j = i; j < stop; ++j) {
            if (text[j] == '\n') {
              ++line;
            }
          }
          i = stop;
          continue;
        }
      }
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      ++i;  // closing quote
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) {
        ++j;
      }
      scan.tokens.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    scan.tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return scan;
}

bool Sink::Suppressed(const std::string& rule, const std::string& path, int line,
                      const std::set<int>* granted_lines) {
  bool hit = false;
  for (size_t k = 0; k < allowlist.size(); ++k) {
    const AllowlistEntry& e = allowlist[k];
    if ((e.rule == rule || e.rule == "*") &&
        path.find(e.path_substring) != std::string::npos) {
      used_allowlist.insert(k);
      hit = true;
    }
  }
  if (granted_lines != nullptr && granted_lines->count(line) > 0) {
    // The grant may sit on `line` or `line - 1` (comment-above style); mark
    // both candidates used so either placement counts as live.
    used_inline[path][rule].insert(line);
    used_inline[path][rule].insert(line - 1);
    hit = true;
  }
  return hit;
}

void Sink::Report(const std::string& rule, const std::string& path, int line,
                  const std::string& message, const FileScan& scan) {
  const auto it = scan.allowed_lines.find(rule);
  const std::set<int>* granted = it == scan.allowed_lines.end() ? nullptr : &it->second;
  if (!Suppressed(rule, path, line, granted)) {
    diagnostics.push_back({path, line, rule, message});
  }
}

void Sink::ReportFact(const std::string& rule, const std::string& path, int line,
                      const std::string& message, const std::set<std::string>& inline_rules) {
  std::set<int> granted;
  if (inline_rules.count(rule) > 0) {
    granted.insert(line);
  }
  if (!Suppressed(rule, path, line, granted.empty() ? nullptr : &granted)) {
    diagnostics.push_back({path, line, rule, message});
  }
}

}  // namespace deeprest_analyze
