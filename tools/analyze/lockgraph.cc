// Global lock graph: nodes are mutex members ("Owner::name"), edges mean
// "acquired before". Edge sources, in declaration order of preference:
//   * DEEPREST_ACQUIRED_AFTER(x)  on a member  -> edge x -> member
//   * DEEPREST_ACQUIRED_BEFORE(x) on a member  -> edge member -> x
//   * `// deeprest-lint: lock-level(after x [y...])`  -> edges x -> member
//   * `// deeprest-lint: lock-level(before x [y...])` -> edges member -> x
//   * `lock-level(leaf)` — terminal: acquiring anything while holding it is
//     a lock-graph-order violation; `lock-level(root)` — positioned, no
//     edges (a lock with no sanctioned nesting either way is still `root`).
//
// Global rules emitted here:
//   lock-graph-cycle    — the declared order relation must be a DAG; a cycle
//                         means the annotations promise a deadlock.
//   lock-graph-position — every mutex in the ordered scopes (src/serve,
//                         src/autoscale, src/sim, src/eval) must have a
//                         hierarchy position: its own annotation, a
//                         reference from another lock's annotation, or a
//                         lock-level comment. Unpositioned locks are where
//                         order violations hide.
// The intra-procedural acquisition-order check lives in flow.cc.
#include <sstream>

#include "tools/analyze/analyze.h"

namespace deeprest_analyze {
namespace {

bool InOrderedScope(const std::string& path) {
  for (const char* pattern : {"src/serve", "src\\serve", "src/autoscale",
                              "src\\autoscale", "src/sim", "src\\sim",
                              "src/eval", "src\\eval"}) {
    if (path.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// Splits a lock-level spec ("after a b", "before x, y", "leaf", "root") into
// its keyword and lock-name arguments.
void ParseLockLevel(const std::string& spec, std::string* keyword,
                    std::vector<std::string>* names) {
  std::string cleaned = spec;
  for (char& c : cleaned) {
    if (c == ',') {
      c = ' ';
    }
  }
  std::istringstream stream(cleaned);
  stream >> *keyword;
  std::string name;
  while (stream >> name) {
    names->push_back(name);
  }
}

}  // namespace

bool LockGraph::OrderedBefore(const std::string& from, const std::string& to) const {
  std::set<std::string> visited;
  std::vector<std::string> frontier = {from};
  while (!frontier.empty()) {
    const std::string node = frontier.back();
    frontier.pop_back();
    if (node == to) {
      return true;
    }
    if (!visited.insert(node).second) {
      continue;
    }
    const auto it = edges.find(node);
    if (it != edges.end()) {
      for (const std::string& next : it->second) {
        frontier.push_back(next);
      }
    }
  }
  return false;
}

std::string LockGraph::Resolve(const std::string& name, const std::string& owner) const {
  if (nodes.count(name) > 0) {
    return name;  // already fully qualified
  }
  // Member of the owner chain, innermost scope first: for owner "A::B" try
  // "A::B::name" then "A::name".
  std::string scope = owner;
  while (!scope.empty()) {
    const std::string candidate = scope + "::" + name;
    if (nodes.count(candidate) > 0) {
      return candidate;
    }
    const size_t sep = scope.rfind("::");
    scope = sep == std::string::npos ? "" : scope.substr(0, sep);
  }
  // Qualified-suffix / unique-bare-name match across the whole graph.
  std::string found;
  for (const auto& [id, node] : nodes) {
    const size_t sep = id.rfind("::");
    const std::string bare = sep == std::string::npos ? id : id.substr(sep + 2);
    if (bare == name || (name.find("::") != std::string::npos &&
                         id.size() >= name.size() &&
                         id.compare(id.size() - name.size(), name.size(), name) == 0)) {
      if (!found.empty() && found != id) {
        return "";  // ambiguous
      }
      found = id;
    }
  }
  return found;
}

LockGraph BuildLockGraph(const std::map<std::string, FileFacts>& facts, Sink& sink) {
  LockGraph graph;
  // Pass 1: nodes.
  for (const auto& [path, file_facts] : facts) {
    for (const MutexFact& m : file_facts.mutexes) {
      const std::string id = m.owner.empty() ? m.name : m.owner + "::" + m.name;
      LockNode& node = graph.nodes[id];
      node.id = id;
      node.path = path;
      node.line = m.line;
      node.inline_allows = m.inline_allows;
      if (!m.lock_level.empty() || !m.acquired_after.empty() ||
          !m.acquired_before.empty()) {
        node.has_position = true;
      }
      if (m.lock_level.rfind("leaf", 0) == 0) {
        node.leaf = true;
      }
    }
  }
  // Pass 2: edges (needs the full node table for name resolution).
  for (const auto& [path, file_facts] : facts) {
    (void)path;
    for (const MutexFact& m : file_facts.mutexes) {
      const std::string id = m.owner.empty() ? m.name : m.owner + "::" + m.name;
      auto link = [&](const std::string& target_name, bool target_first) {
        std::string target = graph.Resolve(target_name, m.owner);
        if (target.empty()) {
          target = target_name;  // keep the literal name as a floating node
          LockNode& node = graph.nodes[target];
          node.id = target;
          node.has_position = true;
        }
        graph.nodes[target].has_position = true;
        if (target_first) {
          graph.edges[target].insert(id);
        } else {
          graph.edges[id].insert(target);
        }
      };
      for (const std::string& name : m.acquired_after) {
        link(name, /*target_first=*/true);
      }
      for (const std::string& name : m.acquired_before) {
        link(name, /*target_first=*/false);
      }
      if (!m.lock_level.empty()) {
        std::string keyword;
        std::vector<std::string> names;
        ParseLockLevel(m.lock_level, &keyword, &names);
        for (const std::string& name : names) {
          if (keyword == "after") {
            link(name, /*target_first=*/true);
          } else if (keyword == "before") {
            link(name, /*target_first=*/false);
          }
        }
      }
    }
  }
  // Rule: lock-graph-cycle. DFS with colors; report each cycle once, at the
  // declaration of the lexically-first lock on it.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  struct Visitor {
    LockGraph& graph;
    Sink& sink;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    std::set<std::string>& reported;
    void Visit(const std::string& node) {
      color[node] = 1;
      stack.push_back(node);
      const auto it = graph.edges.find(node);
      if (it != graph.edges.end()) {
        for (const std::string& next : it->second) {
          if (color[next] == 1) {
            // Cycle: stack suffix from `next` to `node`.
            std::vector<std::string> cycle;
            bool in_cycle = false;
            for (const std::string& frame : stack) {
              if (frame == next) {
                in_cycle = true;
              }
              if (in_cycle) {
                cycle.push_back(frame);
              }
            }
            cycle.push_back(next);
            std::string first = cycle.front();
            for (const std::string& member : cycle) {
              if (member < first) {
                first = member;
              }
            }
            if (reported.insert(first).second) {
              std::string chain;
              for (const std::string& member : cycle) {
                chain += chain.empty() ? member : " -> " + member;
              }
              const LockNode& anchor = graph.nodes[first];
              sink.ReportFact("lock-graph-cycle",
                              anchor.path.empty() ? "<lock-graph>" : anchor.path,
                              anchor.line, "lock order cycle: " + chain +
                              " — the ACQUIRED_AFTER/lock-level annotations "
                              "promise a deadlock; break the cycle or fix the "
                              "annotation",
                              anchor.inline_allows);
            }
          } else if (color[next] == 0) {
            Visit(next);
          }
        }
      }
      stack.pop_back();
      color[node] = 2;
    }
  };
  Visitor visitor{graph, sink, color, stack, reported};
  for (const auto& [id, node] : graph.nodes) {
    (void)node;
    if (color[id] == 0) {
      visitor.Visit(id);
    }
  }
  // Rule: lock-graph-position.
  for (const auto& [id, node] : graph.nodes) {
    if (node.path.empty() || node.has_position || !InOrderedScope(node.path)) {
      continue;
    }
    sink.ReportFact("lock-graph-position", node.path, node.line,
                    "mutex `" + id + "` has no lock-hierarchy position — add "
                    "DEEPREST_ACQUIRED_AFTER(...) or a `// deeprest-lint: "
                    "lock-level(leaf|root|after X|before X)` comment so the "
                    "analyzer can order it (DESIGN.md §7)",
                    node.inline_allows);
  }
  return graph;
}

std::string LockGraphDot(const LockGraph& graph) {
  std::ostringstream out;
  out << "digraph deeprest_locks {\n";
  out << "  rankdir=TB;\n";
  out << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& [id, node] : graph.nodes) {
    out << "  \"" << id << "\"";
    std::string attrs;
    if (node.leaf) {
      attrs += "style=filled, fillcolor=lightgrey";
    }
    if (!node.path.empty()) {
      if (!attrs.empty()) {
        attrs += ", ";
      }
      attrs += "tooltip=\"" + node.path + ":" + std::to_string(node.line) + "\"";
    }
    if (!attrs.empty()) {
      out << " [" << attrs << "]";
    }
    out << ";\n";
  }
  for (const auto& [from, targets] : graph.edges) {
    for (const std::string& to : targets) {
      out << "  \"" << from << "\" -> \"" << to << "\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace deeprest_analyze
