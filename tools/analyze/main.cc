// deeprest_analyze driver. CLI is a superset of the old deeprest_lint:
//
//   deeprest_analyze [--root DIR] [--allowlist FILE] [--format=text|sarif|github]
//                    [--out FILE] [--cache FILE] [--dot FILE] [--stats] [file...]
//
// With explicit files only those are analyzed (fixture tests); otherwise
// every .h/.cc/.cpp/.hpp under DIR/src, DIR/tools and DIR/tests is walked
// (self-lint: the analyzer's own sources are in scope). Exit code: 0 clean,
// 1 violations, 2 usage/IO error.
//
// Run order matters for escape-usage accounting: global passes (lock graph)
// first, then per-file passes, then stale-escape — an inline allow consumed
// by a global diagnostic is live, not stale.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/analyze/analyze.h"

namespace {

using namespace deeprest_analyze;

struct FileState {
  std::string path;
  std::string bytes;
  std::string content_hash;
  bool cached = false;  // facts + per-file diagnostics reused from the cache
  FileScan scan;        // populated for dirty files only
  FileFacts facts;
  std::vector<Diagnostic> file_diagnostics;
  std::set<size_t> file_used_allowlist;
};

bool ReadFileBytes(const std::string& path, std::string* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *bytes = buffer.str();
  return true;
}

bool LoadAllowlist(const std::string& path, Sink& sink) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream stream(line);
    std::string rule;
    std::string substring;
    if (stream >> rule >> substring) {
      sink.allowlist.push_back({rule, substring, line_number});
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_path;
  std::string format = "text";
  std::string out_path;
  std::string cache_path;
  std::string dot_path;
  bool stats = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      dot_path = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: deeprest_analyze [--root DIR] [--allowlist FILE] "
          "[--format=text|sarif|github] [--out FILE] [--cache FILE] "
          "[--dot FILE] [--stats] [file...]\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (format != "text" && format != "sarif" && format != "github") {
    std::fprintf(stderr, "deeprest_analyze: unknown --format %s\n", format.c_str());
    return 2;
  }

  Sink sink;
  std::string allowlist_bytes;
  if (!allowlist_path.empty()) {
    if (!LoadAllowlist(allowlist_path, sink)) {
      std::fprintf(stderr, "deeprest_analyze: cannot read allowlist %s\n",
                   allowlist_path.c_str());
      return 2;
    }
    ReadFileBytes(allowlist_path, &allowlist_bytes);
  }

  if (files.empty()) {
    const std::filesystem::path src = std::filesystem::path(root) / "src";
    if (!std::filesystem::exists(src)) {
      std::fprintf(stderr, "deeprest_analyze: no src/ under --root %s\n", root.c_str());
      return 2;
    }
    for (const char* top : {"src", "tools", "tests"}) {
      const std::filesystem::path dir = std::filesystem::path(root) / top;
      if (!std::filesystem::exists(dir)) {
        continue;
      }
      for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) {
          continue;
        }
        const std::string ext = entry.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
          files.push_back(entry.path().string());
        }
      }
    }
    std::sort(files.begin(), files.end());  // deterministic diagnostic order
  }

  // Phase A: read, hash, and either reuse cached facts or lex + index.
  const std::string global_key =
      HashBytes(std::string(kEngineVersion) + "\n" + allowlist_bytes);
  Cache cache;
  const bool cache_valid = !cache_path.empty() && LoadCache(cache_path, cache) &&
                           cache.global_key == global_key;
  std::vector<FileState> states;
  states.reserve(files.size());
  for (const std::string& file : files) {
    FileState state;
    state.path = std::filesystem::path(file).generic_string();
    if (!ReadFileBytes(file, &state.bytes)) {
      std::fprintf(stderr, "deeprest_analyze: cannot read %s\n", file.c_str());
      return 2;
    }
    state.content_hash = HashBytes(state.bytes);
    if (cache_valid) {
      const auto it = cache.files.find(state.path);
      if (it != cache.files.end() && it->second.content_hash == state.content_hash) {
        state.cached = true;
        state.facts = it->second.facts;
        state.file_diagnostics = it->second.diagnostics;
        state.file_used_allowlist = it->second.used_allowlist;
      }
    }
    if (!state.cached) {
      state.scan = ScanFile(state.bytes);
      state.facts = ExtractFacts(state.path, state.scan);
    }
    states.push_back(std::move(state));
  }

  // Cross-file facts fingerprint: if it moved, per-file flow diagnostics may
  // change even in untouched files (the lock graph is global) — re-analyze
  // everything.
  std::map<std::string, FileFacts> facts_by_path;
  for (const FileState& state : states) {
    facts_by_path[state.path] = state.facts;
  }
  std::string facts_blob;
  for (const auto& [path, facts] : facts_by_path) {
    facts_blob += path + "\n" + SerializeFacts(facts);
  }
  const std::string facts_hash = HashBytes(facts_blob);
  if (cache_valid && facts_hash != cache.facts_hash) {
    for (FileState& state : states) {
      if (state.cached) {
        state.cached = false;
        state.file_diagnostics.clear();
        state.file_used_allowlist.clear();
        state.scan = ScanFile(state.bytes);
      }
    }
  }

  // Phase B: global passes, then per-file passes on dirty files.
  LockGraph graph = BuildLockGraph(facts_by_path, sink);
  const size_t global_diag_count = sink.diagnostics.size();
  std::map<std::string, std::vector<std::string>> global_enums;
  for (const auto& [path, facts] : facts_by_path) {
    (void)path;
    for (const EnumFact& e : facts.enums) {
      global_enums.emplace(e.name, e.enumerators);  // first definition wins
    }
  }
  size_t analyzed = 0;
  for (FileState& state : states) {
    if (state.cached) {
      for (const Diagnostic& cached_diag : state.file_diagnostics) {
        Diagnostic d = cached_diag;
        d.path = state.path;
        sink.diagnostics.push_back(d);
      }
      for (size_t index : state.file_used_allowlist) {
        if (index < sink.allowlist.size()) {
          sink.used_allowlist.insert(index);
        }
      }
      continue;
    }
    ++analyzed;
    const size_t diags_before = sink.diagnostics.size();
    const std::set<size_t> used_before = sink.used_allowlist;
    RunTokenRules(state.path, state.scan, sink);
    CheckEnumSwitch(state.path, state.scan, global_enums, sink);
    RunFlowRules(state.path, state.scan, graph, sink);
    CheckStaleInlineGrants(state.path, state.scan, sink);
    for (size_t d = diags_before; d < sink.diagnostics.size(); ++d) {
      Diagnostic stripped = sink.diagnostics[d];
      stripped.path.clear();  // path is the cache record key
      state.file_diagnostics.push_back(stripped);
    }
    for (size_t index : sink.used_allowlist) {
      if (used_before.count(index) == 0) {
        state.file_used_allowlist.insert(index);
      }
    }
  }

  // Stale allowlist entries: every run re-checks these from the full
  // diagnostic+usage picture (cached files contribute their usage sets).
  for (size_t k = 0; k < sink.allowlist.size(); ++k) {
    if (sink.used_allowlist.count(k) > 0) {
      continue;
    }
    const AllowlistEntry& entry = sink.allowlist[k];
    sink.ReportFact("stale-escape", allowlist_path, entry.line,
                    "allowlist entry `" + entry.rule + " " + entry.path_substring +
                    "` matched no diagnostic in this run — the violation it "
                    "suppressed is gone; delete the entry",
                    {});
  }

  std::sort(sink.diagnostics.begin(), sink.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.path != b.path) {
                return a.path < b.path;
              }
              if (a.line != b.line) {
                return a.line < b.line;
              }
              if (a.rule != b.rule) {
                return a.rule < b.rule;
              }
              return a.message < b.message;
            });
  sink.diagnostics.erase(
      std::unique(sink.diagnostics.begin(), sink.diagnostics.end(),
                  [](const Diagnostic& a, const Diagnostic& b) {
                    return a.path == b.path && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      sink.diagnostics.end());
  (void)global_diag_count;

  if (!dot_path.empty()) {
    const std::string dot = LockGraphDot(graph);
    if (dot_path == "-") {
      std::fwrite(dot.data(), 1, dot.size(), stdout);
    } else {
      std::ofstream out(dot_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "deeprest_analyze: cannot write %s\n", dot_path.c_str());
        return 2;
      }
      out << dot;
    }
  }

  if (!cache_path.empty()) {
    Cache fresh;
    fresh.global_key = global_key;
    fresh.facts_hash = facts_hash;
    for (const FileState& state : states) {
      CachedFile entry;
      entry.content_hash = state.content_hash;
      entry.facts = state.facts;
      entry.diagnostics = state.file_diagnostics;
      entry.used_allowlist = state.file_used_allowlist;
      fresh.files[state.path] = entry;
    }
    SaveCache(cache_path, fresh);
  }

  if (stats) {
    std::printf("deeprest_analyze: %zu files, %zu analyzed, %zu cached, %zu diagnostic(s)\n",
                states.size(), analyzed, states.size() - analyzed,
                sink.diagnostics.size());
  }

  if (format == "sarif" || format == "github") {
    const std::string rendered = format == "sarif" ? RenderSarif(sink.diagnostics)
                                                   : RenderGithub(sink.diagnostics);
    if (out_path.empty() || out_path == "-") {
      std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    } else {
      std::ofstream out(out_path, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "deeprest_analyze: cannot write %s\n", out_path.c_str());
        return 2;
      }
      out << rendered;
    }
  } else if (!sink.diagnostics.empty()) {
    const std::string rendered = RenderText(sink.diagnostics);
    std::fwrite(rendered.data(), 1, rendered.size(), stderr);
    std::fprintf(stderr, "deeprest_analyze: %zu violation(s)\n",
                 sink.diagnostics.size());
  }
  return sink.diagnostics.empty() ? 0 : 1;
}
