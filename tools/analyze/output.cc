// Diagnostic renderers: plain text (the legacy stderr format every fixture
// greps), SARIF 2.1.0 (CI artifact upload / code-scanning ingestion), and
// GitHub workflow annotations (`::error file=...`).
#include <cstdio>
#include <sstream>

#include "tools/analyze/analyze.h"

namespace deeprest_analyze {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderText(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << d.path << ':' << d.line << ": [" << d.rule << "] " << d.message << '\n';
  }
  return out.str();
}

std::string RenderSarif(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": \"2.1.0\",\n";
  out << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out << "  \"runs\": [\n";
  out << "    {\n";
  out << "      \"tool\": {\n";
  out << "        \"driver\": {\n";
  out << "          \"name\": \"deeprest_analyze\",\n";
  out << "          \"version\": \"" << JsonEscape(kEngineVersion) << "\",\n";
  out << "          \"informationUri\": \"tools/analyze\",\n";
  // Rule table: one entry per distinct rule id seen in this run.
  out << "          \"rules\": [";
  {
    std::set<std::string> rules;
    for (const Diagnostic& d : diagnostics) {
      rules.insert(d.rule);
    }
    bool first = true;
    for (const std::string& rule : rules) {
      out << (first ? "\n" : ",\n");
      out << "            {\"id\": \"" << JsonEscape(rule) << "\"}";
      first = false;
    }
    if (!rules.empty()) {
      out << "\n          ";
    }
  }
  out << "]\n";
  out << "        }\n";
  out << "      },\n";
  out << "      \"results\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    out << (first ? "\n" : ",\n");
    out << "        {\n";
    out << "          \"ruleId\": \"" << JsonEscape(d.rule) << "\",\n";
    out << "          \"level\": \"error\",\n";
    out << "          \"message\": {\"text\": \"" << JsonEscape(d.message) << "\"},\n";
    out << "          \"locations\": [\n";
    out << "            {\n";
    out << "              \"physicalLocation\": {\n";
    out << "                \"artifactLocation\": {\"uri\": \"" << JsonEscape(d.path)
        << "\"},\n";
    out << "                \"region\": {\"startLine\": " << d.line << "}\n";
    out << "              }\n";
    out << "            }\n";
    out << "          ]\n";
    out << "        }";
    first = false;
  }
  if (!diagnostics.empty()) {
    out << "\n      ";
  }
  out << "]\n";
  out << "    }\n";
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string RenderGithub(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    // Annotation messages are single-line; %0A is the workflow-command
    // escape for embedded newlines (none are emitted today).
    out << "::error file=" << d.path << ",line=" << d.line << ",title=" << d.rule
        << "::" << d.message << '\n';
  }
  return out.str();
}

}  // namespace deeprest_analyze
