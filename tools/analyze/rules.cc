// Token-level rule passes: the nine legacy deeprest_lint rules (ids, scopes
// and message text unchanged — fixtures, allowlists and allow-comments keep
// working), plus enum-switch exhaustiveness which needs the cross-file enum
// index. See tools/analyze/analyze.h for the rule inventory.
#include <cctype>
#include <filesystem>

#include "tools/analyze/analyze.h"

namespace deeprest_analyze {
namespace {

bool TokenIs(const std::vector<Token>& tokens, size_t i, const char* text) {
  return i < tokens.size() && tokens[i].text == text;
}

// True when tokens[i] is preceded by `std ::` (possibly `:: std ::`).
bool PrecededByStd(const std::vector<Token>& tokens, size_t i) {
  return i >= 2 && tokens[i - 1].text == ":" && tokens[i - 2].text == ":" && i >= 3 &&
         tokens[i - 3].text == "std";
}

// --------------------------------------------------------------------------
// Rule: no-unseeded-rand
// --------------------------------------------------------------------------
void CheckUnseededRand(const std::string& path, const FileScan& scan, Sink& sink) {
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if ((s == "rand" || s == "srand" || s == "time") && TokenIs(t, i + 1, "(")) {
      // Member calls like foo.time(...) are still suspicious in src/; methods
      // named exactly `time` do not exist in this tree.
      sink.Report("no-unseeded-rand", path, t[i].line,
                  "call to `" + s + "()` — derive randomness from the seeded "
                  "generators in src/nn/rng.h so runs replay bit-for-bit",
                  scan);
    } else if (s == "random_device" || s == "rand_r" || s == "drand48") {
      sink.Report("no-unseeded-rand", path, t[i].line,
                  "`" + s + "` is nondeterministic — use src/nn/rng.h", scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-unordered-iteration
// --------------------------------------------------------------------------
bool IsByteStableTu(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  for (const char* pattern : {"serialize", "checkpoint", "stats", "json_export"}) {
    if (name.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void CheckUnorderedIteration(const std::string& path, const FileScan& scan, Sink& sink) {
  if (!IsByteStableTu(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
        s == "unordered_multiset") {
      sink.Report("no-unordered-iteration", path, t[i].line,
                  "`" + s + "` in a byte-stable translation unit (serialization/"
                  "checkpoint/stats export) — hash iteration order would leak "
                  "into the output bytes; use std::map/std::set or a sorted "
                  "vector",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-raw-tensor-node-new
// --------------------------------------------------------------------------
void CheckRawTensorNodeNew(const std::string& path, const FileScan& scan, Sink& sink) {
  const auto& t = scan.tokens;
  std::set<std::string> tensor_node_pointers;  // identifiers declared TensorNode*
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "new" && TokenIs(t, i + 1, "TensorNode")) {
      sink.Report("no-raw-tensor-node-new", path, t[i].line,
                  "`new TensorNode` outside the arena — nodes must come from "
                  "detail::AcquireNode() so the freelist accounting holds",
                  scan);
    }
    if (t[i].text == "TensorNode" && TokenIs(t, i + 1, "*") && i + 2 < t.size() &&
        IsIdentChar(t[i + 2].text[0]) && !std::isdigit(static_cast<unsigned char>(t[i + 2].text[0]))) {
      tensor_node_pointers.insert(t[i + 2].text);
    }
    if (t[i].text == "delete" && i + 1 < t.size() &&
        tensor_node_pointers.count(t[i + 1].text) > 0) {
      sink.Report("no-raw-tensor-node-new", path, t[i].line,
                  "`delete` of a TensorNode* outside the arena — release the "
                  "handle and let detail::RecycleTree() reclaim it",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-fast-math-reassoc
// --------------------------------------------------------------------------
bool IsNnPath(const std::string& path) {
  return path.find("src/nn/") != std::string::npos ||
         path.find("src\\nn\\") != std::string::npos;
}

void CheckFastMathReassoc(const std::string& path, const FileScan& scan, Sink& sink) {
  if (!IsNnPath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "reduce" && PrecededByStd(t, i)) {
      sink.Report("no-fast-math-reassoc", path, t[i].line,
                  "std::reduce reassociates freely — use std::accumulate or an "
                  "explicit loop so the summation order is fixed",
                  scan);
    }
    if (s == "ffast" || s == "ffast_math") {
      sink.Report("no-fast-math-reassoc", path, t[i].line,
                  "-ffast-math marker in src/nn — the kernels promise "
                  "bit-exactness between fused and reference paths",
                  scan);
    }
  }
  for (size_t i = 0; i < scan.pp_lines.size(); ++i) {
    const std::string& pp = scan.pp_lines[i];
    if (pp.find("float_control") != std::string::npos ||
        pp.find("fp_contract") != std::string::npos ||
        pp.find("fast_math") != std::string::npos ||
        pp.find("associative_math") != std::string::npos) {
      sink.Report("no-fast-math-reassoc", path, scan.pp_line_numbers[i],
                  "float-semantics pragma in src/nn — reassociation/contraction "
                  "breaks the bit-exactness contract (build-wide "
                  "-ffp-contract=off is the only sanctioned setting)",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: mutex-needs-guarded-by
// --------------------------------------------------------------------------
struct MutexMember {
  std::string name;
  int line = 0;
};

void CheckMutexGuardedBy(const std::string& path, const FileScan& scan, Sink& sink) {
  const auto& t = scan.tokens;
  // Stack of open class/struct bodies. Each entry: brace depth at which the
  // body opened, mutex members seen, names referenced by guard annotations.
  struct ClassBody {
    int depth = 0;
    std::vector<MutexMember> mutexes;
    std::set<std::string> guarded;
  };
  std::vector<ClassBody> stack;
  int depth = 0;
  bool class_ahead = false;  // saw class/struct keyword, body brace pending
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "class" || s == "struct") {
      // `enum class` is not a body we care about; a following `{` still
      // balances, so treating it as a (mutex-free) body is harmless.
      class_ahead = true;
      continue;
    }
    if (s == ";" && class_ahead) {
      class_ahead = false;  // forward declaration
      continue;
    }
    if (s == "{") {
      ++depth;
      if (class_ahead) {
        stack.push_back({depth, {}, {}});
        class_ahead = false;
      }
      continue;
    }
    if (s == "}") {
      if (!stack.empty() && stack.back().depth == depth) {
        for (const MutexMember& m : stack.back().mutexes) {
          if (stack.back().guarded.count(m.name) == 0) {
            sink.Report("mutex-needs-guarded-by", path, m.line,
                        "mutex member `" + m.name + "` has no "
                        "DEEPREST_GUARDED_BY(" + m.name + ") field (or "
                        "REQUIRES/PT_GUARDED_BY) in its class — declare what "
                        "it guards or remove it",
                        scan);
          }
        }
        stack.pop_back();
      }
      --depth;
      continue;
    }
    if (stack.empty()) {
      continue;
    }
    // Member declaration `Mutex name ;` or `std::mutex name ;` (also
    // recursive/timed/shared variants) directly inside a class body. An
    // ACQUIRED_AFTER/BEFORE annotation between the name and `;` still
    // declares a member (the indexer parses the annotation itself).
    const bool mutex_type = (s == "Mutex" && !PrecededByStd(t, i)) || ((s == "mutex" ||
                            s == "recursive_mutex" || s == "timed_mutex" ||
                            s == "shared_mutex") && PrecededByStd(t, i));
    if (mutex_type && stack.back().depth == depth && i + 2 < t.size() &&
        IsIdentChar(t[i + 1].text[0]) &&
        (t[i + 2].text == ";" || t[i + 2].text == "=" ||
         t[i + 2].text.find("ACQUIRED_") != std::string::npos)) {
      stack.back().mutexes.push_back({t[i + 1].text, t[i + 1].line});
      continue;
    }
    // Guard annotations: DEEPREST_GUARDED_BY(x), DEEPREST_PT_GUARDED_BY(x),
    // DEEPREST_REQUIRES(x...), plus the raw Clang spellings for code that
    // uses them directly.
    if (s == "DEEPREST_GUARDED_BY" || s == "DEEPREST_PT_GUARDED_BY" ||
        s == "DEEPREST_REQUIRES" || s == "DEEPREST_ACQUIRE" || s == "DEEPREST_RELEASE" ||
        s == "GUARDED_BY" || s == "PT_GUARDED_BY" || s == "REQUIRES" ||
        s == "guarded_by" || s == "pt_guarded_by" || s == "requires_capability") {
      // Collect identifier arguments until the matching ')'.
      size_t j = i + 1;
      if (TokenIs(t, j, "(")) {
        int parens = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "(") {
            ++parens;
          } else if (t[j].text == ")") {
            if (--parens == 0) {
              break;
            }
          } else if (IsIdentChar(t[j].text[0])) {
            for (ClassBody& body : stack) {
              body.guarded.insert(t[j].text);
            }
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-detached-threads
// --------------------------------------------------------------------------
void CheckDetachedThreads(const std::string& path, const FileScan& scan, Sink& sink) {
  const auto& t = scan.tokens;
  for (size_t i = 1; i < t.size(); ++i) {
    if (t[i].text == "detach" && TokenIs(t, i + 1, "(") && TokenIs(t, i + 2, ")") &&
        (t[i - 1].text == "." ||
         (t[i - 1].text == ">" && i >= 2 && t[i - 2].text == "-"))) {
      sink.Report("no-detached-threads", path, t[i].line,
                  "detached thread — detached threads outlive Stop()/shutdown, "
                  "race static destruction and defeat TSan; join it (RAII "
                  "owner or ThreadPool)",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: heartbeat-on-loop
// --------------------------------------------------------------------------
bool IsSupervisedLoopPath(const std::string& path) {
  for (const char* pattern : {"src/serve", "src\\serve", "src/autoscale",
                              "src\\autoscale"}) {
    if (path.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void CheckHeartbeatOnLoop(const std::string& path, const FileScan& scan, Sink& sink) {
  if (!IsSupervisedLoopPath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "while" || !TokenIs(t, i + 1, "(")) {
      continue;
    }
    // Condition: the parenthesized expression after `while`. The rule fires
    // only on stop-flag loops — `! stop...` anywhere in the condition.
    size_t cond_end = t.size();
    bool stop_loop = false;
    int parens = 0;
    for (size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") {
        ++parens;
      } else if (t[j].text == ")") {
        if (--parens == 0) {
          cond_end = j;
          break;
        }
      } else if (t[j].text == "!" && j + 1 < t.size() &&
                 t[j + 1].text.rfind("stop", 0) == 0) {
        stop_loop = true;
      }
    }
    if (!stop_loop || cond_end == t.size()) {
      continue;
    }
    // Body: braced block or single statement.
    const size_t body_begin = cond_end + 1;
    size_t body_end = body_begin;
    if (TokenIs(t, body_begin, "{")) {
      int braces = 0;
      for (size_t j = body_begin; j < t.size(); ++j) {
        if (t[j].text == "{") {
          ++braces;
        } else if (t[j].text == "}" && --braces == 0) {
          body_end = j;
          break;
        }
      }
    } else {
      while (body_end < t.size() && t[body_end].text != ";") {
        ++body_end;
      }
    }
    bool has_heartbeat = false;
    bool has_wait = false;  // cv predicate loop — the cv wakes it, not a poll
    for (size_t j = body_begin; j < body_end; ++j) {
      if (t[j].text == "Heartbeat" && TokenIs(t, j + 1, "(")) {
        has_heartbeat = true;
      }
      if (t[j].text == "Wait" || t[j].text == "WaitFor" || t[j].text == "WaitUntil") {
        has_wait = true;
      }
    }
    if (!has_heartbeat && !has_wait) {
      sink.Report("heartbeat-on-loop", path, t[i].line,
                  "stop-flag worker loop without a Heartbeat() call — publish "
                  "liveness into the HealthRegistry each iteration so the "
                  "Watchdog can tell a stall from a slow sweep",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: bounded-containers-in-serve
// --------------------------------------------------------------------------
bool IsServePath(const std::string& path) {
  return path.find("src/serve") != std::string::npos ||
         path.find("src\\serve") != std::string::npos;
}

void CheckBoundedContainersInServe(const std::string& path, const FileScan& scan,
                                   Sink& sink) {
  if (!IsServePath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  // Same class-body tracking as mutex-needs-guarded-by: a container is a
  // MEMBER when it sits at the body's own brace depth, outside parentheses
  // (not a parameter), is not a using/typedef alias, and is not a method's
  // return type (next-after-template token followed by `(`).
  struct ClassBody {
    int depth = 0;
  };
  std::vector<ClassBody> stack;
  int depth = 0;
  int parens = 0;
  bool class_ahead = false;
  size_t stmt_start = 0;  // token index after the last ; { }
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "class" || s == "struct") {
      class_ahead = true;
      continue;
    }
    if (s == ";" && class_ahead) {
      class_ahead = false;
      stmt_start = i + 1;
      continue;
    }
    if (s == "(") {
      ++parens;
      continue;
    }
    if (s == ")") {
      parens = parens > 0 ? parens - 1 : 0;
      continue;
    }
    if (s == "{") {
      ++depth;
      if (class_ahead) {
        stack.push_back({depth});
        class_ahead = false;
      }
      stmt_start = i + 1;
      continue;
    }
    if (s == "}") {
      if (!stack.empty() && stack.back().depth == depth) {
        stack.pop_back();
      }
      --depth;
      stmt_start = i + 1;
      continue;
    }
    if (s == ";") {
      stmt_start = i + 1;
      continue;
    }
    const bool container = (s == "map" || s == "unordered_map" || s == "multimap" ||
                            s == "unordered_multimap") &&
                           PrecededByStd(t, i);
    if (!container || stack.empty() || stack.back().depth != depth || parens != 0) {
      continue;
    }
    bool is_alias = false;
    for (size_t j = stmt_start; j < i; ++j) {
      if (t[j].text == "using" || t[j].text == "typedef") {
        is_alias = true;
        break;
      }
    }
    if (is_alias) {
      continue;
    }
    // Skip the template argument list to find the declared name.
    size_t j = i + 1;
    if (TokenIs(t, j, "<")) {
      int angles = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") {
          ++angles;
        } else if (t[j].text == ">" && --angles == 0) {
          ++j;
          break;
        }
      }
    }
    // `std::map<...> Name(` is a method returning a map, not a member.
    if (j < t.size() && IsIdentChar(t[j].text[0]) && TokenIs(t, j + 1, "(")) {
      continue;
    }
    sink.Report("bounded-containers-in-serve", path, t[i].line,
                "std::" + s + " member in src/serve without a "
                "`// deeprest-lint: bounded(<how>)` annotation — serving-layer "
                "containers index unbounded key spaces; document the eviction/"
                "cap mechanism (byte budget, FIFO drop, retention limit) on "
                "the member or the line above",
                scan);
  }
}

// --------------------------------------------------------------------------
// Rule: intrinsics-only-in-simd
// --------------------------------------------------------------------------
bool IsSimdPath(const std::string& path) {
  return path.find("src/nn/simd/") != std::string::npos ||
         path.find("src\\nn\\simd\\") != std::string::npos;
}

bool IsSimdIntrinsicToken(const std::string& s) {
  // x86: _mm_*, _mm256_*, _mm512_* calls; __m128/__m256i/__m512d vector
  // types; AVX-512 __mmask* predicate types.
  if (s.rfind("_mm", 0) == 0) {
    return true;
  }
  if (s.rfind("__mmask", 0) == 0) {
    return true;
  }
  if (s.rfind("__m", 0) == 0 && s.size() > 3 &&
      std::isdigit(static_cast<unsigned char>(s[3]))) {
    return true;
  }
  // NEON: the load/store/arithmetic families used by vector kernels. Prefix
  // match so lane-width suffixes (vld1q_f32, vfmaq_laneq_f32, ...) all hit.
  for (const char* prefix : {"vld1", "vst1", "vfmaq", "vmlaq", "vaddq", "vmulq",
                             "vsubq", "vdupq", "vmull", "vpadalq", "vgetq",
                             "vcvt_f64_f32", "vcvt_f32_f64"}) {
    if (s.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

void CheckIntrinsicsOnlyInSimd(const std::string& path, const FileScan& scan,
                               Sink& sink) {
  if (IsSimdPath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (IsSimdIntrinsicToken(t[i].text)) {
      sink.Report("intrinsics-only-in-simd", path, t[i].line,
                  "raw SIMD intrinsic `" + t[i].text + "` outside src/nn/simd/ "
                  "— route vector code through simd::* (src/nn/simd/dispatch.h) "
                  "so the runtime ISA dispatcher, the scalar fallback, and the "
                  "bit-exactness tests all cover it",
                  scan);
    }
  }
  for (size_t i = 0; i < scan.pp_lines.size(); ++i) {
    const std::string& pp = scan.pp_lines[i];
    for (const char* header : {"immintrin.h", "arm_neon.h", "xmmintrin.h",
                               "emmintrin.h", "avxintrin.h"}) {
      if (pp.find(header) != std::string::npos) {
        sink.Report("intrinsics-only-in-simd", path, scan.pp_line_numbers[i],
                    std::string("#include <") + header + "> outside "
                    "src/nn/simd/ — intrinsics headers (and the code that "
                    "needs them) belong behind the dispatch layer",
                    scan);
      }
    }
  }
}

}  // namespace

void RunTokenRules(const std::string& path, const FileScan& scan, Sink& sink) {
  CheckUnseededRand(path, scan, sink);
  CheckUnorderedIteration(path, scan, sink);
  CheckRawTensorNodeNew(path, scan, sink);
  CheckFastMathReassoc(path, scan, sink);
  CheckMutexGuardedBy(path, scan, sink);
  CheckDetachedThreads(path, scan, sink);
  CheckHeartbeatOnLoop(path, scan, sink);
  CheckBoundedContainersInServe(path, scan, sink);
  CheckIntrinsicsOnlyInSimd(path, scan, sink);
}

// --------------------------------------------------------------------------
// Rule: enum-switch
// --------------------------------------------------------------------------
// Exhaustiveness for the enums whose silent fall-through has bitten this
// tree before: a `switch` over one of them must either name every enumerator
// in a `case Enum::member` label or carry a `default:`. Detection keys off
// qualified case labels, so plain integer switches never match. A file-local
// enum definition shadows the global table (fixtures are self-contained).
void CheckEnumSwitch(const std::string& path, const FileScan& scan,
                     const std::map<std::string, std::vector<std::string>>& global_enums,
                     Sink& sink) {
  static const std::set<std::string> kEnforced = {"RequestStatus", "ShedPolicy",
                                                  "KernelMode", "ColdTier"};
  const auto& t = scan.tokens;
  // Local enum definitions win over the global table.
  std::map<std::string, std::vector<std::string>> local_enums;
  const FileFacts local = ExtractFacts(path, scan);
  for (const EnumFact& e : local.enums) {
    local_enums[e.name] = e.enumerators;
  }
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "switch" || t[i + 1].text != "(") {
      continue;
    }
    // Skip the condition to the switch body.
    size_t j = i + 1;
    int parens = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "(") {
        ++parens;
      } else if (t[j].text == ")" && --parens == 0) {
        break;
      }
    }
    ++j;
    if (j >= t.size() || t[j].text != "{") {
      continue;
    }
    const size_t body_begin = j;
    size_t body_end = body_begin;
    int braces = 0;
    for (; body_end < t.size(); ++body_end) {
      if (t[body_end].text == "{") {
        ++braces;
      } else if (t[body_end].text == "}" && --braces == 0) {
        break;
      }
    }
    // Collect `case Qualifier::member` labels and `default:` anywhere in the
    // body (nested switches over the same enum only ever add coverage).
    std::map<std::string, std::set<std::string>> seen;
    bool has_default = false;
    for (size_t k = body_begin; k < body_end; ++k) {
      if (t[k].text == "default" && k + 1 < body_end && t[k + 1].text == ":") {
        has_default = true;
      }
      if (t[k].text == "case" && k + 4 < body_end && IsIdentChar(t[k + 1].text[0]) &&
          t[k + 2].text == ":" && t[k + 3].text == ":" &&
          IsIdentChar(t[k + 4].text[0])) {
        seen[t[k + 1].text].insert(t[k + 4].text);
      }
    }
    if (has_default) {
      continue;
    }
    for (const auto& [qualifier, members] : seen) {
      if (kEnforced.count(qualifier) == 0) {
        continue;
      }
      const std::vector<std::string>* table = nullptr;
      auto local_it = local_enums.find(qualifier);
      if (local_it != local_enums.end()) {
        table = &local_it->second;
      } else {
        auto global_it = global_enums.find(qualifier);
        if (global_it != global_enums.end()) {
          table = &global_it->second;
        }
      }
      if (table == nullptr) {
        continue;
      }
      std::string missing;
      for (const std::string& enumerator : *table) {
        if (members.count(enumerator) == 0) {
          missing += missing.empty() ? enumerator : ", " + enumerator;
        }
      }
      if (!missing.empty()) {
        sink.Report("enum-switch", path, t[i].line,
                    "switch over " + qualifier + " has no case for " + missing +
                    " and no default — handle every enumerator so new states "
                    "cannot fall through silently",
                    scan);
      }
    }
  }
}

}  // namespace deeprest_analyze
