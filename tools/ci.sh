#!/usr/bin/env bash
# DeepRest CI: every enforcement layer in one script, fastest legs first.
#
#   1. tier-1      — default build, full test suite (the gate every PR must hold)
#   2. simd-off    — kernel + quantization suites with SIMD force-disabled
#                    (DEEPREST_SIMD=scalar): the portable fallback path can't rot
#   3. resilience  — self-healing suite by label (ctest -L resilience: health
#                    registry, watchdog restarts, breakers, hedging, chaos
#                    schedules; rides the chaos label into the sanitizer legs)
#   4. lint        — flow-aware analyzer over src/+tools/+tests/ + rule
#                    fixtures (ctest -L lint)
#   5. analyze     — analyzer artifact leg: SARIF report + lock-graph DOT
#                    into build/, plus a warm-cache rerun assertion
#   6. tsa         — Clang Thread Safety Analysis as errors (skipped without clang++)
#   7. tsan        — chaos/serve/resilience/parallel suite under ThreadSanitizer
#   8. asan        — chaos suite + the quantization accuracy budget under ASan+UBSan
#   9. asan-storm  — state-cache eviction storm under ASan+UBSan with a tiny
#                    budget (DEEPREST_STATECACHE_STRESS=1): concurrent leases
#                    vs CLOCK eviction, fp16 demotion, and budget pressure
#
# Usage: tools/ci.sh [--quick]
#   --quick stops before the sanitizer legs (pre-push sanity; tsan/asan are
#   the expensive part).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/9] tier-1: default build + full test suite"
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"
# The closed-loop autoscaling suite again by label: keeps `ctest -L autoscale`
# a supported entry point (it also rides the chaos label into the TSan and
# ASan legs below).
ctest --test-dir build --output-on-failure -L autoscale

echo "==> [2/9] simd-off: kernel + quantization suites on the portable fallback"
# DEEPREST_SIMD=scalar pins the dispatch ladder to the portable rung, so the
# scalar kernel table (the path every non-x86/pre-AVX2 host runs) is executed
# by the same tests that gate the vector paths. The simd tests themselves
# verify the forced-rung semantics (ResetIsa honors the env var).
DEEPREST_SIMD=scalar ctest --test-dir build --output-on-failure \
  -R 'nn_tests|quantized_tests|core_tests|property_tests'

echo "==> [3/9] resilience: self-healing suite by label"
# Supported entry point for the supervision layer (watchdog restarts, hedged
# requests, chaos schedules, the resilience bench smoke); the same tests also
# carry the chaos label, so the sanitizer legs below re-run them under TSan
# and ASan.
ctest --test-dir build --output-on-failure -L resilience

echo "==> [4/9] lint: flow-aware analyzer over the tree + rule fixtures"
ctest --preset lint -j "$JOBS"

echo "==> [5/9] analyze: SARIF + lock-graph artifacts, warm-cache assertion"
ANALYZE_BIN=build/tools/deeprest_analyze
ANALYZE_CACHE=build/deeprest_analyze_ci_cache.txt
# Cold (or incremental) pass: fails the build on any violation and writes
# the CI artifacts — machine-readable SARIF for code-scanning upload and the
# extracted lock graph (DESIGN.md §7 is regenerated from this DOT).
"$ANALYZE_BIN" --root . --allowlist tools/lint/allowlist.txt \
  --cache "$ANALYZE_CACHE" --format=sarif --out build/analysis.sarif \
  --dot build/lock_graph.dot --stats
# No-op rerun must be served entirely from the content-hash cache; an edit
# is covered by the lint_tests cache-invalidation fixture.
"$ANALYZE_BIN" --root . --allowlist tools/lint/allowlist.txt \
  --cache "$ANALYZE_CACHE" --stats | grep -q ' 0 analyzed,' \
  || { echo "analyzer cache did not warm on a no-op rerun"; exit 1; }
echo "    artifacts: build/analysis.sarif, build/lock_graph.dot"

echo "==> [6/9] tsa: Clang thread-safety analysis (compile-only gate)"
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset lint >/dev/null
  cmake --build --preset lint -j "$JOBS"
else
  echo "    clang++ not on PATH — skipping (annotations are inert under GCC)"
fi

if [[ "$QUICK" == "1" ]]; then
  echo "==> --quick: skipping sanitizer legs"
  exit 0
fi

echo "==> [7/9] tsan: chaos suite under ThreadSanitizer"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"
ctest --preset chaos-tsan -j "$JOBS"

echo "==> [8/9] asan: chaos suite + quantization accuracy budget under ASan+UBSan"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$JOBS"
ctest --preset chaos-asan -j "$JOBS"
# The int8/fp16 accuracy budget under ASan: the quantized inference path
# exercises the packed-activation scratch buffers and the simd dispatch
# tables, exactly where an out-of-bounds pack/load would hide.
ctest --test-dir build-asan --output-on-failure -R 'quantized_tests|nn_tests'

echo "==> [9/9] asan-storm: state-cache eviction storm under ASan+UBSan"
# The stress flag multiplies the storm test's iteration count; the tiny
# budget in the test forces constant eviction/demotion/promotion churn while
# four threads hold exclusive leases — the exact interleavings where a
# use-after-evict or gauge double-release would hide.
DEEPREST_STATECACHE_STRESS=1 ctest --test-dir build-asan --output-on-failure \
  -R 'state_cache_tests'

echo "==> CI green"
