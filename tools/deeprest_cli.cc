// deeprest — command-line front-end to the library.
//
//   deeprest train    --model=FILE [--app=social|hotel] [--days=N] [--wpd=N] [--seed=N]
//       Simulate a production learning phase and train + save a model.
//
//   deeprest estimate --model=FILE [--scale=X] [--shape=two_peak|flat|single_peak]
//                     [--days=N] [--replicas-for=COMPONENT]
//       Load a model, build the described hypothetical traffic, print the
//       per-component provisioning plan (and a replica schedule on request).
//
//   deeprest check    --model=FILE [--attack=ransomware|cryptojacking]
//                     [--target=COMPONENT] [--days=N]
//       Continue the simulation with real traffic (optionally attacked),
//       run the application sanity check, and print alerts.
//
//   deeprest serve   [--app=social|hotel] [--days=N] [--wpd=N] [--seed=N]
//                    [--serve-days=N] [--workers=N] [--batch=N] [--clients=N]
//                    [--refresh-windows=N] [--attack=ransomware|cryptojacking]
//                    [--target=COMPONENT]
//                    [--chaos] [--drop=P] [--dup=P] [--corrupt=P] [--gap=P]
//                    [--chaos-schedule=SPEC] [--supervise=0|1] [--hedge=1]
//                    [--max-queue=N] [--shed-policy=reject-new|drop-oldest]
//                    [--deadline-ms=N] [--retries=N] [--checkpoint=FILE]
//                    [--memory-budget-mb=N] [--state-cold-tier=fp16|disk|recompute]
//       Online serving demo: train (or load with --model), then stream a
//       simulated live workload through the ingest pipeline while client
//       threads hammer the estimation service and the continual learner
//       hot-swaps refreshed models. Prints the service counters.
//       --chaos routes the telemetry stream through a seeded FaultInjector
//       (10% drop, 10% duplicate, 5% corrupt, 5% metric gaps by default;
//       individual probabilities override). --chaos-schedule replays a
//       scripted fault timeline (`kind@start[-end][:target][*magnitude]`
//       joined by ';' — worker_stall, worker_crash, clock_skew, alloc_fail,
//       plus the stream faults) keyed to the producer's window clock, and
//       turns on supervision by default: every worker, the learner, and the
//       hedge monitor heartbeat into a HealthRegistry scanned by a
//       watchdog-driven Supervisor that restarts crashed workers with
//       capped-exponential backoff and escalates to degraded (reject-new)
//       mode when a restart budget is exhausted (--supervise=0 opts out,
//       --supervise=1 opts in without a schedule). --hedge=1 re-submits slow
//       estimate requests to a sibling shard, first result wins.
//       --max-queue bounds the request
//       queue (overload sheds instead of growing), --deadline-ms expires
//       stale queued requests, and clients retry non-ok results with
//       exponential backoff + jitter (--retries). --checkpoint enables
//       atomic model checkpoints after every refresh and crash recovery at
//       startup (falls back to FILE.prev if FILE is torn).
//       --memory-budget-mb caps the soft-memory gauge and wires the tiered
//       state subsystem under BOTH serving-state consumers: the per-stream
//       warm-start cache (half the budget hot, half cold) and the registry's
//       displaced-clone retention store. --state-cold-tier picks what
//       eviction demotes to: fp16 (RNE-compressed in RAM, default), disk (a
//       checksummed slab file, bit-exact), or recompute (drop and rebuild on
//       the next miss).
//
//   deeprest autoscale [--app=social|hotel] [--days=N] [--wpd=N] [--seed=N]
//                      [--policy=reactive|predictive|oracle|all]
//                      [--scenario=diurnal|flash_crowd|api_mix_drift|all]
//                      [--scenario-days=N] [--scale=X] [--capacity=CPU]
//                      [--interval=N] [--gap=P]
//       Closed-loop autoscaling evaluation: train (or reuse the cached
//       model), then drive the capacity-model simulator with the chosen
//       scaling policies over the chosen traffic scenarios. Prints the
//       SLO-violation-rate vs provisioned-core-hours table; --gap routes the
//       controller's metric scrapes through a seeded FaultInjector.
//
//   deeprest demo
//       One-command tour: train, estimate, and check on the social network.
//
// The train/estimate/check flow persists only the model file; estimate and
// check re-create the deterministic simulation from the seed recorded in the
// file name side-band (pass the same --app/--days/--wpd/--seed used to train).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/autoscale/scenario.h"
#include "src/core/planner.h"
#include "src/eval/ascii.h"
#include "src/eval/autoscale_harness.h"
#include "src/eval/harness.h"
#include "src/nn/matrix.h"
#include "src/nn/simd/dispatch.h"
#include "src/serve/checkpoint.h"
#include "src/serve/continual_learner.h"
#include "src/serve/estimation_service.h"
#include "src/serve/ingest_pipeline.h"
#include "src/serve/model_registry.h"
#include "src/serve/supervisor.h"
#include "src/sim/chaos_schedule.h"
#include "src/sim/fault_injector.h"

namespace deeprest {
namespace {

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  size_t GetSize(const std::string& name, size_t fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback
                             : static_cast<size_t>(std::atoll(it->second.c_str()));
  }
};

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args.flags[arg] = "1";
    } else {
      args.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return args;
}

HarnessConfig ConfigFrom(const CliArgs& args) {
  HarnessConfig config;
  config.app = args.Get("app", "social") == "hotel" ? HarnessConfig::AppKind::kHotelReservation
                                                    : HarnessConfig::AppKind::kSocialNetwork;
  config.learn_days = args.GetSize("days", 5);
  config.windows_per_day = args.GetSize("wpd", 48);
  config.seed = args.GetSize("seed", 1);
  config.cache_models = false;
  config.estimator.hidden_dim = args.GetSize("hidden", 12);
  config.estimator.epochs = args.GetSize("epochs", 12);
  return config;
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kTiled:
      return "tiled";
    case KernelMode::kReference:
      return "reference";
    case KernelMode::kSimd:
      return "simd";
  }
  return "unknown";
}

// Global kernel backend selection, shared by every command:
// --kernel-mode=tiled|simd|reference picks the GEMM/element-wise backend;
// --isa=auto|scalar|avx2|avx512|neon pins the simd rung (clamped down the
// ladder when unsupported; DEEPREST_SIMD is the env-var spelling).
bool ApplyKernelFlags(const CliArgs& args) {
  const std::string mode = args.Get("kernel-mode", "");
  if (!mode.empty()) {
    if (mode == "tiled") {
      SetKernelMode(KernelMode::kTiled);
    } else if (mode == "simd") {
      SetKernelMode(KernelMode::kSimd);
    } else if (mode == "reference") {
      SetKernelMode(KernelMode::kReference);
    } else {
      std::fprintf(stderr, "bad --kernel-mode=%s (tiled|simd|reference)\n", mode.c_str());
      return false;
    }
  }
  const std::string isa = args.Get("isa", "");
  if (!isa.empty() && !simd::SelectIsaFromSpec(isa)) {
    std::fprintf(stderr, "bad --isa=%s (auto|scalar|avx2|avx512|neon)\n", isa.c_str());
    return false;
  }
  return true;
}

ShapeKind ShapeFrom(const CliArgs& args) {
  const std::string shape = args.Get("shape", "two_peak");
  if (shape == "flat") {
    return ShapeKind::kFlat;
  }
  if (shape == "single_peak") {
    return ShapeKind::kSinglePeak;
  }
  return ShapeKind::kTwoPeak;
}

int CmdTrain(const CliArgs& args) {
  const std::string model_path = args.Get("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "train: --model=FILE is required\n");
    return 2;
  }
  ExperimentHarness harness(ConfigFrom(args));
  std::printf("Simulated %zu learning windows (%zu traces). Training...\n",
              harness.learn_windows(), harness.traces().total_traces());
  DeepRestEstimator& estimator = harness.deeprest();
  if (!estimator.Save(model_path)) {
    std::fprintf(stderr, "train: failed to write %s\n", model_path.c_str());
    return 1;
  }
  std::printf("Trained %zu experts (%zu parameters) in %.1f s -> %s\n",
              estimator.expert_count(), estimator.TotalParameters(),
              estimator.train_seconds(), model_path.c_str());
  return 0;
}

int CmdEstimate(const CliArgs& args) {
  const std::string model_path = args.Get("model", "");
  DeepRestEstimator estimator;
  if (model_path.empty() || !estimator.Load(model_path)) {
    std::fprintf(stderr, "estimate: could not load --model=%s (run `deeprest train` first)\n",
                 model_path.c_str());
    return 2;
  }
  ExperimentHarness harness(ConfigFrom(args));  // deterministic re-simulation
  TrafficSpec spec = harness.QuerySpec(args.GetSize("query-days", 1));
  spec.user_scale = args.GetDouble("scale", 1.0);
  spec.shape = ShapeFrom(args);
  Rng rng(ConfigFrom(args).seed + 41);
  const TrafficSeries traffic = GenerateTraffic(spec, rng);
  std::printf("Estimating %zu windows at %.1fx users, %s shape...\n", traffic.windows(),
              spec.user_scale, ShapeKindName(spec.shape).c_str());
  const EstimateMap estimates = estimator.EstimateFromTraffic(traffic, 7);

  AllocationPlanner planner;
  std::vector<std::vector<std::string>> rows;
  for (const auto& plan : planner.PlanResources(estimates)) {
    if (plan.key.resource != ResourceKind::kCpu || plan.provision < 8.0) {
      continue;
    }
    rows.push_back({plan.key.component, FormatDouble(plan.peak_expected, 1) + "%",
                    FormatDouble(plan.provision, 1) + "%"});
  }
  std::printf("\nCPU provisioning plan (components above 8%%):\n%s\n",
              RenderTable({"component", "peak expected", "provision (p90+10%)"}, rows)
                  .c_str());

  const std::string replicas_for = args.Get("replicas-for", "");
  if (!replicas_for.empty()) {
    const ReplicaSchedule schedule = planner.PlanReplicas(estimates, replicas_for);
    std::printf("Replica schedule for %s (peak %zu, %.0f%% replica-windows saved vs static"
                " peak):\n  ",
                replicas_for.c_str(), schedule.peak_replicas,
                100.0 * schedule.savings_fraction);
    for (size_t r : schedule.replicas) {
      std::printf("%zu", r);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdCheck(const CliArgs& args) {
  const std::string model_path = args.Get("model", "");
  DeepRestEstimator estimator;
  if (model_path.empty() || !estimator.Load(model_path)) {
    std::fprintf(stderr, "check: could not load --model=%s (run `deeprest train` first)\n",
                 model_path.c_str());
    return 2;
  }
  HarnessConfig config = ConfigFrom(args);
  ExperimentHarness harness(config);
  const size_t days = args.GetSize("query-days", 2);

  const std::string attack_kind = args.Get("attack", "");
  if (!attack_kind.empty()) {
    AttackSpec attack;
    attack.kind = attack_kind == "ransomware" ? AttackSpec::Kind::kRansomware
                                              : AttackSpec::Kind::kCryptojacking;
    attack.component = args.Get("target", "PostStorageMongoDB");
    attack.start_window = harness.learn_windows() + config.windows_per_day * (days - 1) +
                          config.windows_per_day / 3;
    attack.end_window = attack.start_window + config.windows_per_day / 4;
    harness.simulator().AddAttack(attack);
    std::printf("Injecting %s on %s (windows %zu-%zu)\n", attack_kind.c_str(),
                attack.component.c_str(), attack.start_window, attack.end_window);
  }

  Rng rng(config.seed + 43);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(days), rng));
  const EstimateMap expected =
      estimator.EstimateFromTraces(harness.traces(), query.from, query.to);
  SanityChecker checker;
  const auto events = checker.Detect(expected, harness.metrics(), query.from, query.to);
  if (events.empty()) {
    std::printf("Sanity check: no anomalies over %zu windows.\n", query.to - query.from);
  } else {
    std::printf("Sanity check: %zu anomalous event(s):\n\n", events.size());
    for (const auto& event : events) {
      std::printf("%s\n", event.Describe(config.windows_per_day).c_str());
    }
  }
  return 0;
}

int CmdServe(const CliArgs& args) {
  HarnessConfig config = ConfigFrom(args);
  ExperimentHarness harness(config);

  const size_t serve_days = args.GetSize("serve-days", 2);
  const std::string attack_kind = args.Get("attack", "");
  if (!attack_kind.empty()) {
    AttackSpec attack;
    attack.kind = attack_kind == "ransomware" ? AttackSpec::Kind::kRansomware
                                              : AttackSpec::Kind::kCryptojacking;
    attack.component = args.Get("target", "PostStorageMongoDB");
    attack.start_window = harness.learn_windows() +
                          config.windows_per_day * (serve_days - 1) +
                          config.windows_per_day / 3;
    attack.end_window = attack.start_window + config.windows_per_day / 4;
    harness.simulator().AddAttack(attack);
    std::printf("Injecting %s on %s (windows %zu-%zu)\n", attack_kind.c_str(),
                attack.component.c_str(), attack.start_window, attack.end_window);
  }

  // Ground-truth live phase: continue the simulation so there is real
  // telemetry to stream through the pipeline.
  Rng traffic_rng(config.seed + 47);
  const auto live = harness.RunQuery(GenerateTraffic(harness.QuerySpec(serve_days), traffic_rng));

  // Telemetry fault injection: --chaos turns on the default fault mix;
  // individual probability flags override (and imply chaos on their own).
  const bool chaos_flag = args.Get("chaos", "") == "1";
  FaultInjectorConfig fault_config;
  fault_config.seed = config.seed + 101;
  fault_config.drop_prob = args.GetDouble("drop", chaos_flag ? 0.10 : 0.0);
  fault_config.duplicate_prob = args.GetDouble("dup", chaos_flag ? 0.10 : 0.0);
  fault_config.corrupt_prob = args.GetDouble("corrupt", chaos_flag ? 0.05 : 0.0);
  fault_config.metric_gap_prob = args.GetDouble("gap", chaos_flag ? 0.05 : 0.0);
  // Scripted chaos: a window-addressed fault timeline layered on top of the
  // probabilistic mix. The producer's window counter is the schedule clock.
  ChaosSchedule schedule;
  {
    std::string spec_error;
    if (!ParseChaosSchedule(args.Get("chaos-schedule", ""), &schedule, &spec_error)) {
      std::fprintf(stderr, "serve: bad --chaos-schedule: %s\n", spec_error.c_str());
      return 2;
    }
    // Spec windows are relative to the start of serving; the injector and
    // pipeline work in absolute simulation windows.
    for (ChaosEvent& event : schedule.events) {
      event.start_window += live.from;
      event.end_window += live.from;
    }
  }
  const bool chaos = fault_config.drop_prob > 0.0 || fault_config.duplicate_prob > 0.0 ||
                     fault_config.corrupt_prob > 0.0 || fault_config.metric_gap_prob > 0.0 ||
                     !schedule.empty();
  // A schedule implies supervision (that is the point of the demo); both are
  // independently overridable.
  const bool supervise = args.Get("supervise", schedule.empty() ? "0" : "1") == "1";
  const bool hedge = args.Get("hedge", "") == "1";
  FaultInjector injector(fault_config, schedule);
  std::atomic<size_t> chaos_window{live.from};
  if (chaos) {
    std::printf("Chaos: drop=%.2f dup=%.2f corrupt=%.2f gap=%.2f (seed %llu)\n",
                fault_config.drop_prob, fault_config.duplicate_prob, fault_config.corrupt_prob,
                fault_config.metric_gap_prob,
                static_cast<unsigned long long>(fault_config.seed));
  }
  if (!schedule.empty()) {
    std::printf("Chaos schedule: %s\n", FormatChaosSchedule(schedule).c_str());
  }

  // Supervision tree: a skew-able health clock (the clock_skew fault), the
  // registry every long-lived actor heartbeats into, and a watchdog-driven
  // supervisor that restarts crashed workers and escalates to degraded mode.
  // Declared before the supervised components so it outlives them all.
  SteadyHealthClock steady_clock;
  SkewedHealthClock health_clock(steady_clock);
  HealthRegistry health(&health_clock);

  // Initial model: a recovered checkpoint wins, then --model, then the
  // harness's freshly trained one.
  std::printf("Preparing initial model...\n");
  const std::string checkpoint_path = args.Get("checkpoint", "");
  const bool quantized = args.Get("quantized", "") == "1";

  // Soft-memory tiered state: one gauge, two consumers (the per-stream
  // warm-start cache and the registry's displaced-clone store). Declared
  // before the registry and service so both consumers die first and return
  // their charges to the gauge.
  const size_t memory_budget_mb = args.GetSize("memory-budget-mb", 0);
  ColdTier cold_tier = ColdTier::kFp16;
  const std::string cold_tier_flag = args.Get("state-cold-tier", "fp16");
  if (!ParseColdTier(cold_tier_flag, &cold_tier)) {
    std::fprintf(stderr, "serve: unknown --state-cold-tier=%s (fp16|disk|recompute)\n",
                 cold_tier_flag.c_str());
    return 2;
  }
  const size_t memory_budget_bytes = memory_budget_mb << 20;
  MemoryBudget memory_budget(memory_budget_bytes);
  std::unique_ptr<StateCache> stream_states;
  std::unique_ptr<InMemorySnapshotStore> retained_store;
  const std::string slab_path = "deeprest_state.slab";
  if (memory_budget_mb > 0) {
    StateCacheConfig cache_config;
    cache_config.hot_bytes = memory_budget_bytes / 2;
    cache_config.cold_tier = cold_tier;
    cache_config.cold_bytes = memory_budget_bytes / 4;
    cache_config.budget = &memory_budget;
    if (cold_tier == ColdTier::kDisk) {
      cache_config.slab_path = slab_path;
    }
    stream_states = std::make_unique<StateCache>(cache_config);
    retained_store = std::make_unique<InMemorySnapshotStore>(memory_budget_bytes / 4,
                                                             &memory_budget);
  }

  ModelRegistry registry;
  if (retained_store != nullptr) {
    registry.SetRetention(retained_store.get(), /*max_retained=*/2);
  }
  // fp16 storage applies to every model that passes through a mutable
  // publication path (the initial fresh model and each continual-learner
  // refresh). A recovered checkpoint is already immutable and keeps the
  // precision it was saved with.
  registry.SetFp16Storage(args.Get("fp16-registry", "") == "1");
  std::shared_ptr<const DeepRestEstimator> initial;
  size_t start_window = live.from;
  if (!checkpoint_path.empty()) {
    CheckpointData recovered;
    const RecoverySource source = RecoverCheckpoint(checkpoint_path, &recovered);
    if (source != RecoverySource::kNone && registry.Restore(recovered.model, recovered.version)) {
      std::printf("Recovered checkpoint (%s): model v%llu, trained through window %llu\n",
                  RecoverySourceName(source),
                  static_cast<unsigned long long>(recovered.version),
                  static_cast<unsigned long long>(recovered.trained_through));
      initial = recovered.model;
      start_window = std::max<size_t>(start_window,
                                      static_cast<size_t>(recovered.trained_through));
    }
  }
  if (initial == nullptr) {
    const std::string model_path = args.Get("model", "");
    std::unique_ptr<DeepRestEstimator> fresh;
    if (!model_path.empty()) {
      fresh = std::make_unique<DeepRestEstimator>();
      if (!fresh->Load(model_path)) {
        std::fprintf(stderr, "serve: could not load --model=%s\n", model_path.c_str());
        return 2;
      }
    } else {
      fresh = harness.deeprest().Clone();
    }
    if (quantized) {
      // Clone() copies the config, so every continual-learner refresh
      // inherits int8 inference automatically.
      fresh->SetQuantizedInference(true);
    }
    registry.ApplyStoragePolicy(*fresh);
    initial = std::shared_ptr<const DeepRestEstimator>(std::move(fresh));
    registry.Publish(initial);
  }
  // Chaos implies an at-least-once transport, so trace dedup goes on.
  IngestPipelineConfig pipeline_config;
  pipeline_config.shards = 4;
  pipeline_config.dedupe_traces = chaos;
  IngestPipeline pipeline(initial->features(), pipeline_config);

  ContinualLearnerConfig learner_config;
  learner_config.min_new_windows = args.GetSize("refresh-windows", config.windows_per_day);
  learner_config.epochs = 2;
  learner_config.checkpoint_path = checkpoint_path;
  if (supervise) {
    learner_config.health = &health;
  }
  if (!schedule.empty()) {
    // alloc_fail faults land on the fine-tune path: the refresh is skipped
    // (no windows consumed) and retried once the scheduled failure passes.
    learner_config.alloc_fail_hook = [&injector, &chaos_window] {
      return injector.TakeAllocFail(chaos_window.load(std::memory_order_acquire));
    };
  }
  ContinualLearner learner(registry, pipeline, start_window, learner_config);
  learner.Start();

  EstimationServiceConfig service_config;
  service_config.workers = args.GetSize("workers", 4);
  service_config.max_batch = args.GetSize("batch", 8);
  service_config.max_queue = args.GetSize("max-queue", 0);
  service_config.shed_policy = args.Get("shed-policy", "reject-new") == "drop-oldest"
                                   ? ShedPolicy::kDropOldest
                                   : ShedPolicy::kRejectNew;
  service_config.default_deadline =
      std::chrono::milliseconds(args.GetSize("deadline-ms", 0));
  if (supervise) {
    service_config.health = &health;
  }
  service_config.hedge.enabled = hedge;
  if (stream_states != nullptr) {
    service_config.stream_states = stream_states.get();
  }
  if (!schedule.empty()) {
    service_config.worker_fault_hook = [&injector, &chaos_window](size_t worker) {
      const size_t w = chaos_window.load(std::memory_order_acquire);
      if (injector.TakeCrash(w, static_cast<int>(worker))) {
        return WorkerFault::kCrash;
      }
      double stall_ms = 0.0;
      if (injector.TakeStall(w, static_cast<int>(worker), &stall_ms)) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stall_ms));
        return WorkerFault::kStall;
      }
      return WorkerFault::kNone;
    };
  }
  EstimationService service(registry, pipeline, service_config);

  Supervisor supervisor(health);
  Watchdog watchdog(supervisor, health, {});
  if (supervise) {
    supervisor.SetEscalationHandler(
        [&service](const std::string&) { service.SetDegraded(true); });
    for (size_t i = 0; i < service_config.workers; ++i) {
      const size_t id =
          health.Register("estimation-worker-" + std::to_string(i), 1).id();
      supervisor.Watch(id, [&service, i] { return service.RestartWorker(i); });
    }
    // The learner cannot be force-restarted (a wedged fine-tune is a live
    // thread); watching it still opens incidents, and a budget-exhausting
    // livelock escalates to degraded mode.
    supervisor.Watch(health.Register("continual-learner", 1).id(), [] { return false; });
    watchdog.Start();
  }

  // Deployment verification row: what this process actually selected, not
  // what was requested (a forced ISA clamps down the ladder when the host
  // lacks it).
  std::printf("Kernels: mode=%s isa=%s (host best: %s)%s%s\n",
              KernelModeName(GetKernelMode()), simd::IsaName(simd::ActiveIsa()),
              simd::IsaName(simd::BestSupportedIsa()), quantized ? " int8-inference" : "",
              registry.fp16_storage() ? " fp16-storage" : "");
  // Same discipline as the Kernels row: what this process actually wired,
  // not what was requested (a disk tier that failed to open its slab serves
  // recompute-on-miss semantics and says so).
  if (memory_budget_mb > 0) {
    const bool disk_degraded = cold_tier == ColdTier::kDisk && !stream_states->disk_ok();
    std::printf("Memory: budget=%zuMB cold-tier=%s%s "
                "(stream cache hot %zuMB + cold %zuMB, clone store %zuMB)\n",
                memory_budget_mb, ColdTierName(cold_tier),
                disk_degraded ? " [slab open FAILED: miss=recompute]" : "",
                memory_budget_bytes / 2 >> 20, memory_budget_bytes / 4 >> 20,
                memory_budget_bytes / 4 >> 20);
  } else {
    std::printf("Memory: budget=unlimited state-cache=off (pass --memory-budget-mb=N "
                "to bound resident serving state)\n");
  }
  std::printf("Serving %zu live windows with %zu workers (batch %zu)...\n",
              live.to - live.from, service_config.workers, service_config.max_batch);

  // Producer: replays the live phase's traces and metric samples into the
  // sharded pipeline, one window at a time, as a telemetry agent would —
  // through the fault injector when chaos is on.
  std::atomic<bool> producing{true};
  std::thread producer([&] {
    const auto keys = harness.metrics().Keys();
    for (size_t w = live.from; w < live.to; ++w) {
      // The producer's window IS the chaos clock: scheduled process faults
      // (worker stall/crash, alloc fail) key off it, and any active
      // clock_skew event warps the supervisor's view of staleness.
      chaos_window.store(w, std::memory_order_release);
      health_clock.SetSkewMicros(static_cast<int64_t>(injector.ClockSkewUs(w)));
      for (const Trace& trace : harness.traces().TracesAt(w)) {
        if (chaos) {
          for (auto& delivery : injector.ProcessTrace(w, trace)) {
            pipeline.IngestTrace(delivery.window, std::move(delivery.trace));
          }
        } else {
          pipeline.IngestTrace(w, trace);
        }
      }
      for (const MetricKey& key : keys) {
        const double value = harness.metrics().At(key, w);
        if (!chaos || injector.ProcessMetric(key, w, value)) {
          pipeline.IngestMetric(key, w, value);
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    producing.store(false);
  });

  // Clients: a mix of mode-1 traffic estimates and mode-2 sanity checks over
  // the freshest sealed windows. Shed and expired results are retried with
  // exponential backoff + jitter — the client-side half of overload
  // protection: backing off drains the queue instead of hammering it.
  const size_t client_count = args.GetSize("clients", 3);
  const size_t max_retries = args.GetSize("retries", 3);
  std::atomic<uint64_t> versions_seen_bits{0};
  std::atomic<size_t> anomalies_seen{0};
  std::atomic<uint64_t> client_retries{0};
  std::atomic<uint64_t> client_gave_up{0};
  std::vector<std::thread> clients;
  clients.reserve(client_count);
  for (size_t c = 0; c < client_count; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(config.seed * 977 + c);
      // Runs one submission through the retry loop; returns the final status.
      const auto with_backoff = [&](auto submit) {
        for (size_t attempt = 0;; ++attempt) {
          const RequestStatus status = submit();
          if (status == RequestStatus::kOk || status == RequestStatus::kRejectedStopped ||
              attempt >= max_retries) {
            if (status != RequestStatus::kOk) {
              client_gave_up.fetch_add(1, std::memory_order_relaxed);
            }
            return status;
          }
          client_retries.fetch_add(1, std::memory_order_relaxed);
          const double base_ms = static_cast<double>(uint64_t{1} << std::min<size_t>(attempt, 8));
          const double jittered_ms = rng.Uniform(0.5 * base_ms, 1.5 * base_ms);
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(jittered_ms));
        }
      };
      size_t round = 0;
      while (producing.load(std::memory_order_acquire)) {
        if (++round % 5 == 0 && pipeline.featured_windows() > live.from + 4) {
          with_backoff([&] {
            auto future = service.SubmitSanityCheck(live.from, pipeline.featured_windows());
            const auto result = future.get();
            if (result.status == RequestStatus::kOk) {
              anomalies_seen.fetch_add(result.events.size(), std::memory_order_relaxed);
              versions_seen_bits.fetch_or(uint64_t{1} << (result.model_version & 63u),
                                          std::memory_order_relaxed);
            }
            return result.status;
          });
        } else {
          with_backoff([&] {
            TrafficSpec spec = harness.QuerySpec(1);
            spec.user_scale = rng.Uniform(0.5, 3.0);
            // With tiered state on, each client is a stream: its hidden state
            // warm-starts the next request (and rides the hot/cold tiers).
            auto future = stream_states != nullptr
                              ? service.SubmitStreamTraffic(1 + c, GenerateTraffic(spec, rng),
                                                            rng.NextU64())
                              : service.SubmitTraffic(GenerateTraffic(spec, rng), rng.NextU64());
            const auto result = future.get();
            if (result.status == RequestStatus::kOk) {
              versions_seen_bits.fetch_or(uint64_t{1} << (result.model_version & 63u),
                                          std::memory_order_relaxed);
            }
            return result.status;
          });
        }
      }
    });
  }

  producer.join();
  for (auto& client : clients) {
    client.join();
  }
  watchdog.Stop();
  health_clock.SetSkewMicros(0);
  learner.Stop();

  // Final fold seals the last window, then one authoritative sanity pass.
  pipeline.Fold(pipeline.WindowFrontier());
  const auto final_sanity = service.SubmitSanityCheck(live.from, live.to).get();
  service.Stop();

  const ServiceCounters counters = service.Counters();
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, value] : counters.Rows()) {
    rows.push_back({name, value});
  }
  rows.push_back({"late events", std::to_string(pipeline.late_events())});
  rows.push_back({"traces ingested", std::to_string(pipeline.total_traces())});
  rows.push_back({"learner refreshes", std::to_string(learner.refreshes_published())});
  rows.push_back({"learner fine-tunes rejected", std::to_string(learner.models_rejected())});
  if (!checkpoint_path.empty()) {
    rows.push_back({"checkpoints written", std::to_string(learner.checkpoints_written())});
  }
  rows.push_back({"client anomalies seen", std::to_string(anomalies_seen.load())});
  rows.push_back({"client retries", std::to_string(client_retries.load())});
  rows.push_back({"client gave up", std::to_string(client_gave_up.load())});
  if (chaos) {
    const FaultCounters faults = injector.counters();
    rows.push_back({"chaos traces dropped", std::to_string(faults.dropped)});
    rows.push_back({"chaos traces corrupted", std::to_string(faults.corrupted)});
    rows.push_back({"chaos traces duplicated", std::to_string(faults.duplicated)});
    rows.push_back({"chaos metric gaps", std::to_string(faults.metric_gaps)});
    if (!schedule.empty()) {
      rows.push_back({"chaos worker stalls", std::to_string(faults.worker_stalls)});
      rows.push_back({"chaos worker crashes", std::to_string(faults.worker_crashes)});
      rows.push_back({"chaos clock skews", std::to_string(faults.clock_skews)});
      rows.push_back({"chaos alloc fails", std::to_string(faults.alloc_fails)});
    }
  }
  if (supervise) {
    const SupervisorCounters sup = supervisor.counters();
    uint64_t mttr_max_us = 0;
    for (const RecoveryIncident& incident : supervisor.Incidents()) {
      if (incident.recovered()) {
        mttr_max_us = std::max(mttr_max_us, incident.mttr_us());
      }
    }
    rows.push_back({"watchdog scans", std::to_string(watchdog.scans())});
    rows.push_back({"incidents opened", std::to_string(sup.incidents_opened)});
    rows.push_back({"incidents recovered", std::to_string(sup.incidents_recovered)});
    rows.push_back({"worker restarts", std::to_string(sup.restarts_succeeded)});
    rows.push_back({"escalations", std::to_string(sup.escalations)});
    rows.push_back({"max MTTR (ms)", std::to_string(mttr_max_us / 1000)});
  }
  std::printf("\nService counters:\n%s\n", RenderTable({"counter", "value"}, rows).c_str());

  uint64_t versions = 0;
  for (uint64_t bits = versions_seen_bits.load(); bits != 0; bits &= bits - 1) {
    ++versions;
  }
  std::printf("Model versions observed by clients: %llu (registry at v%llu)\n",
              static_cast<unsigned long long>(versions),
              static_cast<unsigned long long>(registry.version()));

  if (final_sanity.min_quality < 1.0) {
    std::printf("Telemetry quality over the checked range: min %.2f (degraded windows get "
                "widened anomaly tolerance)\n",
                final_sanity.min_quality);
  }
  if (final_sanity.events.empty()) {
    std::printf("Final sanity check (v%llu): no anomalies over %zu windows.\n",
                static_cast<unsigned long long>(final_sanity.model_version),
                final_sanity.to - final_sanity.from);
  } else {
    std::printf("Final sanity check (v%llu): %zu anomalous event(s):\n\n",
                static_cast<unsigned long long>(final_sanity.model_version),
                final_sanity.events.size());
    for (const auto& event : final_sanity.events) {
      std::printf("%s\n", event.Describe(config.windows_per_day).c_str());
    }
  }
  if (stream_states != nullptr && cold_tier == ColdTier::kDisk) {
    std::remove(slab_path.c_str());  // serving scratch, not a checkpoint
  }
  return 0;
}

int CmdAutoscale(const CliArgs& args) {
  // Validate flags before the (potentially minutes-long) training step.
  std::vector<PolicyKind> policies;
  const std::string policy_flag = args.Get("policy", "all");
  if (policy_flag == "all") {
    policies = AllPolicyKinds();
  } else {
    PolicyKind kind;
    if (!ParsePolicyKind(policy_flag, kind)) {
      std::fprintf(stderr, "autoscale: unknown --policy=%s\n", policy_flag.c_str());
      return 2;
    }
    policies.push_back(kind);
  }
  std::vector<ScenarioKind> scenarios;
  const std::string scenario_flag = args.Get("scenario", "all");
  if (scenario_flag == "all") {
    scenarios = AllScenarioKinds();
  } else {
    ScenarioKind kind;
    if (!ParseScenarioKind(scenario_flag, kind)) {
      std::fprintf(stderr, "autoscale: unknown --scenario=%s\n", scenario_flag.c_str());
      return 2;
    }
    scenarios.push_back(kind);
  }

  ExperimentHarness harness(ConfigFrom(args));
  std::printf("Training the estimator (%zu learn windows)...\n", harness.learn_windows());
  EstimatorWhatIf whatif(harness.deeprest());

  const HarnessConfig config = ConfigFrom(args);
  ScenarioSpec scenario_spec;
  scenario_spec.days = args.GetSize("scenario-days", 2);
  scenario_spec.user_scale = args.GetDouble("scale", 3.0);

  ClosedLoopConfig loop;
  loop.windows_per_day = config.windows_per_day;
  loop.default_capacity_cpu = args.GetDouble("capacity", 10.0);
  loop.policy_config.sizing.min_capacity_cpu = loop.default_capacity_cpu;
  loop.policy_config.sizing.capacity_step_cpu = loop.default_capacity_cpu;
  loop.policy_config.predictive_headroom = 0.71;
  loop.forecast_upper_weight = 0.0;
  loop.controller.control_interval = args.GetSize("interval", 4);
  loop.controller.lookahead = 0;
  loop.faults.seed = config.seed + 103;
  loop.faults.metric_gap_prob = args.GetDouble("gap", 0.0);

  std::vector<std::vector<std::string>> rows;
  for (ScenarioKind scenario_kind : scenarios) {
    ScenarioSpec scenario = scenario_spec;
    scenario.kind = scenario_kind;
    const TrafficSeries traffic = BuildScenarioTraffic(
        harness.QuerySpec(scenario.days), scenario, config.seed + 71);
    for (PolicyKind policy_kind : policies) {
      ClosedLoopConfig cell = loop;
      cell.policy = policy_kind;
      const ClosedLoopResult r =
          RunClosedLoop(harness.app(), harness.simulator(), harness.learn_windows(),
                        traffic, &whatif, cell, ScenarioKindName(scenario_kind));
      rows.push_back({r.scenario, r.policy,
                      FormatDouble(100.0 * r.slo_violation_rate, 2) + "%",
                      FormatDouble(r.provisioned_core_hours, 1),
                      FormatDouble(r.demand_core_hours, 1),
                      FormatDouble(r.over_provision_ratio, 2),
                      std::to_string(r.actions),
                      std::to_string(r.counters.blank_holds)});
    }
  }
  std::printf("\nClosed loop over %zu-day scenarios at %.1fx users "
              "(%.0f-CPU replicas, tick every %zu windows):\n%s\n",
              scenario_spec.days, scenario_spec.user_scale, loop.default_capacity_cpu,
              loop.controller.control_interval,
              RenderTable({"scenario", "policy", "SLO viol", "prov core-h",
                           "demand core-h", "over-prov", "actions", "blank holds"},
                          rows)
                  .c_str());
  return 0;
}

int CmdDemo() {
  const std::string model = "/tmp/deeprest_demo_model.bin";
  CliArgs train_args;
  train_args.flags["model"] = model;
  train_args.flags["days"] = "4";
  if (int rc = CmdTrain(train_args); rc != 0) {
    return rc;
  }
  CliArgs estimate_args;
  estimate_args.flags["model"] = model;
  estimate_args.flags["scale"] = "2.0";
  estimate_args.flags["days"] = "4";
  estimate_args.flags["replicas-for"] = "FrontendNGINX";
  if (int rc = CmdEstimate(estimate_args); rc != 0) {
    return rc;
  }
  CliArgs check_args;
  check_args.flags["model"] = model;
  check_args.flags["days"] = "4";
  check_args.flags["attack"] = "cryptojacking";
  return CmdCheck(check_args);
}

int Usage() {
  std::fprintf(stderr,
               "usage: deeprest <train|estimate|check|serve|autoscale|demo> [--flags]\n"
               "  train    --model=FILE [--app=social|hotel] [--days=N] [--wpd=N]\n"
               "           [--seed=N] [--hidden=N] [--epochs=N]\n"
               "  estimate --model=FILE [--scale=X] [--shape=two_peak|flat|single_peak]\n"
               "           [--query-days=N] [--replicas-for=COMPONENT]\n"
               "  check    --model=FILE [--attack=ransomware|cryptojacking]\n"
               "           [--target=COMPONENT] [--query-days=N]\n"
               "  serve    [--model=FILE] [--serve-days=N] [--workers=N] [--batch=N]\n"
               "           [--clients=N] [--refresh-windows=N] [--attack=...]\n"
               "           [--chaos] [--drop=P] [--dup=P] [--corrupt=P] [--gap=P]\n"
               "           [--chaos-schedule=kind@start[-end][:target][*mag];...]\n"
               "           [--supervise=0|1] [--hedge=1]\n"
               "           [--max-queue=N] [--shed-policy=reject-new|drop-oldest]\n"
               "           [--deadline-ms=N] [--retries=N] [--checkpoint=FILE]\n"
               "           [--memory-budget-mb=N] [--state-cold-tier=fp16|disk|recompute]\n"
               "           [--quantized=1] [--fp16-registry=1]\n"
               "  autoscale [--policy=reactive|predictive|oracle|all]\n"
               "           [--scenario=diurnal|flash_crowd|api_mix_drift|all]\n"
               "           [--scenario-days=N] [--scale=X] [--capacity=CPU]\n"
               "           [--interval=N] [--gap=P]\n"
               "  demo     end-to-end tour on the social network\n"
               "global flags (all commands):\n"
               "  --kernel-mode=tiled|simd|reference   GEMM / element-wise backend\n"
               "  --isa=auto|scalar|avx2|avx512|neon   simd rung (DEEPREST_SIMD env var)\n");
  return 2;
}

}  // namespace
}  // namespace deeprest

int main(int argc, char** argv) {
  const deeprest::CliArgs args = deeprest::Parse(argc, argv);
  if (!deeprest::ApplyKernelFlags(args)) {
    return 2;
  }
  if (args.command == "train") {
    return deeprest::CmdTrain(args);
  }
  if (args.command == "estimate") {
    return deeprest::CmdEstimate(args);
  }
  if (args.command == "check") {
    return deeprest::CmdCheck(args);
  }
  if (args.command == "serve") {
    return deeprest::CmdServe(args);
  }
  if (args.command == "autoscale") {
    return deeprest::CmdAutoscale(args);
  }
  if (args.command == "demo") {
    return deeprest::CmdDemo();
  }
  return deeprest::Usage();
}
