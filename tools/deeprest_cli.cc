// deeprest — command-line front-end to the library.
//
//   deeprest train    --model=FILE [--app=social|hotel] [--days=N] [--wpd=N] [--seed=N]
//       Simulate a production learning phase and train + save a model.
//
//   deeprest estimate --model=FILE [--scale=X] [--shape=two_peak|flat|single_peak]
//                     [--days=N] [--replicas-for=COMPONENT]
//       Load a model, build the described hypothetical traffic, print the
//       per-component provisioning plan (and a replica schedule on request).
//
//   deeprest check    --model=FILE [--attack=ransomware|cryptojacking]
//                     [--target=COMPONENT] [--days=N]
//       Continue the simulation with real traffic (optionally attacked),
//       run the application sanity check, and print alerts.
//
//   deeprest demo
//       One-command tour: train, estimate, and check on the social network.
//
// The train/estimate/check flow persists only the model file; estimate and
// check re-create the deterministic simulation from the seed recorded in the
// file name side-band (pass the same --app/--days/--wpd/--seed used to train).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/eval/ascii.h"
#include "src/eval/harness.h"

namespace deeprest {
namespace {

struct CliArgs {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  size_t GetSize(const std::string& name, size_t fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback
                             : static_cast<size_t>(std::atoll(it->second.c_str()));
  }
};

CliArgs Parse(int argc, char** argv) {
  CliArgs args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      args.flags[arg] = "1";
    } else {
      args.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return args;
}

HarnessConfig ConfigFrom(const CliArgs& args) {
  HarnessConfig config;
  config.app = args.Get("app", "social") == "hotel" ? HarnessConfig::AppKind::kHotelReservation
                                                    : HarnessConfig::AppKind::kSocialNetwork;
  config.learn_days = args.GetSize("days", 5);
  config.windows_per_day = args.GetSize("wpd", 48);
  config.seed = args.GetSize("seed", 1);
  config.cache_models = false;
  config.estimator.hidden_dim = args.GetSize("hidden", 12);
  config.estimator.epochs = args.GetSize("epochs", 12);
  return config;
}

ShapeKind ShapeFrom(const CliArgs& args) {
  const std::string shape = args.Get("shape", "two_peak");
  if (shape == "flat") {
    return ShapeKind::kFlat;
  }
  if (shape == "single_peak") {
    return ShapeKind::kSinglePeak;
  }
  return ShapeKind::kTwoPeak;
}

int CmdTrain(const CliArgs& args) {
  const std::string model_path = args.Get("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "train: --model=FILE is required\n");
    return 2;
  }
  ExperimentHarness harness(ConfigFrom(args));
  std::printf("Simulated %zu learning windows (%zu traces). Training...\n",
              harness.learn_windows(), harness.traces().total_traces());
  DeepRestEstimator& estimator = harness.deeprest();
  if (!estimator.Save(model_path)) {
    std::fprintf(stderr, "train: failed to write %s\n", model_path.c_str());
    return 1;
  }
  std::printf("Trained %zu experts (%zu parameters) in %.1f s -> %s\n",
              estimator.expert_count(), estimator.TotalParameters(),
              estimator.train_seconds(), model_path.c_str());
  return 0;
}

int CmdEstimate(const CliArgs& args) {
  const std::string model_path = args.Get("model", "");
  DeepRestEstimator estimator;
  if (model_path.empty() || !estimator.Load(model_path)) {
    std::fprintf(stderr, "estimate: could not load --model=%s (run `deeprest train` first)\n",
                 model_path.c_str());
    return 2;
  }
  ExperimentHarness harness(ConfigFrom(args));  // deterministic re-simulation
  TrafficSpec spec = harness.QuerySpec(args.GetSize("query-days", 1));
  spec.user_scale = args.GetDouble("scale", 1.0);
  spec.shape = ShapeFrom(args);
  Rng rng(ConfigFrom(args).seed + 41);
  const TrafficSeries traffic = GenerateTraffic(spec, rng);
  std::printf("Estimating %zu windows at %.1fx users, %s shape...\n", traffic.windows(),
              spec.user_scale, ShapeKindName(spec.shape).c_str());
  const EstimateMap estimates = estimator.EstimateFromTraffic(traffic, 7);

  AllocationPlanner planner;
  std::vector<std::vector<std::string>> rows;
  for (const auto& plan : planner.PlanResources(estimates)) {
    if (plan.key.resource != ResourceKind::kCpu || plan.provision < 8.0) {
      continue;
    }
    rows.push_back({plan.key.component, FormatDouble(plan.peak_expected, 1) + "%",
                    FormatDouble(plan.provision, 1) + "%"});
  }
  std::printf("\nCPU provisioning plan (components above 8%%):\n%s\n",
              RenderTable({"component", "peak expected", "provision (p90+10%)"}, rows)
                  .c_str());

  const std::string replicas_for = args.Get("replicas-for", "");
  if (!replicas_for.empty()) {
    const ReplicaSchedule schedule = planner.PlanReplicas(estimates, replicas_for);
    std::printf("Replica schedule for %s (peak %zu, %.0f%% replica-windows saved vs static"
                " peak):\n  ",
                replicas_for.c_str(), schedule.peak_replicas,
                100.0 * schedule.savings_fraction);
    for (size_t r : schedule.replicas) {
      std::printf("%zu", r);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdCheck(const CliArgs& args) {
  const std::string model_path = args.Get("model", "");
  DeepRestEstimator estimator;
  if (model_path.empty() || !estimator.Load(model_path)) {
    std::fprintf(stderr, "check: could not load --model=%s (run `deeprest train` first)\n",
                 model_path.c_str());
    return 2;
  }
  HarnessConfig config = ConfigFrom(args);
  ExperimentHarness harness(config);
  const size_t days = args.GetSize("query-days", 2);

  const std::string attack_kind = args.Get("attack", "");
  if (!attack_kind.empty()) {
    AttackSpec attack;
    attack.kind = attack_kind == "ransomware" ? AttackSpec::Kind::kRansomware
                                              : AttackSpec::Kind::kCryptojacking;
    attack.component = args.Get("target", "PostStorageMongoDB");
    attack.start_window = harness.learn_windows() + config.windows_per_day * (days - 1) +
                          config.windows_per_day / 3;
    attack.end_window = attack.start_window + config.windows_per_day / 4;
    harness.simulator().AddAttack(attack);
    std::printf("Injecting %s on %s (windows %zu-%zu)\n", attack_kind.c_str(),
                attack.component.c_str(), attack.start_window, attack.end_window);
  }

  Rng rng(config.seed + 43);
  const auto query = harness.RunQuery(GenerateTraffic(harness.QuerySpec(days), rng));
  const EstimateMap expected =
      estimator.EstimateFromTraces(harness.traces(), query.from, query.to);
  SanityChecker checker;
  const auto events = checker.Detect(expected, harness.metrics(), query.from, query.to);
  if (events.empty()) {
    std::printf("Sanity check: no anomalies over %zu windows.\n", query.to - query.from);
  } else {
    std::printf("Sanity check: %zu anomalous event(s):\n\n", events.size());
    for (const auto& event : events) {
      std::printf("%s\n", event.Describe(config.windows_per_day).c_str());
    }
  }
  return 0;
}

int CmdDemo() {
  const std::string model = "/tmp/deeprest_demo_model.bin";
  CliArgs train_args;
  train_args.flags["model"] = model;
  train_args.flags["days"] = "4";
  if (int rc = CmdTrain(train_args); rc != 0) {
    return rc;
  }
  CliArgs estimate_args;
  estimate_args.flags["model"] = model;
  estimate_args.flags["scale"] = "2.0";
  estimate_args.flags["days"] = "4";
  estimate_args.flags["replicas-for"] = "FrontendNGINX";
  if (int rc = CmdEstimate(estimate_args); rc != 0) {
    return rc;
  }
  CliArgs check_args;
  check_args.flags["model"] = model;
  check_args.flags["days"] = "4";
  check_args.flags["attack"] = "cryptojacking";
  return CmdCheck(check_args);
}

int Usage() {
  std::fprintf(stderr,
               "usage: deeprest <train|estimate|check|demo> [--flags]\n"
               "  train    --model=FILE [--app=social|hotel] [--days=N] [--wpd=N]\n"
               "           [--seed=N] [--hidden=N] [--epochs=N]\n"
               "  estimate --model=FILE [--scale=X] [--shape=two_peak|flat|single_peak]\n"
               "           [--query-days=N] [--replicas-for=COMPONENT]\n"
               "  check    --model=FILE [--attack=ransomware|cryptojacking]\n"
               "           [--target=COMPONENT] [--query-days=N]\n"
               "  demo     end-to-end tour on the social network\n");
  return 2;
}

}  // namespace
}  // namespace deeprest

int main(int argc, char** argv) {
  const deeprest::CliArgs args = deeprest::Parse(argc, argv);
  if (args.command == "train") {
    return deeprest::CmdTrain(args);
  }
  if (args.command == "estimate") {
    return deeprest::CmdEstimate(args);
  }
  if (args.command == "check") {
    return deeprest::CmdCheck(args);
  }
  if (args.command == "demo") {
    return deeprest::CmdDemo();
  }
  return deeprest::Usage();
}
