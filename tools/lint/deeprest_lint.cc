// deeprest_lint — project invariant linter.
//
// Enforces the DeepRest-specific rules the compiler cannot: determinism
// (seeded RNG only, no unordered iteration in byte-stable output paths, no
// float reassociation in src/nn) and concurrency hygiene (every mutex guards
// something, no detached threads, tensor nodes only through the arena).
// Standalone C++: file walking via std::filesystem, token-level scanning, no
// external dependencies. Runs as a ctest under the `lint` label over all of
// src/ and exits nonzero with file:line diagnostics on any violation.
//
// Rules (ids are what fixtures, allowlists and allow-comments name):
//   no-unseeded-rand        rand()/srand()/random_device/time() seeding in
//                           src/ — all randomness must flow through the
//                           seeded generators in src/nn/rng.h.
//   no-unordered-iteration  unordered_map/unordered_set in serialization /
//                           checkpoint / stats-export TUs (filename contains
//                           "serialize", "checkpoint", "stats" or
//                           "json_export"): hash iteration order would leak
//                           into checkpoint bytes and exported tables,
//                           breaking bit-exact replay.
//   no-raw-tensor-node-new  `new TensorNode` / `delete <TensorNode*>`
//                           outside the arena (src/nn/tensor.cc): bypassing
//                           the freelist breaks O(1) allocator behavior.
//   no-fast-math-reassoc    std::reduce, `#pragma float_control`, `#pragma
//                           STDC FP_CONTRACT`, or -ffast-math tokens inside
//                           src/nn/: reassociation breaks the bit-exactness
//                           contract between fused and reference kernels.
//   mutex-needs-guarded-by  a std::mutex / deeprest::Mutex member `m` in a
//                           class with no DEEPREST_GUARDED_BY(m) /
//                           DEEPREST_PT_GUARDED_BY(m) / DEEPREST_REQUIRES(m)
//                           in the same class body: a mutex that guards
//                           nothing is either dead weight or a lock someone
//                           BELIEVES guards state it does not.
//   no-detached-threads     .detach() on a thread: detached threads outlive
//                           shutdown, racing static destruction and making
//                           clean TSan runs impossible.
//   heartbeat-on-loop       a `while (!stop...)` worker loop in src/serve or
//                           src/autoscale whose body neither calls
//                           `Heartbeat(` nor blocks on a cv Wait/WaitFor/
//                           WaitUntil: a supervised loop that never
//                           heartbeats reads as permanently stalled to the
//                           Watchdog, and a loop nobody supervises is a
//                           silent-death waiting to happen.
//   bounded-containers-in-serve
//                           a std::map / std::unordered_map (or multi-)
//                           class member in src/serve without a
//                           `// deeprest-lint: bounded(<how>)` annotation on
//                           the same or previous line: the serving layer
//                           holds per-key state for unbounded key spaces
//                           (streams, versions, windows), so every container
//                           member must document the mechanism that caps it
//                           (byte budget, FIFO drop, retention limit) or it
//                           is a slow memory leak under production traffic.
//   intrinsics-only-in-simd raw SIMD intrinsics (`_mm*`, `__m128/256/512*`,
//                           NEON `vld1q*`-family calls) or an
//                           immintrin.h/arm_neon.h include outside
//                           src/nn/simd/: vector code scattered through the
//                           tree bypasses the runtime ISA dispatcher, breaks
//                           the scalar fallback build, and dodges the
//                           bit-exactness tests that gate every kernel. All
//                           intrinsics live behind src/nn/simd/dispatch.h.
//
// Escapes, in order of preference:
//   * `// deeprest-lint: allow(<rule>[, <rule>...])` on the offending line
//     or the line directly above it;
//   * an allowlist file (--allowlist) with lines `<rule> <path-substring>`
//     (# comments allowed) for whole-file grants, e.g. the arena itself.
//
// Usage:
//   deeprest_lint [--root DIR] [--allowlist FILE] [file...]
// With explicit files, only those are scanned (fixture tests); otherwise
// every .h/.cc under DIR/src is walked. Exit code: 0 clean, 1 violations,
// 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Token {
  std::string text;
  int line = 0;
};

struct Diagnostic {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

struct FileScan {
  std::vector<Token> tokens;            // identifiers, numbers, punctuation
  std::vector<std::string> pp_lines;    // preprocessor lines, lowercased
  std::vector<int> pp_line_numbers;
  // Lines granted by `// deeprest-lint: allow(rule)` comments. A grant on
  // line L suppresses diagnostics on L and L+1 (comment-above style).
  std::map<std::string, std::set<int>> allowed_lines;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void RecordAllowComment(const std::string& comment, int line, FileScan& scan) {
  const std::string tag = "deeprest-lint:";
  const size_t tag_at = comment.find(tag);
  if (tag_at == std::string::npos) {
    return;
  }
  // `deeprest-lint: bounded(<how>)` is the positive annotation for the
  // bounded-containers-in-serve rule: it both documents the cap and grants
  // the member on this line or the next.
  if (comment.find("bounded(", tag_at + tag.size()) != std::string::npos) {
    scan.allowed_lines["bounded-containers-in-serve"].insert(line);
    scan.allowed_lines["bounded-containers-in-serve"].insert(line + 1);
  }
  size_t at = comment.find("allow", tag_at + tag.size());
  if (at == std::string::npos) {
    return;
  }
  const size_t open = comment.find('(', at);
  const size_t close = comment.find(')', open == std::string::npos ? at : open);
  if (open == std::string::npos || close == std::string::npos) {
    return;
  }
  std::string rules = comment.substr(open + 1, close - open - 1);
  std::replace(rules.begin(), rules.end(), ',', ' ');
  std::istringstream stream(rules);
  std::string rule;
  while (stream >> rule) {
    scan.allowed_lines[rule].insert(line);
    scan.allowed_lines[rule].insert(line + 1);
  }
}

// Tokenizes C++ source: skips comments and string/char literals (recording
// allow-comments), collects preprocessor lines separately, and splits the
// rest into identifier and single-character punctuation tokens.
FileScan ScanFile(const std::string& text) {
  FileScan scan;
  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  bool at_line_start = true;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: consume to end of line (honoring \-splices).
      std::string pp;
      const int pp_line = line;
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          pp += ' ';
          i += 2;
          ++line;
          continue;
        }
        pp += static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
        ++i;
      }
      scan.pp_lines.push_back(pp);
      scan.pp_line_numbers.push_back(pp_line);
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const size_t end = text.find('\n', i);
      const std::string comment =
          text.substr(i, (end == std::string::npos ? n : end) - i);
      RecordAllowComment(comment, line, scan);
      i = end == std::string::npos ? n : end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const size_t end = text.find("*/", i + 2);
      const size_t stop = end == std::string::npos ? n : end + 2;
      const std::string comment = text.substr(i, stop - i);
      RecordAllowComment(comment, line, scan);
      for (size_t j = i; j < stop; ++j) {
        if (text[j] == '\n') {
          ++line;
        }
      }
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      // String/char literal: skip with escape handling. Raw strings get a
      // coarse but safe treatment (scan for the matching delimiter).
      if (c == '"' && i > 0 && (text[i - 1] == 'R')) {
        const size_t paren = text.find('(', i);
        if (paren != std::string::npos) {
          const std::string delim = ")" + text.substr(i + 1, paren - i - 1) + "\"";
          const size_t end = text.find(delim, paren);
          const size_t stop = end == std::string::npos ? n : end + delim.size();
          for (size_t j = i; j < stop; ++j) {
            if (text[j] == '\n') {
              ++line;
            }
          }
          i = stop;
          continue;
        }
      }
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (text[i] == '\n') {
          ++line;
        }
        ++i;
      }
      ++i;  // closing quote
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) {
        ++j;
      }
      scan.tokens.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    scan.tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return scan;
}

struct Linter {
  std::vector<std::pair<std::string, std::string>> allowlist;  // rule, path substring
  std::vector<Diagnostic> diagnostics;

  bool Allowed(const std::string& rule, const std::string& path, int line,
               const FileScan& scan) const {
    for (const auto& [arule, substring] : allowlist) {
      if (arule == rule && path.find(substring) != std::string::npos) {
        return true;
      }
    }
    const auto it = scan.allowed_lines.find(rule);
    return it != scan.allowed_lines.end() && it->second.count(line) > 0;
  }

  void Report(const std::string& rule, const std::string& path, int line,
              const std::string& message, const FileScan& scan) {
    if (!Allowed(rule, path, line, scan)) {
      diagnostics.push_back({path, line, rule, message});
    }
  }
};

bool TokenIs(const std::vector<Token>& tokens, size_t i, const char* text) {
  return i < tokens.size() && tokens[i].text == text;
}

// True when tokens[i] is preceded by `std ::` (possibly `:: std ::`).
bool PrecededByStd(const std::vector<Token>& tokens, size_t i) {
  return i >= 2 && tokens[i - 1].text == ":" && tokens[i - 2].text == ":" && i >= 3 &&
         tokens[i - 3].text == "std";
}

// --------------------------------------------------------------------------
// Rule: no-unseeded-rand
// --------------------------------------------------------------------------
void CheckUnseededRand(const std::string& path, const FileScan& scan, Linter& lint) {
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if ((s == "rand" || s == "srand" || s == "time") && TokenIs(t, i + 1, "(")) {
      // Member calls like foo.time(...) are still suspicious in src/; methods
      // named exactly `time` do not exist in this tree.
      lint.Report("no-unseeded-rand", path, t[i].line,
                  "call to `" + s + "()` — derive randomness from the seeded "
                  "generators in src/nn/rng.h so runs replay bit-for-bit",
                  scan);
    } else if (s == "random_device" || s == "rand_r" || s == "drand48") {
      lint.Report("no-unseeded-rand", path, t[i].line,
                  "`" + s + "` is nondeterministic — use src/nn/rng.h", scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-unordered-iteration
// --------------------------------------------------------------------------
bool IsByteStableTu(const std::string& path) {
  const std::string name = std::filesystem::path(path).filename().string();
  for (const char* pattern : {"serialize", "checkpoint", "stats", "json_export"}) {
    if (name.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void CheckUnorderedIteration(const std::string& path, const FileScan& scan, Linter& lint) {
  if (!IsByteStableTu(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
        s == "unordered_multiset") {
      lint.Report("no-unordered-iteration", path, t[i].line,
                  "`" + s + "` in a byte-stable translation unit (serialization/"
                  "checkpoint/stats export) — hash iteration order would leak "
                  "into the output bytes; use std::map/std::set or a sorted "
                  "vector",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-raw-tensor-node-new
// --------------------------------------------------------------------------
void CheckRawTensorNodeNew(const std::string& path, const FileScan& scan, Linter& lint) {
  const auto& t = scan.tokens;
  std::set<std::string> tensor_node_pointers;  // identifiers declared TensorNode*
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].text == "new" && TokenIs(t, i + 1, "TensorNode")) {
      lint.Report("no-raw-tensor-node-new", path, t[i].line,
                  "`new TensorNode` outside the arena — nodes must come from "
                  "detail::AcquireNode() so the freelist accounting holds",
                  scan);
    }
    if (t[i].text == "TensorNode" && TokenIs(t, i + 1, "*") && i + 2 < t.size() &&
        IsIdentChar(t[i + 2].text[0]) && !std::isdigit(static_cast<unsigned char>(t[i + 2].text[0]))) {
      tensor_node_pointers.insert(t[i + 2].text);
    }
    if (t[i].text == "delete" && i + 1 < t.size() &&
        tensor_node_pointers.count(t[i + 1].text) > 0) {
      lint.Report("no-raw-tensor-node-new", path, t[i].line,
                  "`delete` of a TensorNode* outside the arena — release the "
                  "handle and let detail::RecycleTree() reclaim it",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-fast-math-reassoc
// --------------------------------------------------------------------------
bool IsNnPath(const std::string& path) {
  return path.find("src/nn/") != std::string::npos ||
         path.find("src\\nn\\") != std::string::npos;
}

void CheckFastMathReassoc(const std::string& path, const FileScan& scan, Linter& lint) {
  if (!IsNnPath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "reduce" && PrecededByStd(t, i)) {
      lint.Report("no-fast-math-reassoc", path, t[i].line,
                  "std::reduce reassociates freely — use std::accumulate or an "
                  "explicit loop so the summation order is fixed",
                  scan);
    }
    if (s == "ffast" || s == "ffast_math") {
      lint.Report("no-fast-math-reassoc", path, t[i].line,
                  "-ffast-math marker in src/nn — the kernels promise "
                  "bit-exactness between fused and reference paths",
                  scan);
    }
  }
  for (size_t i = 0; i < scan.pp_lines.size(); ++i) {
    const std::string& pp = scan.pp_lines[i];
    if (pp.find("float_control") != std::string::npos ||
        pp.find("fp_contract") != std::string::npos ||
        pp.find("fast_math") != std::string::npos ||
        pp.find("associative_math") != std::string::npos) {
      lint.Report("no-fast-math-reassoc", path, scan.pp_line_numbers[i],
                  "float-semantics pragma in src/nn — reassociation/contraction "
                  "breaks the bit-exactness contract (build-wide "
                  "-ffp-contract=off is the only sanctioned setting)",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: mutex-needs-guarded-by
// --------------------------------------------------------------------------
struct MutexMember {
  std::string name;
  int line = 0;
};

void CheckMutexGuardedBy(const std::string& path, const FileScan& scan, Linter& lint) {
  const auto& t = scan.tokens;
  // Stack of open class/struct bodies. Each entry: brace depth at which the
  // body opened, mutex members seen, names referenced by guard annotations.
  struct ClassBody {
    int depth = 0;
    std::vector<MutexMember> mutexes;
    std::set<std::string> guarded;
  };
  std::vector<ClassBody> stack;
  int depth = 0;
  bool class_ahead = false;  // saw class/struct keyword, body brace pending
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "class" || s == "struct") {
      // `enum class` is not a body we care about; a following `{` still
      // balances, so treating it as a (mutex-free) body is harmless.
      class_ahead = true;
      continue;
    }
    if (s == ";" && class_ahead) {
      class_ahead = false;  // forward declaration
      continue;
    }
    if (s == "{") {
      ++depth;
      if (class_ahead) {
        stack.push_back({depth, {}, {}});
        class_ahead = false;
      }
      continue;
    }
    if (s == "}") {
      if (!stack.empty() && stack.back().depth == depth) {
        for (const MutexMember& m : stack.back().mutexes) {
          if (stack.back().guarded.count(m.name) == 0) {
            lint.Report("mutex-needs-guarded-by", path, m.line,
                        "mutex member `" + m.name + "` has no "
                        "DEEPREST_GUARDED_BY(" + m.name + ") field (or "
                        "REQUIRES/PT_GUARDED_BY) in its class — declare what "
                        "it guards or remove it",
                        scan);
          }
        }
        stack.pop_back();
      }
      --depth;
      continue;
    }
    if (stack.empty()) {
      continue;
    }
    // Member declaration `Mutex name ;` or `std::mutex name ;` (also
    // recursive/timed/shared variants) directly inside a class body.
    const bool mutex_type = (s == "Mutex" && !PrecededByStd(t, i)) || ((s == "mutex" ||
                            s == "recursive_mutex" || s == "timed_mutex" ||
                            s == "shared_mutex") && PrecededByStd(t, i));
    if (mutex_type && stack.back().depth == depth && i + 2 < t.size() &&
        IsIdentChar(t[i + 1].text[0]) &&
        (t[i + 2].text == ";" || t[i + 2].text == "=")) {
      stack.back().mutexes.push_back({t[i + 1].text, t[i + 1].line});
      continue;
    }
    // Guard annotations: DEEPREST_GUARDED_BY(x), DEEPREST_PT_GUARDED_BY(x),
    // DEEPREST_REQUIRES(x...), plus the raw Clang spellings for code that
    // uses them directly.
    if (s == "DEEPREST_GUARDED_BY" || s == "DEEPREST_PT_GUARDED_BY" ||
        s == "DEEPREST_REQUIRES" || s == "DEEPREST_ACQUIRE" || s == "DEEPREST_RELEASE" ||
        s == "GUARDED_BY" || s == "PT_GUARDED_BY" || s == "REQUIRES" ||
        s == "guarded_by" || s == "pt_guarded_by" || s == "requires_capability") {
      // Collect identifier arguments until the matching ')'.
      size_t j = i + 1;
      if (TokenIs(t, j, "(")) {
        int parens = 0;
        for (; j < t.size(); ++j) {
          if (t[j].text == "(") {
            ++parens;
          } else if (t[j].text == ")") {
            if (--parens == 0) {
              break;
            }
          } else if (IsIdentChar(t[j].text[0])) {
            for (ClassBody& body : stack) {
              body.guarded.insert(t[j].text);
            }
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-detached-threads
// --------------------------------------------------------------------------
void CheckDetachedThreads(const std::string& path, const FileScan& scan, Linter& lint) {
  const auto& t = scan.tokens;
  for (size_t i = 1; i < t.size(); ++i) {
    if (t[i].text == "detach" && TokenIs(t, i + 1, "(") && TokenIs(t, i + 2, ")") &&
        (t[i - 1].text == "." ||
         (t[i - 1].text == ">" && i >= 2 && t[i - 2].text == "-"))) {
      lint.Report("no-detached-threads", path, t[i].line,
                  "detached thread — detached threads outlive Stop()/shutdown, "
                  "race static destruction and defeat TSan; join it (RAII "
                  "owner or ThreadPool)",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: heartbeat-on-loop
// --------------------------------------------------------------------------
bool IsSupervisedLoopPath(const std::string& path) {
  for (const char* pattern : {"src/serve", "src\\serve", "src/autoscale",
                              "src\\autoscale"}) {
    if (path.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void CheckHeartbeatOnLoop(const std::string& path, const FileScan& scan, Linter& lint) {
  if (!IsSupervisedLoopPath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "while" || !TokenIs(t, i + 1, "(")) {
      continue;
    }
    // Condition: the parenthesized expression after `while`. The rule fires
    // only on stop-flag loops — `! stop...` anywhere in the condition.
    size_t cond_end = t.size();
    bool stop_loop = false;
    int parens = 0;
    for (size_t j = i + 1; j < t.size(); ++j) {
      if (t[j].text == "(") {
        ++parens;
      } else if (t[j].text == ")") {
        if (--parens == 0) {
          cond_end = j;
          break;
        }
      } else if (t[j].text == "!" && j + 1 < t.size() &&
                 t[j + 1].text.rfind("stop", 0) == 0) {
        stop_loop = true;
      }
    }
    if (!stop_loop || cond_end == t.size()) {
      continue;
    }
    // Body: braced block or single statement.
    const size_t body_begin = cond_end + 1;
    size_t body_end = body_begin;
    if (TokenIs(t, body_begin, "{")) {
      int braces = 0;
      for (size_t j = body_begin; j < t.size(); ++j) {
        if (t[j].text == "{") {
          ++braces;
        } else if (t[j].text == "}" && --braces == 0) {
          body_end = j;
          break;
        }
      }
    } else {
      while (body_end < t.size() && t[body_end].text != ";") {
        ++body_end;
      }
    }
    bool has_heartbeat = false;
    bool has_wait = false;  // cv predicate loop — the cv wakes it, not a poll
    for (size_t j = body_begin; j < body_end; ++j) {
      if (t[j].text == "Heartbeat" && TokenIs(t, j + 1, "(")) {
        has_heartbeat = true;
      }
      if (t[j].text == "Wait" || t[j].text == "WaitFor" || t[j].text == "WaitUntil") {
        has_wait = true;
      }
    }
    if (!has_heartbeat && !has_wait) {
      lint.Report("heartbeat-on-loop", path, t[i].line,
                  "stop-flag worker loop without a Heartbeat() call — publish "
                  "liveness into the HealthRegistry each iteration so the "
                  "Watchdog can tell a stall from a slow sweep",
                  scan);
    }
  }
}

// --------------------------------------------------------------------------
// Rule: bounded-containers-in-serve
// --------------------------------------------------------------------------
bool IsServePath(const std::string& path) {
  return path.find("src/serve") != std::string::npos ||
         path.find("src\\serve") != std::string::npos;
}

void CheckBoundedContainersInServe(const std::string& path, const FileScan& scan,
                                   Linter& lint) {
  if (!IsServePath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  // Same class-body tracking as mutex-needs-guarded-by: a container is a
  // MEMBER when it sits at the body's own brace depth, outside parentheses
  // (not a parameter), is not a using/typedef alias, and is not a method's
  // return type (next-after-template token followed by `(`).
  struct ClassBody {
    int depth = 0;
  };
  std::vector<ClassBody> stack;
  int depth = 0;
  int parens = 0;
  bool class_ahead = false;
  size_t stmt_start = 0;  // token index after the last ; { }
  for (size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "class" || s == "struct") {
      class_ahead = true;
      continue;
    }
    if (s == ";" && class_ahead) {
      class_ahead = false;
      stmt_start = i + 1;
      continue;
    }
    if (s == "(") {
      ++parens;
      continue;
    }
    if (s == ")") {
      parens = parens > 0 ? parens - 1 : 0;
      continue;
    }
    if (s == "{") {
      ++depth;
      if (class_ahead) {
        stack.push_back({depth});
        class_ahead = false;
      }
      stmt_start = i + 1;
      continue;
    }
    if (s == "}") {
      if (!stack.empty() && stack.back().depth == depth) {
        stack.pop_back();
      }
      --depth;
      stmt_start = i + 1;
      continue;
    }
    if (s == ";") {
      stmt_start = i + 1;
      continue;
    }
    const bool container = (s == "map" || s == "unordered_map" || s == "multimap" ||
                            s == "unordered_multimap") &&
                           PrecededByStd(t, i);
    if (!container || stack.empty() || stack.back().depth != depth || parens != 0) {
      continue;
    }
    bool is_alias = false;
    for (size_t j = stmt_start; j < i; ++j) {
      if (t[j].text == "using" || t[j].text == "typedef") {
        is_alias = true;
        break;
      }
    }
    if (is_alias) {
      continue;
    }
    // Skip the template argument list to find the declared name.
    size_t j = i + 1;
    if (TokenIs(t, j, "<")) {
      int angles = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "<") {
          ++angles;
        } else if (t[j].text == ">" && --angles == 0) {
          ++j;
          break;
        }
      }
    }
    // `std::map<...> Name(` is a method returning a map, not a member.
    if (j < t.size() && IsIdentChar(t[j].text[0]) && TokenIs(t, j + 1, "(")) {
      continue;
    }
    lint.Report("bounded-containers-in-serve", path, t[i].line,
                "std::" + s + " member in src/serve without a "
                "`// deeprest-lint: bounded(<how>)` annotation — serving-layer "
                "containers index unbounded key spaces; document the eviction/"
                "cap mechanism (byte budget, FIFO drop, retention limit) on "
                "the member or the line above",
                scan);
  }
}

// --------------------------------------------------------------------------
// Rule: intrinsics-only-in-simd
// --------------------------------------------------------------------------
bool IsSimdPath(const std::string& path) {
  return path.find("src/nn/simd/") != std::string::npos ||
         path.find("src\\nn\\simd\\") != std::string::npos;
}

bool IsSimdIntrinsicToken(const std::string& s) {
  // x86: _mm_*, _mm256_*, _mm512_* calls; __m128/__m256i/__m512d vector
  // types; AVX-512 __mmask* predicate types.
  if (s.rfind("_mm", 0) == 0) {
    return true;
  }
  if (s.rfind("__mmask", 0) == 0) {
    return true;
  }
  if (s.rfind("__m", 0) == 0 && s.size() > 3 &&
      std::isdigit(static_cast<unsigned char>(s[3]))) {
    return true;
  }
  // NEON: the load/store/arithmetic families used by vector kernels. Prefix
  // match so lane-width suffixes (vld1q_f32, vfmaq_laneq_f32, ...) all hit.
  for (const char* prefix : {"vld1", "vst1", "vfmaq", "vmlaq", "vaddq", "vmulq",
                             "vsubq", "vdupq", "vmull", "vpadalq", "vgetq",
                             "vcvt_f64_f32", "vcvt_f32_f64"}) {
    if (s.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

void CheckIntrinsicsOnlyInSimd(const std::string& path, const FileScan& scan,
                               Linter& lint) {
  if (IsSimdPath(path)) {
    return;
  }
  const auto& t = scan.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (IsSimdIntrinsicToken(t[i].text)) {
      lint.Report("intrinsics-only-in-simd", path, t[i].line,
                  "raw SIMD intrinsic `" + t[i].text + "` outside src/nn/simd/ "
                  "— route vector code through simd::* (src/nn/simd/dispatch.h) "
                  "so the runtime ISA dispatcher, the scalar fallback, and the "
                  "bit-exactness tests all cover it",
                  scan);
    }
  }
  for (size_t i = 0; i < scan.pp_lines.size(); ++i) {
    const std::string& pp = scan.pp_lines[i];
    for (const char* header : {"immintrin.h", "arm_neon.h", "xmmintrin.h",
                               "emmintrin.h", "avxintrin.h"}) {
      if (pp.find(header) != std::string::npos) {
        lint.Report("intrinsics-only-in-simd", path, scan.pp_line_numbers[i],
                    std::string("#include <") + header + "> outside "
                    "src/nn/simd/ — intrinsics headers (and the code that "
                    "needs them) belong behind the dispatch layer",
                    scan);
      }
    }
  }
}

// --------------------------------------------------------------------------

int LintFile(const std::filesystem::path& file, Linter& lint) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "deeprest_lint: cannot read %s\n", file.string().c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const FileScan scan = ScanFile(buffer.str());
  const std::string path = file.generic_string();
  CheckUnseededRand(path, scan, lint);
  CheckUnorderedIteration(path, scan, lint);
  CheckRawTensorNodeNew(path, scan, lint);
  CheckFastMathReassoc(path, scan, lint);
  CheckMutexGuardedBy(path, scan, lint);
  CheckDetachedThreads(path, scan, lint);
  CheckHeartbeatOnLoop(path, scan, lint);
  CheckBoundedContainersInServe(path, scan, lint);
  CheckIntrinsicsOnlyInSimd(path, scan, lint);
  return 0;
}

bool LoadAllowlist(const std::string& path, Linter& lint) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream stream(line);
    std::string rule;
    std::string substring;
    if (stream >> rule >> substring) {
      lint.allowlist.emplace_back(rule, substring);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string allowlist_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: deeprest_lint [--root DIR] [--allowlist FILE] [file...]\n");
      return 0;
    } else {
      files.push_back(arg);
    }
  }

  Linter lint;
  if (!allowlist_path.empty() && !LoadAllowlist(allowlist_path, lint)) {
    std::fprintf(stderr, "deeprest_lint: cannot read allowlist %s\n",
                 allowlist_path.c_str());
    return 2;
  }

  if (files.empty()) {
    const std::filesystem::path src = std::filesystem::path(root) / "src";
    if (!std::filesystem::exists(src)) {
      std::fprintf(stderr, "deeprest_lint: no src/ under --root %s\n", root.c_str());
      return 2;
    }
    for (const auto& entry : std::filesystem::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());  // deterministic diagnostic order
  }

  for (const std::string& file : files) {
    const int rc = LintFile(file, lint);
    if (rc != 0) {
      return rc;
    }
  }

  for (const Diagnostic& d : lint.diagnostics) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", d.path.c_str(), d.line, d.rule.c_str(),
                 d.message.c_str());
  }
  if (!lint.diagnostics.empty()) {
    std::fprintf(stderr, "deeprest_lint: %zu violation(s)\n", lint.diagnostics.size());
    return 1;
  }
  return 0;
}
